//! Store maintenance: per-artifact advisory locks for cross-process
//! coordination, config-fingerprint sidecars, quarantine, and the
//! `hdpm fsck` scan/repair engine.
//!
//! The on-disk layout of a library root is:
//!
//! ```text
//! <root>/
//!   <spec>_cfg<16-hex fingerprint>_sh<N>.json   # model artifacts
//!   <artifact>.lock                             # advisory write locks
//!   meta/cfg_<16-hex fingerprint>.json          # config sidecars
//!   quarantine/                                 # artifacts fsck moved aside
//! ```
//!
//! See `docs/persistence.md` for the full workflow.

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use hdpm_netlist::ModuleSpec;
use hdpm_telemetry as telemetry;

use crate::cache::config_fingerprint;
use crate::characterize::{Characterization, CharacterizationConfig};
use crate::error::{ArtifactFaultKind, ModelError};
use crate::library::ModelLibrary;
use crate::persist::{self, EnvelopeMeta, EnvelopeStatus};
use crate::shard::ShardingConfig;

/// Name of the quarantine subdirectory under a library root.
pub const QUARANTINE_DIR: &str = "quarantine";
/// Name of the sidecar subdirectory under a library root.
pub const META_DIR: &str = "meta";

// ---------------------------------------------------------------------------
// Advisory locks
// ---------------------------------------------------------------------------

/// A held per-artifact advisory lock: a `<artifact>.lock` file created
/// with `O_EXCL`, containing the holder's pid and process start time.
/// Released (deleted) on drop.
///
/// Two processes sharing a model directory use these to serialize
/// characterize-and-store of the same key; a lock whose holder is no
/// longer alive (checked via `/proc` on Linux) is treated as stale and
/// broken. Recording the start time guards against pid reuse: a live
/// process that merely recycled a dead holder's pid has a different
/// start time, so its presence does not keep the stale lock held.
#[derive(Debug)]
pub(crate) struct StoreLock {
    path: PathBuf,
}

/// The lock path guarding an artifact path.
pub(crate) fn lock_path(artifact: &Path) -> PathBuf {
    let name = artifact
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    artifact.with_file_name(format!("{name}.lock"))
}

impl StoreLock {
    /// Acquire the lock guarding `artifact`, polling up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`ModelError::StoreLock`] if a live holder keeps the lock past the
    /// timeout, [`ModelError::Io`] on unexpected filesystem failures.
    pub fn acquire(artifact: &Path, timeout: Duration) -> Result<StoreLock, ModelError> {
        let path = lock_path(artifact);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let start = Instant::now();
        loop {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    // Best-effort: the pid and start time are advisory
                    // metadata for staleness checks and diagnostics, not
                    // correctness.
                    let pid = std::process::id();
                    match proc_start_time(pid) {
                        Some(start) => {
                            let _ = write!(file, "{pid} {start}");
                        }
                        None => {
                            let _ = write!(file, "{pid}");
                        }
                    }
                    let _ = file.sync_all();
                    return Ok(StoreLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if lock_is_stale(&path) {
                        // Break the dead holder's lock and race to re-create
                        // it; exactly one contender wins the `create_new`.
                        let _ = fs::remove_file(&path);
                        continue;
                    }
                    if start.elapsed() >= timeout {
                        let holder = fs::read_to_string(&path).unwrap_or_default();
                        let detail = match holder.split_whitespace().next() {
                            None => "holder unknown".to_string(),
                            Some(pid) => format!("held by pid {pid}"),
                        };
                        return Err(ModelError::StoreLock {
                            path,
                            waited_ms: start.elapsed().as_millis() as u64,
                            detail,
                        });
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(ModelError::Io(e)),
            }
        }
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Whether a lock file's recorded holder is provably dead. Conservative:
/// unreadable/unparseable holders (e.g. a lock mid-write) are *not* stale.
///
/// A lock recording `pid start_time` is also stale when the pid is alive
/// but its start time differs from the recorded one: the original holder
/// died and an unrelated process recycled its pid. Locks recording only a
/// pid (older writers) keep the conservative pid-liveness check.
fn lock_is_stale(path: &Path) -> bool {
    let Ok(content) = fs::read_to_string(path) else {
        return false;
    };
    let mut parts = content.split_whitespace();
    let Some(Ok(pid)) = parts.next().map(str::parse::<u32>) else {
        return false;
    };
    if pid_is_dead(pid) {
        return true;
    }
    if let Some(recorded) = parts.next().and_then(|t| t.parse::<u64>().ok()) {
        if let Some(live) = proc_start_time(pid) {
            // The pid is alive, but it is not the process that wrote the
            // lock — the holder died and its pid was recycled.
            return live != recorded;
        }
    }
    false
}

#[cfg(target_os = "linux")]
fn pid_is_dead(pid: u32) -> bool {
    !Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(not(target_os = "linux"))]
fn pid_is_dead(_pid: u32) -> bool {
    // Without a portable liveness probe, never break a lock; waiters
    // fall back to the timeout error.
    false
}

/// Kernel start time of a process (`starttime`, clock ticks since boot),
/// the field that distinguishes two incarnations of the same pid.
#[cfg(target_os = "linux")]
fn proc_start_time(pid: u32) -> Option<u64> {
    let stat = fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    // Field 2 (comm) may itself contain spaces and parentheses, so split
    // after the LAST ')': the remainder is whitespace-separated starting
    // at field 3 (state). starttime is field 22, i.e. index 19 here.
    let after_comm = stat.rsplit_once(')')?.1;
    after_comm.split_whitespace().nth(19)?.parse().ok()
}

#[cfg(not(target_os = "linux"))]
fn proc_start_time(_pid: u32) -> Option<u64> {
    None
}

// ---------------------------------------------------------------------------
// Artifact names and sidecars
// ---------------------------------------------------------------------------

/// Parse a store artifact file name `{spec}_cfg{16 hex}_sh{N}.json` back
/// into its key triple. Returns `None` for anything else (foreign files,
/// locks, temps, legacy pre-fingerprint names).
pub(crate) fn parse_artifact_name(name: &str) -> Option<(ModuleSpec, u64, usize)> {
    let stem = name.strip_suffix(".json")?;
    // `_sh` and `_cfg` cannot appear inside the 16-hex fingerprint, and a
    // rightmost split keeps underscores in module-kind ids intact.
    let (rest, shards) = stem.rsplit_once("_sh")?;
    let shards: usize = shards.parse().ok()?;
    let (spec, hex) = rest.rsplit_once("_cfg")?;
    if hex.len() != 16 {
        return None;
    }
    let fingerprint = u64::from_str_radix(hex, 16).ok()?;
    Some((ModuleSpec::parse(spec)?, fingerprint, shards))
}

/// The sidecar path recording the full configuration behind a
/// fingerprint.
pub(crate) fn sidecar_path(root: &Path, fingerprint: u64) -> PathBuf {
    root.join(META_DIR)
        .join(format!("cfg_{fingerprint:016x}.json"))
}

/// Record `config` under its fingerprint in `<root>/meta/`, once. The
/// sidecar is what lets `hdpm fsck --repair` re-characterize a
/// quarantined artifact whose own payload is unreadable.
pub(crate) fn write_config_sidecar(
    root: &Path,
    config: &CharacterizationConfig,
) -> Result<(), ModelError> {
    let fingerprint = config_fingerprint(config);
    let path = sidecar_path(root, fingerprint);
    if path.exists() {
        return Ok(());
    }
    let meta = EnvelopeMeta {
        config_fingerprint: Some(fingerprint),
        ..EnvelopeMeta::default()
    };
    persist::save_with_meta(config, &meta, path)
}

/// Move `path` into `<root>/quarantine/`, never overwriting an earlier
/// quarantined file of the same name. Returns the destination.
pub(crate) fn quarantine_file(root: &Path, path: &Path) -> Result<PathBuf, ModelError> {
    let dir = root.join(QUARANTINE_DIR);
    fs::create_dir_all(&dir)?;
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    let mut dest = dir.join(&name);
    let mut n = 0u32;
    while dest.exists() {
        n += 1;
        dest = dir.join(format!("{name}.{n}"));
    }
    fs::rename(path, &dest)?;
    telemetry::counter_add("store.artifact.quarantined", 1);
    Ok(dest)
}

// ---------------------------------------------------------------------------
// fsck
// ---------------------------------------------------------------------------

/// How one store entry classified under `hdpm fsck`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsckStatus {
    /// A current-version artifact with a verified checksum and matching
    /// key.
    Valid,
    /// A readable pre-envelope artifact; `--repair` migrates it in place.
    Legacy,
    /// A typed artifact fault; `--repair` quarantines the file.
    Fault(ArtifactFaultKind),
    /// A temp file left by an interrupted atomic write; `--repair`
    /// removes it.
    OrphanTemp,
    /// A lock file whose recorded holder is dead; `--repair` removes it.
    StaleLock,
    /// A lock file with a live (or unknown) holder; always left alone.
    HeldLock,
}

impl FsckStatus {
    /// Stable kebab-case name, as printed by `hdpm fsck`.
    pub fn as_str(&self) -> &'static str {
        match self {
            FsckStatus::Valid => "valid",
            FsckStatus::Legacy => "legacy",
            FsckStatus::Fault(kind) => kind.as_str(),
            FsckStatus::OrphanTemp => "orphan-temp",
            FsckStatus::StaleLock => "stale-lock",
            FsckStatus::HeldLock => "held-lock",
        }
    }

    /// Whether this entry needs repair attention.
    pub fn is_healthy(&self) -> bool {
        matches!(self, FsckStatus::Valid | FsckStatus::HeldLock)
    }
}

/// What `--repair` did about one entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairAction {
    /// Nothing needed or repair not requested.
    None,
    /// Legacy payload rewritten in place as a current envelope.
    Migrated,
    /// Moved to `<root>/quarantine/`.
    Quarantined,
    /// Quarantined, then re-characterized from its config sidecar.
    Recharacterized,
    /// Orphan temp or stale lock deleted.
    Removed,
}

impl RepairAction {
    /// Stable kebab-case name, as printed by `hdpm fsck --repair`.
    pub fn as_str(self) -> &'static str {
        match self {
            RepairAction::None => "-",
            RepairAction::Migrated => "migrated",
            RepairAction::Quarantined => "quarantined",
            RepairAction::Recharacterized => "recharacterized",
            RepairAction::Removed => "removed",
        }
    }
}

/// One scanned store entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckEntry {
    /// Path relative to the scanned root, `/`-separated.
    pub name: String,
    /// Classification.
    pub status: FsckStatus,
    /// What repair did (always [`RepairAction::None`] on scan-only runs).
    pub action: RepairAction,
    /// Human-readable detail for unhealthy entries.
    pub detail: String,
}

/// Outcome of an [`fsck`] run over one library root.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Scanned entries, sorted by name.
    pub entries: Vec<FsckEntry>,
}

impl FsckReport {
    /// Whether every entry is healthy (valid artifacts, held locks).
    pub fn is_clean(&self) -> bool {
        self.entries.iter().all(|e| e.status.is_healthy())
    }

    /// Number of entries with the given status predicate.
    pub fn count(&self, f: impl Fn(&FsckStatus) -> bool) -> usize {
        self.entries.iter().filter(|e| f(&e.status)).count()
    }
}

/// Options of an [`fsck`] run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsckOptions {
    /// Quarantine faulty artifacts, migrate legacy ones, remove orphan
    /// temps and stale locks, and re-characterize quarantined artifacts
    /// whose configuration sidecar survives.
    pub repair: bool,
}

/// Scan (and optionally repair) a model-library root.
///
/// Classifies every top-level artifact, lock and temp file plus the
/// `meta/` sidecars; the `quarantine/` directory itself is not rescanned.
/// With [`FsckOptions::repair`], unhealthy entries are repaired as
/// described on [`FsckStatus`]; re-characterization failures degrade to
/// plain quarantine (recorded in the entry detail) rather than failing
/// the run.
///
/// # Errors
///
/// [`ModelError::Io`] if the root cannot be read or a repair move fails.
pub fn fsck(root: &Path, options: &FsckOptions) -> Result<FsckReport, ModelError> {
    let _span = telemetry::span("store.fsck");
    let mut entries = Vec::new();
    scan_dir(root, root, None, options, &mut entries)?;
    let meta_dir = root.join(META_DIR);
    if meta_dir.is_dir() {
        scan_dir(root, &meta_dir, Some(META_DIR), options, &mut entries)?;
    }
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(FsckReport { entries })
}

fn scan_dir(
    root: &Path,
    dir: &Path,
    prefix: Option<&str>,
    options: &FsckOptions,
    entries: &mut Vec<FsckEntry>,
) -> Result<(), ModelError> {
    let read = match fs::read_dir(dir) {
        Ok(read) => read,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(ModelError::Io(e)),
    };
    for entry in read {
        let entry = entry?;
        let path = entry.path();
        let file_name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            continue; // quarantine/ and meta/ are handled explicitly
        }
        let name = match prefix {
            Some(p) => format!("{p}/{file_name}"),
            None => file_name.clone(),
        };
        let (status, detail) = classify_entry(&path, &file_name, prefix.is_some());
        let action = if options.repair {
            repair_entry(root, &path, &file_name, &status, prefix.is_some())?
        } else {
            RepairAction::None
        };
        let detail = match &action {
            RepairAction::Quarantined if !detail.is_empty() => {
                format!("{detail}; quarantined without re-characterization")
            }
            _ => detail,
        };
        entries.push(FsckEntry {
            name,
            status,
            action,
            detail,
        });
    }
    Ok(())
}

fn classify_entry(path: &Path, file_name: &str, in_meta: bool) -> (FsckStatus, String) {
    if persist::is_orphan_temp(file_name) {
        return (
            FsckStatus::OrphanTemp,
            "leftover of an interrupted atomic write".to_string(),
        );
    }
    if file_name.ends_with(".lock") {
        return if lock_is_stale(path) {
            (FsckStatus::StaleLock, "holder is dead".to_string())
        } else {
            let holder = fs::read_to_string(path).unwrap_or_default();
            let pid = holder.split_whitespace().next().unwrap_or("").to_string();
            (FsckStatus::HeldLock, format!("holder pid {pid}"))
        };
    }
    if in_meta {
        return classify_sidecar(path, file_name);
    }
    let expected = match parse_artifact_name(file_name) {
        Some((spec, fingerprint, shards)) => EnvelopeMeta {
            spec: Some(spec.to_string()),
            config_fingerprint: Some(fingerprint),
            shards: Some(shards),
        },
        None => {
            return (
                FsckStatus::Fault(ArtifactFaultKind::Foreign),
                "file name is not a store key".to_string(),
            )
        }
    };
    match persist::classify_file::<Characterization>(path, &expected) {
        Ok(Some(Ok(EnvelopeStatus::Current))) => (FsckStatus::Valid, String::new()),
        Ok(Some(Ok(EnvelopeStatus::LegacyPayload))) => {
            (FsckStatus::Legacy, "bare pre-envelope payload".to_string())
        }
        Ok(Some(Err((kind, detail)))) => (FsckStatus::Fault(kind), detail),
        Ok(None) => (
            FsckStatus::Fault(ArtifactFaultKind::Truncated),
            "vanished during the scan".to_string(),
        ),
        Err(e) => (
            FsckStatus::Fault(ArtifactFaultKind::Truncated),
            e.to_string(),
        ),
    }
}

fn classify_sidecar(path: &Path, file_name: &str) -> (FsckStatus, String) {
    let fingerprint = file_name
        .strip_prefix("cfg_")
        .and_then(|rest| rest.strip_suffix(".json"))
        .filter(|hex| hex.len() == 16)
        .and_then(|hex| u64::from_str_radix(hex, 16).ok());
    let Some(fingerprint) = fingerprint else {
        return (
            FsckStatus::Fault(ArtifactFaultKind::Foreign),
            "file name is not a sidecar key".to_string(),
        );
    };
    let expected = EnvelopeMeta {
        config_fingerprint: Some(fingerprint),
        ..EnvelopeMeta::default()
    };
    match persist::classify_file::<CharacterizationConfig>(path, &expected) {
        Ok(Some(Ok(_))) => {
            // Deep check: the recorded configuration must actually hash to
            // the fingerprint in the file name.
            match persist::load::<CharacterizationConfig>(path) {
                Ok(config) if config_fingerprint(&config) == fingerprint => {
                    (FsckStatus::Valid, String::new())
                }
                Ok(_) => (
                    FsckStatus::Fault(ArtifactFaultKind::Foreign),
                    "recorded configuration does not hash to the sidecar name".to_string(),
                ),
                Err(e) => (
                    FsckStatus::Fault(ArtifactFaultKind::Truncated),
                    e.to_string(),
                ),
            }
        }
        Ok(Some(Err((kind, detail)))) => (FsckStatus::Fault(kind), detail),
        Ok(None) => (
            FsckStatus::Fault(ArtifactFaultKind::Truncated),
            "vanished during the scan".to_string(),
        ),
        Err(e) => (
            FsckStatus::Fault(ArtifactFaultKind::Truncated),
            e.to_string(),
        ),
    }
}

fn repair_entry(
    root: &Path,
    path: &Path,
    file_name: &str,
    status: &FsckStatus,
    in_meta: bool,
) -> Result<RepairAction, ModelError> {
    match status {
        FsckStatus::Valid | FsckStatus::HeldLock => Ok(RepairAction::None),
        FsckStatus::OrphanTemp | FsckStatus::StaleLock => {
            fs::remove_file(path)?;
            Ok(RepairAction::Removed)
        }
        FsckStatus::Legacy => {
            let (value, _) =
                persist::load_classified::<Characterization>(path, &EnvelopeMeta::default())?;
            let meta = match parse_artifact_name(file_name) {
                Some((spec, fingerprint, shards)) => EnvelopeMeta {
                    spec: Some(spec.to_string()),
                    config_fingerprint: Some(fingerprint),
                    shards: Some(shards),
                },
                None => EnvelopeMeta::default(),
            };
            persist::save_with_meta(&value, &meta, path)?;
            telemetry::counter_add("store.artifact.migrated", 1);
            Ok(RepairAction::Migrated)
        }
        FsckStatus::Fault(_) => {
            quarantine_file(root, path)?;
            if in_meta {
                return Ok(RepairAction::Quarantined);
            }
            match recharacterize(root, file_name) {
                Ok(true) => Ok(RepairAction::Recharacterized),
                Ok(false) | Err(_) => Ok(RepairAction::Quarantined),
            }
        }
    }
}

/// Rebuild a quarantined artifact from its file name and config sidecar.
/// Returns `Ok(false)` when the name does not parse or no (valid) sidecar
/// exists — the artifact stays quarantined and the caller reports that.
fn recharacterize(root: &Path, file_name: &str) -> Result<bool, ModelError> {
    let Some((spec, fingerprint, shards)) = parse_artifact_name(file_name) else {
        return Ok(false);
    };
    let sidecar = sidecar_path(root, fingerprint);
    let config = match persist::load::<CharacterizationConfig>(&sidecar) {
        Ok(config) if config_fingerprint(&config) == fingerprint => config,
        _ => return Ok(false),
    };
    let library = if shards == 0 {
        ModelLibrary::new(root, config)
    } else {
        ModelLibrary::with_sharding(root, config, ShardingConfig { shards, threads: 0 })
    };
    library.get(spec)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::TempDir;
    use hdpm_netlist::ModuleKind;

    #[test]
    fn artifact_names_round_trip_through_the_parser() {
        let config = CharacterizationConfig::default();
        let spec = ModuleSpec::new(ModuleKind::BarrelShifter, 8usize);
        let key = crate::cache::ModelKey::new(spec, &config, 4);
        let (parsed_spec, fingerprint, shards) =
            parse_artifact_name(&key.artifact_file_name()).expect("parses");
        assert_eq!(parsed_spec, spec);
        assert_eq!(fingerprint, key.config_hash);
        assert_eq!(shards, 4);
        for bad in [
            "ripple_adder_4.json",
            "ripple_adder_4_cfg12_sh4.json",
            "ripple_adder_4_cfg0123456789abcdef_sh4.txt",
            "notes.json",
            "x_cfg0123456789abcdef_shfour.json",
        ] {
            assert!(parse_artifact_name(bad).is_none(), "{bad}");
        }
    }

    #[test]
    fn lock_is_exclusive_and_released_on_drop() {
        let dir = TempDir::new("store_lock");
        let artifact = dir.join("m.json");
        let lock = StoreLock::acquire(&artifact, Duration::from_secs(5)).unwrap();
        let contested = StoreLock::acquire(&artifact, Duration::from_millis(60));
        match contested {
            Err(ModelError::StoreLock {
                waited_ms, detail, ..
            }) => {
                assert!(waited_ms >= 60, "{waited_ms}");
                assert!(detail.contains(&std::process::id().to_string()), "{detail}");
            }
            other => panic!("expected StoreLock timeout, got {other:?}"),
        }
        drop(lock);
        assert!(!lock_path(&artifact).exists(), "drop releases the lock");
        let _relock = StoreLock::acquire(&artifact, Duration::from_millis(60)).unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn stale_lock_of_a_dead_holder_is_broken() {
        let dir = TempDir::new("store_stale");
        let artifact = dir.join("m.json");
        // A pid far above any real pid_max: provably dead.
        std::fs::write(lock_path(&artifact), "999999999").unwrap();
        let _lock = StoreLock::acquire(&artifact, Duration::from_millis(200))
            .expect("stale lock is broken, not waited out");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn recycled_pid_lock_is_broken_via_start_time() {
        let dir = TempDir::new("store_recycled");
        let artifact = dir.join("m.json");
        // A live pid with a start time no real process has: models a lock
        // whose holder died and whose pid was recycled by another process.
        let pid = std::process::id();
        std::fs::write(lock_path(&artifact), format!("{pid} {}", u64::MAX)).unwrap();
        let _lock = StoreLock::acquire(&artifact, Duration::from_millis(200))
            .expect("recycled-pid lock is broken, not waited out");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_holder_with_matching_start_time_keeps_the_lock() {
        let dir = TempDir::new("store_live_holder");
        let artifact = dir.join("m.json");
        let pid = std::process::id();
        let start = proc_start_time(pid).expect("own /proc stat is readable");
        std::fs::write(lock_path(&artifact), format!("{pid} {start}")).unwrap();
        match StoreLock::acquire(&artifact, Duration::from_millis(80)) {
            Err(ModelError::StoreLock { detail, .. }) => {
                assert!(detail.contains(&pid.to_string()), "{detail}");
            }
            other => panic!("expected a held lock timeout, got {other:?}"),
        }
    }

    #[test]
    fn quarantine_never_overwrites() {
        let dir = TempDir::new("store_quarantine");
        let a = dir.join("m.json");
        std::fs::write(&a, "one").unwrap();
        let first = quarantine_file(dir.path(), &a).unwrap();
        std::fs::write(&a, "two").unwrap();
        let second = quarantine_file(dir.path(), &a).unwrap();
        assert_ne!(first, second);
        assert_eq!(std::fs::read_to_string(&first).unwrap(), "one");
        assert_eq!(std::fs::read_to_string(&second).unwrap(), "two");
        assert!(!a.exists());
    }

    #[test]
    fn fsck_classifies_a_mixed_root() {
        let dir = TempDir::new("store_fsck");
        let config = CharacterizationConfig::default();
        write_config_sidecar(dir.path(), &config).unwrap();
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        let key = crate::cache::ModelKey::new(spec, &config, 0);
        // A truncated artifact at a well-formed key path.
        std::fs::write(dir.join(&key.artifact_file_name()), "{torn").unwrap();
        // A foreign file.
        std::fs::write(dir.join("notes.json"), "{\"hello\":1}").unwrap();
        // An orphan temp and a stale lock.
        std::fs::write(dir.join("m.json.tmp.1.2"), "x").unwrap();
        std::fs::write(dir.join("m.json.lock"), "999999999").unwrap();
        let report = fsck(dir.path(), &FsckOptions::default()).unwrap();
        assert!(!report.is_clean());
        let status_of = |name: &str| {
            report
                .entries
                .iter()
                .find(|e| e.name == name)
                .unwrap_or_else(|| panic!("no entry {name} in {report:?}"))
                .status
                .clone()
        };
        assert_eq!(
            status_of(&key.artifact_file_name()),
            FsckStatus::Fault(ArtifactFaultKind::Truncated)
        );
        assert_eq!(
            status_of("notes.json"),
            FsckStatus::Fault(ArtifactFaultKind::Foreign)
        );
        assert_eq!(status_of("m.json.tmp.1.2"), FsckStatus::OrphanTemp);
        #[cfg(target_os = "linux")]
        assert_eq!(status_of("m.json.lock"), FsckStatus::StaleLock);
        let sidecar = format!("meta/cfg_{:016x}.json", config_fingerprint(&config));
        assert_eq!(status_of(&sidecar), FsckStatus::Valid);
        // Scan-only: nothing moved.
        assert!(dir.join("notes.json").exists());
        assert!(!dir.join(QUARANTINE_DIR).exists());
    }
}
