//! `PowerEngine` — the long-lived, thread-safe estimation facade.
//!
//! The engine owns a two-tier content-addressed model store:
//!
//! 1. an in-memory LRU ([`crate::cache::LruCache`]) of characterizations,
//!    keyed by [`ModelKey`] = (module spec, configuration hash, shard
//!    count), capacity-bounded with hit/miss/eviction counters;
//! 2. the on-disk [`ModelLibrary`] (optional), so characterizations
//!    survive the process and warm the next one.
//!
//! Cache misses characterize on demand with **single-flight
//! deduplication**: concurrent requests for the same key block on one
//! characterization instead of racing N gate-level runs. The leader
//! publishes its result (or failure) through a condvar-guarded flight
//! slot; waiters receive the shared `Arc` with no recomputation.
//!
//! ```
//! use hdpm_core::prelude::*;
//! use hdpm_netlist::{ModuleKind, ModuleSpec};
//!
//! # fn main() -> Result<(), hdpm_core::ModelError> {
//! let engine = PowerEngine::new(EngineOptions {
//!     config: CharacterizationConfig::builder().max_patterns(1500).build()?,
//!     ..EngineOptions::default()
//! });
//! let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
//! let first = engine.model(spec)?; // characterizes
//! let again = engine.model(spec)?; // memory hit, shares the Arc
//! assert_eq!(first.model, again.model);
//! assert_eq!(engine.stats().characterizations, 1);
//! # Ok(())
//! # }
//! ```

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, Weak};

use hdpm_datamodel::HdDistribution;
use hdpm_netlist::{ModuleKind, ModuleSpec};
use hdpm_telemetry as telemetry;
use hdpm_telemetry::{Stage, TraceCtx};
use serde::Serialize;

use crate::cache::{LruCache, ModelKey};
use crate::characterize::{
    characterize, characterize_sharded, Characterization, CharacterizationConfig,
};
use crate::error::ModelError;
use crate::fidelity::{self, Fidelity};
use crate::library::{CorruptArtifactPolicy, LibrarySource, ModelLibrary};
use crate::model::HdModel;
use crate::regress::{ParameterizableModel, Prototype};
use crate::shard::{parallel_map_ordered, resolve_threads, ShardingConfig};

/// Construction options of a [`PowerEngine`].
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Characterization configuration applied to every cache miss.
    pub config: CharacterizationConfig,
    /// Sharded-parallel characterization shape; `None` runs the
    /// sequential reference driver. The shard count is part of the cache
    /// key, the thread count is not (it never changes a result bit).
    pub sharding: Option<ShardingConfig>,
    /// Root directory of the on-disk tier; `None` keeps the engine
    /// memory-only.
    pub disk_root: Option<PathBuf>,
    /// Capacity of the in-memory LRU tier (entries).
    pub capacity: usize,
}

impl Default for EngineOptions {
    /// Defaults: the default characterization configuration, the default
    /// sharding (8 shards, all cores), no disk tier, 64 cached models.
    fn default() -> Self {
        EngineOptions {
            config: CharacterizationConfig::default(),
            sharding: Some(ShardingConfig::default()),
            disk_root: None,
            capacity: 64,
        }
    }
}

/// Where a fetched model came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CacheSource {
    /// In-memory LRU hit.
    Memory,
    /// Loaded from the on-disk library tier.
    Disk,
    /// Characterized on demand by this request.
    Fresh,
    /// Coalesced onto another request's in-flight characterization.
    Coalesced,
    /// No model at all: the tier-A closed-form structural estimate
    /// answered (fidelity ladder, [`Fidelity::Analytic`]).
    Analytic,
    /// A §5 regression over characterized sibling widths answered
    /// (fidelity ladder, [`Fidelity::Regressed`]).
    Regressed,
}

impl CacheSource {
    /// Lower-case wire name, as emitted by `hdpm serve`.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheSource::Memory => "memory",
            CacheSource::Disk => "disk",
            CacheSource::Fresh => "fresh",
            CacheSource::Coalesced => "coalesced",
            CacheSource::Analytic => "analytic",
            CacheSource::Regressed => "regressed",
        }
    }
}

/// Counter snapshot of an engine's cache and characterization activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct EngineStats {
    /// Live entries in the memory tier.
    pub entries: usize,
    /// Capacity bound of the memory tier.
    pub capacity: usize,
    /// Memory-tier lookups that hit.
    pub hits: u64,
    /// Memory-tier lookups that missed.
    pub misses: u64,
    /// Memory-tier evictions.
    pub evictions: u64,
    /// Misses served by the on-disk library tier.
    pub disk_hits: u64,
    /// Characterizations actually executed.
    pub characterizations: u64,
    /// Requests that coalesced onto an in-flight characterization.
    pub coalesced: u64,
    /// Characterizations currently in flight (registered leaders whose
    /// result has not been published yet). A live load indicator for
    /// servers sharing the engine, not a monotonic counter.
    pub inflight: usize,
    /// Estimates answered by the tier-A analytic model (fidelity ladder).
    pub analytic_served: u64,
    /// Estimates answered by a tier-B sibling regression (fidelity
    /// ladder).
    pub regressed_served: u64,
    /// Background fidelity upgrades completed (each one characterizes —
    /// or, under a server upgrade hook, cluster-fetches — one spec that
    /// was served below full fidelity).
    pub upgrades_done: u64,
}

/// An analytic estimation reply: the §6.3 distribution estimate, the
/// §6.2 average-Hd estimate, and where the model came from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Estimate {
    /// Expected charge per cycle under the full Hd distribution.
    pub charge_per_cycle: f64,
    /// Charge interpolated at the average Hd only.
    pub via_average: f64,
    /// The average Hd of the queried distribution.
    pub average_hd: f64,
    /// Which tier served the model.
    pub source: CacheSource,
    /// Fidelity tier of the answer (the fidelity ladder's A/B/C label).
    pub fidelity: Fidelity,
    /// Confidence in `[0, 1]`: `1.0` for full-fidelity answers, the
    /// in-sample [`ParameterizableModel::coefficient_errors`] figure for
    /// tier B, and the fixed [`fidelity::ANALYTIC_CONFIDENCE`] prior for
    /// tier A.
    pub confidence: f64,
}

/// Outcome of [`PowerEngine::warm`]: how each requested spec was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct WarmReport {
    /// Specs requested (including duplicates).
    pub requested: usize,
    /// Served from the memory tier.
    pub memory: usize,
    /// Served from the disk tier.
    pub disk: usize,
    /// Characterized by this warm call.
    pub characterized: usize,
    /// Coalesced onto another in-flight characterization.
    pub coalesced: usize,
}

/// One in-flight characterization that concurrent requests coalesce on.
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

enum FlightState {
    Pending,
    Ready(Arc<Characterization>),
    Failed(String),
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        }
    }

    /// Publish the leader's outcome and wake every waiter.
    fn resolve(&self, outcome: Result<Arc<Characterization>, String>) {
        let mut state = self.state.lock().expect("flight lock");
        *state = match outcome {
            Ok(c) => FlightState::Ready(c),
            Err(detail) => FlightState::Failed(detail),
        };
        self.cv.notify_all();
    }

    /// Block until the leader resolves the flight.
    fn wait(&self) -> Result<Arc<Characterization>, String> {
        let mut state = self.state.lock().expect("flight lock");
        loop {
            match &*state {
                FlightState::Pending => {
                    state = self.cv.wait(state).expect("flight lock");
                }
                FlightState::Ready(c) => return Ok(Arc::clone(c)),
                FlightState::Failed(detail) => return Err(detail.clone()),
            }
        }
    }
}

/// Memory cache and in-flight registry, guarded by one mutex so the
/// "hit, wait, or become leader" decision is atomic.
struct EngineInner {
    cache: LruCache<ModelKey, Arc<Characterization>>,
    inflight: HashMap<ModelKey, Arc<Flight>>,
}

/// Number of module families, indexing the per-kind sibling epochs.
const KIND_COUNT: usize = ModuleKind::ALL.len();

/// Position of a kind in the stable [`ModuleKind::ALL`] order.
fn kind_index(kind: ModuleKind) -> usize {
    ModuleKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("every kind is in ModuleKind::ALL")
}

/// Bound of the background upgrade queue: beyond this, new upgrade
/// requests are dropped (and counted) rather than queued — a cold burst
/// must not build an unbounded characterization backlog.
const UPGRADE_QUEUE_CAP: usize = 64;

/// Entries memoized by the tier-A analytic-model cache.
const ANALYTIC_CACHE_CAP: usize = 256;

/// Memoized tier-B fit of one module family, tagged with the sibling
/// epoch it was computed at. `fit: None` is a *negative* memo — too few
/// siblings — which is just as important to cache: refitting on every
/// cold request would rescan the disk tier.
struct FamilyFit {
    epoch: u64,
    fit: Option<(Arc<ParameterizableModel>, f64)>,
}

/// Background-upgrade queue shared between the engine and its worker
/// thread. Lives in its own `Arc` so the worker can observe shutdown
/// even while the engine itself is being dropped.
struct UpgradeShared {
    state: Mutex<UpgradeState>,
    cv: Condvar,
}

struct UpgradeState {
    queue: VecDeque<ModuleSpec>,
    /// Keys queued or currently being upgraded — the dedup set that
    /// coalesces repeated low-fidelity serves of one spec into a single
    /// background characterization.
    pending: HashSet<ModelKey>,
    shutdown: bool,
    worker_running: bool,
}

/// What the upgrade worker runs per spec instead of the default local
/// `fetch` — the server installs one that routes through cluster
/// ownership first.
type UpgradeHook = Arc<dyn Fn(&PowerEngine, ModuleSpec) + Send + Sync>;

/// The long-lived estimation facade: a thread-safe, two-tier
/// content-addressed cache of characterized models with single-flight
/// miss handling. See the [module docs](self) for the full contract.
pub struct PowerEngine {
    options: EngineOptions,
    library: Option<ModelLibrary>,
    inner: Mutex<EngineInner>,
    disk_hits: AtomicU64,
    characterizations: AtomicU64,
    coalesced: AtomicU64,
    // --- fidelity ladder ---
    /// Memoized tier-A analytic models (netlist build + stats per spec).
    analytic_cache: Mutex<LruCache<ModuleSpec, Arc<HdModel>>>,
    /// Memoized tier-B per-family fits, invalidated by `sibling_epochs`.
    family_fits: Mutex<HashMap<ModuleKind, FamilyFit>>,
    /// Bumped whenever a characterization of the kind lands in the memory
    /// cache; a family fit memoized at an older epoch refits.
    sibling_epochs: [AtomicU64; KIND_COUNT],
    analytic_served: AtomicU64,
    regressed_served: AtomicU64,
    upgrades_done: AtomicU64,
    upgrade: Arc<UpgradeShared>,
    upgrade_worker: Mutex<Option<std::thread::JoinHandle<()>>>,
    upgrade_hook: RwLock<Option<UpgradeHook>>,
}

impl std::fmt::Debug for PowerEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PowerEngine")
            .field("options", &self.options)
            .field("stats", &self.stats())
            .finish()
    }
}

impl PowerEngine {
    /// Build an engine from options. When `disk_root` is set, the on-disk
    /// tier is a [`ModelLibrary`] keyed identically (configuration and
    /// shard count in the artifact names).
    pub fn new(options: EngineOptions) -> Self {
        let library = options.disk_root.as_ref().map(|root| {
            match options.sharding {
                Some(sharding) => {
                    ModelLibrary::with_sharding(root.clone(), options.config, sharding)
                }
                None => ModelLibrary::new(root.clone(), options.config),
            }
            // Serving must survive a dirty store: corrupt artifacts
            // are quarantined and re-characterized, never fatal.
            .with_corrupt_policy(CorruptArtifactPolicy::Quarantine)
        });
        let capacity = options.capacity.max(1);
        PowerEngine {
            library,
            inner: Mutex::new(EngineInner {
                cache: LruCache::new(capacity),
                inflight: HashMap::new(),
            }),
            options,
            disk_hits: AtomicU64::new(0),
            characterizations: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            analytic_cache: Mutex::new(LruCache::new(ANALYTIC_CACHE_CAP)),
            family_fits: Mutex::new(HashMap::new()),
            sibling_epochs: std::array::from_fn(|_| AtomicU64::new(0)),
            analytic_served: AtomicU64::new(0),
            regressed_served: AtomicU64::new(0),
            upgrades_done: AtomicU64::new(0),
            upgrade: Arc::new(UpgradeShared {
                state: Mutex::new(UpgradeState {
                    queue: VecDeque::new(),
                    pending: HashSet::new(),
                    shutdown: false,
                    worker_running: false,
                }),
                cv: Condvar::new(),
            }),
            upgrade_worker: Mutex::new(None),
            upgrade_hook: RwLock::new(None),
        }
    }

    /// An engine with [`EngineOptions::default`].
    pub fn with_defaults() -> Self {
        PowerEngine::new(EngineOptions::default())
    }

    /// The engine's construction options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The cache key a spec maps to under this engine's configuration.
    pub fn key_for(&self, spec: ModuleSpec) -> ModelKey {
        let shards = self.options.sharding.map_or(0, |s| s.shards);
        ModelKey::new(spec, &self.options.config, shards)
    }

    /// Fetch the characterization of `spec`, reporting which tier served
    /// it. Misses characterize on demand; concurrent misses on the same
    /// key coalesce onto one characterization (single flight).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Netlist`] for unconstructible specs,
    /// [`ModelError::Artifact`] for corrupt disk artifacts, and
    /// [`ModelError::SingleFlight`] when a coalesced request's leader
    /// failed (the leader receives the original error). Failures are not
    /// cached: a later request retries.
    pub fn fetch(
        &self,
        spec: ModuleSpec,
    ) -> Result<(Arc<Characterization>, CacheSource), ModelError> {
        self.fetch_traced(spec, &mut TraceCtx::disabled())
    }

    /// [`PowerEngine::fetch`] with per-stage timing recorded into
    /// `trace`: [`Stage::CacheLookup`] covers the hit/wait/lead decision
    /// under the engine lock, [`Stage::SingleFlightWait`] the time
    /// blocked on another request's characterization, and
    /// [`Stage::Characterize`] the leader's own characterization —
    /// including disk-tier loads, which are attributed here because the
    /// artifact read replaces the characterization work.
    ///
    /// # Errors
    ///
    /// As for [`PowerEngine::fetch`].
    pub fn fetch_traced(
        &self,
        spec: ModuleSpec,
        trace: &mut TraceCtx,
    ) -> Result<(Arc<Characterization>, CacheSource), ModelError> {
        let key = self.key_for(spec);
        enum Role {
            Hit(Arc<Characterization>),
            Waiter(Arc<Flight>),
            Leader(Arc<Flight>),
        }
        let role = trace.time(Stage::CacheLookup, || {
            let mut inner = self.inner.lock().expect("engine lock");
            if let Some(cached) = inner.cache.get(&key) {
                Role::Hit(Arc::clone(cached))
            } else if let Some(flight) = inner.inflight.get(&key) {
                Role::Waiter(Arc::clone(flight))
            } else {
                let flight = Arc::new(Flight::new());
                inner.inflight.insert(key, Arc::clone(&flight));
                Role::Leader(flight)
            }
        });
        match role {
            Role::Hit(cached) => {
                telemetry::counter_add("engine.cache.hit", 1);
                Ok((cached, CacheSource::Memory))
            }
            Role::Waiter(flight) => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("engine.singleflight.coalesced", 1);
                trace
                    .time(Stage::SingleFlightWait, || flight.wait())
                    .map(|c| (c, CacheSource::Coalesced))
                    .map_err(|detail| ModelError::SingleFlight {
                        key: key.to_string(),
                        detail,
                    })
            }
            Role::Leader(flight) => {
                telemetry::counter_add("engine.cache.miss", 1);
                let _span = telemetry::span("engine.miss");
                let outcome = trace.time(Stage::Characterize, || self.load_or_characterize(spec));
                let mut inner = self.inner.lock().expect("engine lock");
                inner.inflight.remove(&key);
                match &outcome {
                    Ok((c, _)) => {
                        if let Some(evicted) = inner.cache.insert(key, Arc::clone(c)) {
                            telemetry::counter_add("engine.cache.eviction", 1);
                            telemetry::event(
                                telemetry::Level::Debug,
                                "engine.evict",
                                &[("key", evicted.to_string().into())],
                            );
                        }
                        // A new characterized sibling landed: any tier-B
                        // family fit memoized for this kind is stale.
                        self.sibling_epochs[kind_index(spec.kind)].fetch_add(1, Ordering::Release);
                        flight.resolve(Ok(Arc::clone(c)));
                    }
                    Err(e) => flight.resolve(Err(e.to_string())),
                }
                outcome
            }
        }
    }

    /// [`PowerEngine::fetch`] without the source annotation.
    ///
    /// # Errors
    ///
    /// As for [`PowerEngine::fetch`].
    pub fn model(&self, spec: ModuleSpec) -> Result<Arc<Characterization>, ModelError> {
        self.fetch(spec).map(|(c, _)| c)
    }

    /// Resolve a miss below the memory tier: disk artifact if present,
    /// fresh characterization otherwise (stored to disk when the engine
    /// has a library tier).
    fn load_or_characterize(
        &self,
        spec: ModuleSpec,
    ) -> Result<(Arc<Characterization>, CacheSource), ModelError> {
        if let Some(library) = &self.library {
            // get_traced reports which store path actually served the
            // request, so attribution cannot race a concurrent writer the
            // way a separate contains()-then-get() check could.
            let (result, source) = library.get_traced(spec)?;
            return match source {
                LibrarySource::DiskValid | LibrarySource::DiskMigrated => {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    telemetry::counter_add("engine.disk.hit", 1);
                    Ok((Arc::new(result), CacheSource::Disk))
                }
                LibrarySource::Characterized | LibrarySource::Recovered => {
                    self.characterizations.fetch_add(1, Ordering::Relaxed);
                    telemetry::counter_add("engine.characterize", 1);
                    Ok((Arc::new(result), CacheSource::Fresh))
                }
            };
        }
        let netlist = spec.build()?.validate()?;
        let result = match &self.options.sharding {
            Some(sharding) => characterize_sharded(&netlist, &self.options.config, sharding)?,
            None => characterize(&netlist, &self.options.config)?,
        };
        self.characterizations.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("engine.characterize", 1);
        Ok((Arc::new(result), CacheSource::Fresh))
    }

    /// Analytic power estimate of `spec` under an Hd distribution: the
    /// §6.3 expected charge plus the §6.2 average-Hd interpolation,
    /// served from the cache.
    ///
    /// # Errors
    ///
    /// As for [`PowerEngine::fetch`], plus
    /// [`ModelError::WidthMismatch`] if the distribution width differs
    /// from the module's input width.
    pub fn estimate(
        &self,
        spec: ModuleSpec,
        dist: &HdDistribution,
    ) -> Result<Estimate, ModelError> {
        self.estimate_traced(spec, dist, &mut TraceCtx::disabled())
    }

    /// [`PowerEngine::estimate`] with per-stage timing recorded into
    /// `trace`: the fetch stages (see [`PowerEngine::fetch_traced`]) plus
    /// [`Stage::Estimate`] covering the distribution and interpolation
    /// math.
    ///
    /// # Errors
    ///
    /// As for [`PowerEngine::estimate`].
    pub fn estimate_traced(
        &self,
        spec: ModuleSpec,
        dist: &HdDistribution,
        trace: &mut TraceCtx,
    ) -> Result<Estimate, ModelError> {
        let (characterization, source) = self.fetch_traced(spec, trace)?;
        let model = &characterization.model;
        trace.time(Stage::Estimate, || {
            Ok(Estimate {
                charge_per_cycle: model.estimate_distribution(dist)?,
                via_average: model.estimate_interpolated(dist.mean()),
                average_hd: dist.mean(),
                source,
                fidelity: Fidelity::Full,
                confidence: 1.0,
            })
        })
    }

    /// [`PowerEngine::estimate`] under a fidelity floor: answer from the
    /// **best tier instantly available** that is at least `floor`, and
    /// upgrade toward full fidelity in the background.
    ///
    /// * A model already in memory or on disk answers at
    ///   [`Fidelity::Full`] exactly like [`PowerEngine::estimate`].
    /// * Otherwise, with `floor <= Regressed` and enough characterized
    ///   sibling widths of the family, a §5 regression answers at
    ///   [`Fidelity::Regressed`] in microseconds.
    /// * Otherwise, with `floor == Analytic`, the closed-form
    ///   [`fidelity::analytic_model`] answers at [`Fidelity::Analytic`]
    ///   in nanoseconds-to-microseconds.
    /// * Only when the floor cannot be met instantly does the call block
    ///   on a characterization (`floor == Full` always does; `floor ==
    ///   Regressed` does when the family has too few siblings).
    ///
    /// After any below-full answer the spec is queued for a **background
    /// upgrade** (bounded, deduplicated by cache key): a worker thread
    /// characterizes it — or runs the server-installed
    /// [`PowerEngine::set_upgrade_hook`] — so the next request for the
    /// same key answers at full fidelity. Requires `Arc<Self>` because
    /// the worker holds a weak reference to the engine.
    ///
    /// # Errors
    ///
    /// As for [`PowerEngine::estimate`]; tier-A/B failures surface the
    /// same structured netlist/width errors the full path would.
    pub fn estimate_with_floor(
        self: &Arc<Self>,
        spec: ModuleSpec,
        dist: &HdDistribution,
        floor: Fidelity,
    ) -> Result<Estimate, ModelError> {
        self.estimate_with_floor_traced(spec, dist, floor, &mut TraceCtx::disabled())
    }

    /// [`PowerEngine::estimate_with_floor`] with per-stage timing
    /// recorded into `trace`.
    ///
    /// # Errors
    ///
    /// As for [`PowerEngine::estimate_with_floor`].
    pub fn estimate_with_floor_traced(
        self: &Arc<Self>,
        spec: ModuleSpec,
        dist: &HdDistribution,
        floor: Fidelity,
        trace: &mut TraceCtx,
    ) -> Result<Estimate, ModelError> {
        if floor == Fidelity::Full {
            return self.estimate_traced(spec, dist, trace);
        }
        // Full fidelity already local? Serve it — better than any floor
        // and still instant (memory lookup / one artifact read).
        let key = self.key_for(spec);
        let cached = trace.time(Stage::CacheLookup, || {
            let mut inner = self.inner.lock().expect("engine lock");
            inner.cache.get(&key).map(Arc::clone)
        });
        if let Some(c) = cached {
            telemetry::counter_add("engine.cache.hit", 1);
            return trace.time(Stage::Estimate, || {
                full_estimate(&c.model, dist, CacheSource::Memory)
            });
        }
        if self.library.as_ref().is_some_and(|l| l.contains(spec)) {
            return self.estimate_traced(spec, dist, trace);
        }
        // Tier B: regression over characterized siblings, if the family
        // has enough of them.
        if let Some((family, confidence)) = self.family_fit(spec.kind) {
            let estimate = trace.time(Stage::Estimate, || -> Result<Estimate, ModelError> {
                let predicted = family.predict_model(spec.width);
                Ok(Estimate {
                    charge_per_cycle: predicted.estimate_distribution(dist)?,
                    via_average: predicted.estimate_interpolated(dist.mean()),
                    average_hd: dist.mean(),
                    source: CacheSource::Regressed,
                    fidelity: Fidelity::Regressed,
                    confidence,
                })
            })?;
            self.regressed_served.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("engine.fidelity.regressed", 1);
            self.enqueue_upgrade(spec);
            return Ok(estimate);
        }
        // Tier A: the closed-form structural estimate, floor permitting.
        if floor == Fidelity::Analytic {
            let model = self.analytic_model_for(spec)?;
            let estimate = trace.time(Stage::Estimate, || -> Result<Estimate, ModelError> {
                Ok(Estimate {
                    charge_per_cycle: model.estimate_distribution(dist)?,
                    via_average: model.estimate_interpolated(dist.mean()),
                    average_hd: dist.mean(),
                    source: CacheSource::Analytic,
                    fidelity: Fidelity::Analytic,
                    confidence: fidelity::ANALYTIC_CONFIDENCE,
                })
            })?;
            self.analytic_served.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("engine.fidelity.analytic", 1);
            self.enqueue_upgrade(spec);
            return Ok(estimate);
        }
        // floor == Regressed with no family fit: the floor cannot be met
        // instantly, so pay the full characterization.
        self.estimate_traced(spec, dist, trace)
    }

    /// The memoized tier-B fit of a family, refitted when a new
    /// characterized sibling has landed since the memo was taken.
    /// Returns the fit and its confidence figure, or `None` when the
    /// family has too few characterized siblings (also memoized).
    fn family_fit(&self, kind: ModuleKind) -> Option<(Arc<ParameterizableModel>, f64)> {
        let epoch = self.sibling_epochs[kind_index(kind)].load(Ordering::Acquire);
        {
            let fits = self.family_fits.lock().expect("family fits lock");
            if let Some(memo) = fits.get(&kind) {
                if memo.epoch == epoch {
                    return memo.fit.clone();
                }
            }
        }
        // Harvest characterized siblings: memory tier first, then any
        // disk artifacts of this configuration not already seen.
        let mut prototypes: Vec<Prototype> = {
            let inner = self.inner.lock().expect("engine lock");
            inner
                .cache
                .iter()
                .filter(|(key, _)| key.spec.kind == kind)
                .map(|(key, c)| Prototype {
                    spec: key.spec,
                    model: c.model.clone(),
                })
                .collect()
        };
        if let Some(library) = &self.library {
            for spec in library.stored_specs() {
                if spec.kind != kind || prototypes.iter().any(|p| p.spec == spec) {
                    continue;
                }
                if let Some(c) = library.load_if_present(spec) {
                    prototypes.push(Prototype {
                        spec,
                        model: c.model,
                    });
                }
            }
        }
        let fit = ParameterizableModel::fit(&prototypes).ok().map(|fit| {
            let confidence = regressed_confidence(&fit, &prototypes);
            (Arc::new(fit), confidence)
        });
        if fit.is_some() {
            telemetry::counter_add("engine.fidelity.family_fit", 1);
        }
        let mut fits = self.family_fits.lock().expect("family fits lock");
        fits.insert(
            kind,
            FamilyFit {
                epoch,
                fit: fit.clone(),
            },
        );
        fit
    }

    /// The memoized tier-A analytic model of a spec.
    fn analytic_model_for(&self, spec: ModuleSpec) -> Result<Arc<HdModel>, ModelError> {
        {
            let mut cache = self.analytic_cache.lock().expect("analytic cache lock");
            if let Some(model) = cache.get(&spec) {
                return Ok(Arc::clone(model));
            }
        }
        let model = Arc::new(fidelity::analytic_model(spec)?);
        self.analytic_cache
            .lock()
            .expect("analytic cache lock")
            .insert(spec, Arc::clone(&model));
        Ok(model)
    }

    /// Install the action the background upgrade worker runs per spec in
    /// place of the default local [`PowerEngine::fetch`]. The server uses
    /// this to route upgrades through cluster ownership (peer fetch /
    /// forward to owner) before characterizing locally.
    pub fn set_upgrade_hook<F>(&self, hook: F)
    where
        F: Fn(&PowerEngine, ModuleSpec) + Send + Sync + 'static,
    {
        *self.upgrade_hook.write().expect("upgrade hook lock") = Some(Arc::new(hook));
    }

    /// Upgrade requests queued or running right now — a test/ops hook,
    /// racy by nature.
    pub fn pending_upgrades(&self) -> usize {
        self.upgrade
            .state
            .lock()
            .expect("upgrade lock")
            .pending
            .len()
    }

    /// Queue a background fidelity upgrade for `spec`: bounded, and
    /// deduplicated by cache key so repeated low-fidelity serves of one
    /// spec coalesce into a single characterization.
    fn enqueue_upgrade(self: &Arc<Self>, spec: ModuleSpec) {
        let key = self.key_for(spec);
        let spawn_worker = {
            let mut state = self.upgrade.state.lock().expect("upgrade lock");
            if state.shutdown || state.pending.contains(&key) {
                return;
            }
            if state.queue.len() >= UPGRADE_QUEUE_CAP {
                telemetry::counter_add("engine.upgrade.dropped", 1);
                return;
            }
            state.pending.insert(key);
            state.queue.push_back(spec);
            telemetry::counter_add("engine.upgrade.enqueued", 1);
            !std::mem::replace(&mut state.worker_running, true)
        };
        self.upgrade.cv.notify_one();
        if spawn_worker {
            let weak = Arc::downgrade(self);
            let shared = Arc::clone(&self.upgrade);
            let handle = std::thread::Builder::new()
                .name("hdpm-upgrade".into())
                .spawn(move || upgrade_worker(&weak, &shared))
                .expect("spawn upgrade worker");
            *self.upgrade_worker.lock().expect("upgrade worker lock") = Some(handle);
        }
    }

    /// One background upgrade: the installed hook, or a plain local
    /// fetch (which characterizes, caches and — with a disk tier —
    /// persists the spec).
    fn run_upgrade(&self, spec: ModuleSpec) {
        let hook = self.upgrade_hook.read().expect("upgrade hook lock").clone();
        match hook {
            Some(hook) => hook(self, spec),
            None => {
                if let Err(e) = self.fetch(spec) {
                    telemetry::event(
                        telemetry::Level::Warn,
                        "engine.upgrade.failed",
                        &[
                            ("spec", spec.to_string().into()),
                            ("error", e.to_string().into()),
                        ],
                    );
                }
            }
        }
        self.upgrades_done.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("engine.upgrade.done", 1);
    }

    /// Pre-populate the cache for `specs` on up to `threads` worker
    /// threads (0 = all cores). Duplicate specs coalesce through the
    /// single-flight path, so each distinct key characterizes at most
    /// once.
    ///
    /// # Errors
    ///
    /// Returns the first per-spec error in input order; remaining specs
    /// may or may not have been cached.
    pub fn warm(&self, specs: &[ModuleSpec], threads: usize) -> Result<WarmReport, ModelError> {
        let _span = telemetry::span("engine.warm");
        let results = parallel_map_ordered(specs, resolve_threads(threads), |_, spec| {
            self.fetch(*spec).map(|(_, source)| source)
        });
        let mut report = WarmReport {
            requested: specs.len(),
            ..WarmReport::default()
        };
        for result in results {
            match result? {
                CacheSource::Memory => report.memory += 1,
                CacheSource::Disk => report.disk += 1,
                CacheSource::Fresh => report.characterized += 1,
                CacheSource::Coalesced => report.coalesced += 1,
                // `fetch` always resolves a real model.
                CacheSource::Analytic | CacheSource::Regressed => unreachable!(),
            }
        }
        Ok(report)
    }

    /// Up to `limit` cache keys ordered most-recently-used first — the
    /// working set this engine is actually serving. Cluster warm-key
    /// gossip advertises these to peers.
    pub fn hottest_keys(&self, limit: usize) -> Vec<ModelKey> {
        let inner = self.inner.lock().expect("engine lock");
        inner.cache.hottest(limit)
    }

    /// Whether a model for `spec` is already available locally, in either
    /// tier, without fetching (and in particular without characterizing).
    /// Racy by nature — a concurrent eviction or store write can change
    /// the answer — so callers treat it as a hint, not a guarantee.
    pub fn has_model(&self, spec: ModuleSpec) -> bool {
        let key = self.key_for(spec);
        {
            let inner = self.inner.lock().expect("engine lock");
            if inner.cache.peek(&key).is_some() {
                return true;
            }
        }
        self.library
            .as_ref()
            .is_some_and(|library| library.contains(spec))
    }

    /// Counter snapshot of the cache tiers and characterization activity.
    pub fn stats(&self) -> EngineStats {
        let inner = self.inner.lock().expect("engine lock");
        EngineStats {
            entries: inner.cache.len(),
            capacity: inner.cache.capacity(),
            hits: inner.cache.hits(),
            misses: inner.cache.misses(),
            evictions: inner.cache.evictions(),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            characterizations: self.characterizations.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            inflight: inner.inflight.len(),
            analytic_served: self.analytic_served.load(Ordering::Relaxed),
            regressed_served: self.regressed_served.load(Ordering::Relaxed),
            upgrades_done: self.upgrades_done.load(Ordering::Relaxed),
        }
    }
}

impl Drop for PowerEngine {
    /// Stop the background upgrade worker. Joins unless the engine is
    /// being dropped *on* the worker thread (the worker held the last
    /// `Arc`), where a self-join would deadlock — the thread just
    /// detaches and exits on the shutdown flag it already observed.
    fn drop(&mut self) {
        {
            let mut state = self.upgrade.state.lock().expect("upgrade lock");
            state.shutdown = true;
        }
        self.upgrade.cv.notify_all();
        let handle = self
            .upgrade_worker
            .lock()
            .expect("upgrade worker lock")
            .take();
        if let Some(handle) = handle {
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }
}

/// A full-fidelity estimate from a characterized model.
fn full_estimate(
    model: &HdModel,
    dist: &HdDistribution,
    source: CacheSource,
) -> Result<Estimate, ModelError> {
    Ok(Estimate {
        charge_per_cycle: model.estimate_distribution(dist)?,
        via_average: model.estimate_interpolated(dist.mean()),
        average_hd: dist.mean(),
        source,
        fidelity: Fidelity::Full,
        confidence: 1.0,
    })
}

/// Confidence of a tier-B fit: the mean in-sample
/// [`ParameterizableModel::coefficient_errors`] percentage across the
/// prototypes it was fitted on, mapped to `(0, 0.95]` via
/// `1 / (1 + mean/100)` — an exact fit approaches 0.95 (never the 1.0
/// reserved for full fidelity), a 100%-off fit reports 0.5.
fn regressed_confidence(fit: &ParameterizableModel, prototypes: &[Prototype]) -> f64 {
    let mut total = 0.0f64;
    let mut count = 0usize;
    for prototype in prototypes {
        if let Ok(errors) = fit.coefficient_errors(prototype.spec, &prototype.model) {
            total += errors.iter().sum::<f64>();
            count += errors.len();
        }
    }
    let mean_pct = if count > 0 { total / count as f64 } else { 0.0 };
    (1.0 / (1.0 + mean_pct / 100.0)).min(0.95)
}

/// The background upgrade loop: pop specs, upgrade them through the
/// engine, exit on shutdown or once the engine itself is gone. Holds
/// only a weak engine reference so a dropped engine is never kept alive
/// by its own worker.
fn upgrade_worker(engine: &Weak<PowerEngine>, shared: &Arc<UpgradeShared>) {
    loop {
        let spec = {
            let mut state = shared.state.lock().expect("upgrade lock");
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(spec) = state.queue.pop_front() {
                    break spec;
                }
                state = shared.cv.wait(state).expect("upgrade lock");
            }
        };
        let Some(engine) = engine.upgrade() else {
            return;
        };
        let key = engine.key_for(spec);
        engine.run_upgrade(spec);
        shared
            .state
            .lock()
            .expect("upgrade lock")
            .pending
            .remove(&key);
        // `engine` (possibly the last Arc) drops here; PowerEngine::drop
        // detects the self-join case.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdpm_netlist::ModuleKind;

    fn quick_options() -> EngineOptions {
        EngineOptions {
            config: CharacterizationConfig {
                max_patterns: 1500,
                ..CharacterizationConfig::default()
            },
            sharding: Some(ShardingConfig {
                shards: 4,
                threads: 1,
            }),
            disk_root: None,
            capacity: 4,
        }
    }

    #[test]
    fn memory_tier_serves_repeat_requests() {
        let engine = PowerEngine::new(quick_options());
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        let (first, source) = engine.fetch(spec).unwrap();
        assert_eq!(source, CacheSource::Fresh);
        let (second, source) = engine.fetch(spec).unwrap();
        assert_eq!(source, CacheSource::Memory);
        assert!(Arc::ptr_eq(&first, &second), "hit shares the Arc");
        let stats = engine.stats();
        assert_eq!(stats.characterizations, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.inflight, 0, "no characterization left registered");
    }

    #[test]
    fn capacity_bound_evicts_lru() {
        let engine = PowerEngine::new(EngineOptions {
            capacity: 2,
            ..quick_options()
        });
        let specs: Vec<ModuleSpec> = [4usize, 5, 6]
            .iter()
            .map(|&w| ModuleSpec::new(ModuleKind::RippleAdder, w))
            .collect();
        engine.model(specs[0]).unwrap();
        engine.model(specs[1]).unwrap();
        engine.model(specs[0]).unwrap(); // touch: specs[1] becomes LRU
        engine.model(specs[2]).unwrap(); // evicts specs[1]
        assert_eq!(engine.stats().evictions, 1);
        let (_, source) = engine.fetch(specs[0]).unwrap();
        assert_eq!(source, CacheSource::Memory, "survivor still cached");
        let (_, source) = engine.fetch(specs[1]).unwrap();
        assert_eq!(source, CacheSource::Fresh, "victim re-characterizes");
        assert_eq!(engine.stats().characterizations, 4);
    }

    #[test]
    fn disk_tier_survives_engine_restart() {
        let root = crate::test_support::TempDir::new("engine_disk");
        let options = EngineOptions {
            disk_root: Some(root.path().to_path_buf()),
            ..quick_options()
        };
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        let first = {
            let engine = PowerEngine::new(options.clone());
            let (c, source) = engine.fetch(spec).unwrap();
            assert_eq!(source, CacheSource::Fresh);
            c.model.clone()
        };
        let engine = PowerEngine::new(options);
        let (c, source) = engine.fetch(spec).unwrap();
        assert_eq!(source, CacheSource::Disk);
        assert_eq!(c.model, first, "disk round-trip is exact");
        assert_eq!(engine.stats().disk_hits, 1);
        assert_eq!(engine.stats().characterizations, 0);
    }

    #[test]
    fn dirty_disk_tier_is_quarantined_not_fatal() {
        let root = crate::test_support::TempDir::new("engine_dirty");
        let options = EngineOptions {
            disk_root: Some(root.path().to_path_buf()),
            ..quick_options()
        };
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        // Plant a corrupt artifact exactly where the engine will look.
        let engine = PowerEngine::new(options.clone());
        let path = root.path().join(engine.key_for(spec).artifact_file_name());
        std::fs::write(&path, "{torn artifact").unwrap();
        let (_, source) = engine.fetch(spec).unwrap();
        assert_eq!(source, CacheSource::Fresh, "recovered by characterizing");
        assert!(
            root.path().join("quarantine").is_dir(),
            "corrupt artifact moved aside"
        );
        // A second engine cold-starts from the repaired store.
        let engine = PowerEngine::new(options);
        let (_, source) = engine.fetch(spec).unwrap();
        assert_eq!(source, CacheSource::Disk);
    }

    #[test]
    fn failures_are_not_cached() {
        let engine = PowerEngine::new(quick_options());
        let bad = ModuleSpec::new(ModuleKind::CsaMultiplier, 1usize);
        assert!(matches!(engine.model(bad), Err(ModelError::Netlist(_))));
        // The failed flight must be cleared so a retry re-attempts (and
        // fails with the structured error again, not a stale flight).
        assert!(matches!(engine.model(bad), Err(ModelError::Netlist(_))));
        assert_eq!(engine.stats().entries, 0);
    }

    #[test]
    fn warm_reports_sources() {
        let engine = PowerEngine::new(quick_options());
        let specs: Vec<ModuleSpec> = [4usize, 5]
            .iter()
            .map(|&w| ModuleSpec::new(ModuleKind::RippleAdder, w))
            .collect();
        let report = engine.warm(&specs, 2).unwrap();
        assert_eq!(report.requested, 2);
        assert_eq!(report.characterized, 2);
        let report = engine.warm(&specs, 2).unwrap();
        assert_eq!(report.memory, 2);
        assert_eq!(engine.stats().characterizations, 2);
    }

    #[test]
    fn estimate_serves_from_cache() {
        let engine = PowerEngine::new(quick_options());
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        let m = 8; // two 4-bit operands
        let dist = HdDistribution::from_histogram(&{
            let mut h = vec![0u64; m + 1];
            h[2] = 50;
            h[6] = 50;
            h
        });
        let cold = engine.estimate(spec, &dist).unwrap();
        assert_eq!(cold.source, CacheSource::Fresh);
        let warm = engine.estimate(spec, &dist).unwrap();
        assert_eq!(warm.source, CacheSource::Memory);
        assert_eq!(cold.charge_per_cycle, warm.charge_per_cycle);
        assert!(warm.charge_per_cycle > 0.0);
        assert_eq!(warm.average_hd, dist.mean());
    }

    #[test]
    fn traced_fetch_attributes_stage_time() {
        let engine = PowerEngine::new(quick_options());
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);

        let mut cold = TraceCtx::new();
        let (_, source) = engine.fetch_traced(spec, &mut cold).unwrap();
        assert_eq!(source, CacheSource::Fresh);
        assert!(
            cold.stage_ns(Stage::Characterize) > 0,
            "leader time lands in the characterize stage"
        );
        assert_eq!(cold.stage_ns(Stage::SingleFlightWait), 0);

        let mut warm = TraceCtx::new();
        let (_, source) = engine.fetch_traced(spec, &mut warm).unwrap();
        assert_eq!(source, CacheSource::Memory);
        assert_eq!(warm.stage_ns(Stage::Characterize), 0);

        let m = 8;
        let dist = HdDistribution::from_histogram(&{
            let mut h = vec![0u64; m + 1];
            h[4] = 1;
            h
        });
        let mut est = TraceCtx::new();
        engine.estimate_traced(spec, &dist, &mut est).unwrap();
        assert!(est.stage_ns(Stage::Estimate) > 0);
    }

    #[test]
    fn coalesced_fetch_times_single_flight_wait() {
        let engine = Arc::new(PowerEngine::new(EngineOptions {
            config: CharacterizationConfig {
                max_patterns: 50_000,
                ..CharacterizationConfig::default()
            },
            ..quick_options()
        }));
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 8usize);
        let leader = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || engine.fetch(spec).unwrap().1)
        };
        // Give the leader a head start so our fetch coalesces; if timing
        // still races (leader finished first) the source degrades to a
        // memory hit and the wait assertions are skipped.
        std::thread::sleep(std::time::Duration::from_millis(2));
        let mut waited = TraceCtx::new();
        let (_, source) = engine.fetch_traced(spec, &mut waited).unwrap();
        leader.join().unwrap();
        if source == CacheSource::Coalesced {
            assert!(waited.stage_ns(Stage::SingleFlightWait) > 0);
            assert_eq!(waited.stage_ns(Stage::Characterize), 0);
        }
    }

    /// Uniform dist over `bits` input bits for ladder tests.
    fn flat_dist(bits: usize) -> HdDistribution {
        HdDistribution::from_bit_activities(&vec![0.5; bits])
    }

    /// Poll until the engine has completed `n` background upgrades.
    fn await_upgrades(engine: &PowerEngine, n: u64) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        while engine.stats().upgrades_done < n {
            assert!(
                std::time::Instant::now() < deadline,
                "background upgrade never completed: {:?}",
                engine.stats()
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }

    #[test]
    fn analytic_floor_answers_instantly_then_upgrades_in_background() {
        let engine = Arc::new(PowerEngine::new(quick_options()));
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        let dist = flat_dist(8);
        let cold = engine
            .estimate_with_floor(spec, &dist, Fidelity::Analytic)
            .unwrap();
        assert_eq!(cold.fidelity, Fidelity::Analytic);
        assert_eq!(cold.source, CacheSource::Analytic);
        assert_eq!(cold.confidence, fidelity::ANALYTIC_CONFIDENCE);
        assert!(cold.charge_per_cycle > 0.0);
        assert_eq!(engine.stats().analytic_served, 1);
        // The background upgrade characterizes exactly once; the repeat
        // request then serves at full fidelity from memory.
        await_upgrades(&engine, 1);
        let warm = engine
            .estimate_with_floor(spec, &dist, Fidelity::Analytic)
            .unwrap();
        assert_eq!(warm.fidelity, Fidelity::Full);
        assert_eq!(warm.source, CacheSource::Memory);
        assert_eq!(warm.confidence, 1.0);
        assert_eq!(engine.stats().characterizations, 1);
    }

    #[test]
    fn regressed_floor_serves_from_sibling_fit() {
        let engine = Arc::new(PowerEngine::new(quick_options()));
        for width in [4usize, 6] {
            engine
                .model(ModuleSpec::new(ModuleKind::RippleAdder, width))
                .unwrap();
        }
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 5usize);
        let dist = flat_dist(10);
        let estimate = engine
            .estimate_with_floor(spec, &dist, Fidelity::Regressed)
            .unwrap();
        assert_eq!(estimate.fidelity, Fidelity::Regressed);
        assert_eq!(estimate.source, CacheSource::Regressed);
        assert!(
            estimate.confidence > 0.0 && estimate.confidence <= 0.95,
            "{}",
            estimate.confidence
        );
        assert!(estimate.charge_per_cycle > 0.0);
        // Tier B is also the best instant tier under an analytic floor.
        let spec7 = ModuleSpec::new(ModuleKind::RippleAdder, 7usize);
        let best = engine
            .estimate_with_floor(spec7, &flat_dist(14), Fidelity::Analytic)
            .unwrap();
        assert_eq!(best.fidelity, Fidelity::Regressed);
        assert_eq!(engine.stats().regressed_served, 2);
        // Neither tier-B answer blocked on a characterization; both
        // enqueued one instead. Once those upgrades drain, exactly the
        // two seeds plus the two upgraded widths have been characterized.
        await_upgrades(&engine, 2);
        assert_eq!(engine.stats().characterizations, 4);
    }

    #[test]
    fn regressed_floor_without_siblings_blocks_to_full() {
        let engine = Arc::new(PowerEngine::new(quick_options()));
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        let estimate = engine
            .estimate_with_floor(spec, &flat_dist(8), Fidelity::Regressed)
            .unwrap();
        assert_eq!(estimate.fidelity, Fidelity::Full);
        assert_eq!(estimate.source, CacheSource::Fresh);
        assert_eq!(engine.stats().characterizations, 1);
    }

    #[test]
    fn family_fit_refits_when_a_new_sibling_lands() {
        let engine = Arc::new(PowerEngine::new(quick_options()));
        for width in [4usize, 6] {
            engine
                .model(ModuleSpec::new(ModuleKind::RippleAdder, width))
                .unwrap();
        }
        let (first_fit, _) = engine.family_fit(ModuleKind::RippleAdder).unwrap();
        // Memoized: same Arc while no sibling lands.
        let (again, _) = engine.family_fit(ModuleKind::RippleAdder).unwrap();
        assert!(Arc::ptr_eq(&first_fit, &again));
        engine
            .model(ModuleSpec::new(ModuleKind::RippleAdder, 8usize))
            .unwrap();
        let (refit, _) = engine.family_fit(ModuleKind::RippleAdder).unwrap();
        assert!(
            !Arc::ptr_eq(&first_fit, &refit),
            "a new characterized sibling must invalidate the family fit"
        );
        assert_eq!(refit.kind(), ModuleKind::RippleAdder);
    }

    #[test]
    fn upgrade_queue_deduplicates_by_key() {
        let engine = Arc::new(PowerEngine::new(quick_options()));
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        let dist = flat_dist(8);
        for _ in 0..5 {
            engine
                .estimate_with_floor(spec, &dist, Fidelity::Analytic)
                .unwrap();
        }
        await_upgrades(&engine, 1);
        // Five analytic serves, one upgrade, one characterization.
        let stats = engine.stats();
        assert_eq!(stats.characterizations, 1, "{stats:?}");
    }

    #[test]
    fn disk_siblings_feed_the_family_fit() {
        let root = crate::test_support::TempDir::new("engine_fit_disk");
        let options = EngineOptions {
            disk_root: Some(root.path().to_path_buf()),
            ..quick_options()
        };
        {
            let warmup = PowerEngine::new(options.clone());
            for width in [4usize, 6] {
                warmup
                    .model(ModuleSpec::new(ModuleKind::RippleAdder, width))
                    .unwrap();
            }
        }
        // A cold engine (empty memory tier) fits tier B from the disk
        // artifacts alone.
        let engine = Arc::new(PowerEngine::new(options));
        let estimate = engine
            .estimate_with_floor(
                ModuleSpec::new(ModuleKind::RippleAdder, 5usize),
                &flat_dist(10),
                Fidelity::Regressed,
            )
            .unwrap();
        assert_eq!(estimate.fidelity, Fidelity::Regressed);
        assert_eq!(engine.stats().characterizations, 0);
    }

    #[test]
    fn sequential_and_sharded_engines_use_distinct_keys() {
        let sharded = PowerEngine::new(quick_options());
        let sequential = PowerEngine::new(EngineOptions {
            sharding: None,
            ..quick_options()
        });
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        assert_ne!(sharded.key_for(spec), sequential.key_for(spec));
        assert_eq!(sequential.key_for(spec).shards, 0);
    }
}
