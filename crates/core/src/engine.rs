//! `PowerEngine` — the long-lived, thread-safe estimation facade.
//!
//! The engine owns a two-tier content-addressed model store:
//!
//! 1. an in-memory LRU ([`crate::cache::LruCache`]) of characterizations,
//!    keyed by [`ModelKey`] = (module spec, configuration hash, shard
//!    count), capacity-bounded with hit/miss/eviction counters;
//! 2. the on-disk [`ModelLibrary`] (optional), so characterizations
//!    survive the process and warm the next one.
//!
//! Cache misses characterize on demand with **single-flight
//! deduplication**: concurrent requests for the same key block on one
//! characterization instead of racing N gate-level runs. The leader
//! publishes its result (or failure) through a condvar-guarded flight
//! slot; waiters receive the shared `Arc` with no recomputation.
//!
//! ```
//! use hdpm_core::prelude::*;
//! use hdpm_netlist::{ModuleKind, ModuleSpec};
//!
//! # fn main() -> Result<(), hdpm_core::ModelError> {
//! let engine = PowerEngine::new(EngineOptions {
//!     config: CharacterizationConfig::builder().max_patterns(1500).build()?,
//!     ..EngineOptions::default()
//! });
//! let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
//! let first = engine.model(spec)?; // characterizes
//! let again = engine.model(spec)?; // memory hit, shares the Arc
//! assert_eq!(first.model, again.model);
//! assert_eq!(engine.stats().characterizations, 1);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use hdpm_datamodel::HdDistribution;
use hdpm_netlist::ModuleSpec;
use hdpm_telemetry as telemetry;
use hdpm_telemetry::{Stage, TraceCtx};
use serde::Serialize;

use crate::cache::{LruCache, ModelKey};
use crate::characterize::{
    characterize, characterize_sharded, Characterization, CharacterizationConfig,
};
use crate::error::ModelError;
use crate::library::{CorruptArtifactPolicy, LibrarySource, ModelLibrary};
use crate::shard::{parallel_map_ordered, resolve_threads, ShardingConfig};

/// Construction options of a [`PowerEngine`].
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Characterization configuration applied to every cache miss.
    pub config: CharacterizationConfig,
    /// Sharded-parallel characterization shape; `None` runs the
    /// sequential reference driver. The shard count is part of the cache
    /// key, the thread count is not (it never changes a result bit).
    pub sharding: Option<ShardingConfig>,
    /// Root directory of the on-disk tier; `None` keeps the engine
    /// memory-only.
    pub disk_root: Option<PathBuf>,
    /// Capacity of the in-memory LRU tier (entries).
    pub capacity: usize,
}

impl Default for EngineOptions {
    /// Defaults: the default characterization configuration, the default
    /// sharding (8 shards, all cores), no disk tier, 64 cached models.
    fn default() -> Self {
        EngineOptions {
            config: CharacterizationConfig::default(),
            sharding: Some(ShardingConfig::default()),
            disk_root: None,
            capacity: 64,
        }
    }
}

/// Where a fetched model came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CacheSource {
    /// In-memory LRU hit.
    Memory,
    /// Loaded from the on-disk library tier.
    Disk,
    /// Characterized on demand by this request.
    Fresh,
    /// Coalesced onto another request's in-flight characterization.
    Coalesced,
}

impl CacheSource {
    /// Lower-case wire name, as emitted by `hdpm serve`.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheSource::Memory => "memory",
            CacheSource::Disk => "disk",
            CacheSource::Fresh => "fresh",
            CacheSource::Coalesced => "coalesced",
        }
    }
}

/// Counter snapshot of an engine's cache and characterization activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct EngineStats {
    /// Live entries in the memory tier.
    pub entries: usize,
    /// Capacity bound of the memory tier.
    pub capacity: usize,
    /// Memory-tier lookups that hit.
    pub hits: u64,
    /// Memory-tier lookups that missed.
    pub misses: u64,
    /// Memory-tier evictions.
    pub evictions: u64,
    /// Misses served by the on-disk library tier.
    pub disk_hits: u64,
    /// Characterizations actually executed.
    pub characterizations: u64,
    /// Requests that coalesced onto an in-flight characterization.
    pub coalesced: u64,
    /// Characterizations currently in flight (registered leaders whose
    /// result has not been published yet). A live load indicator for
    /// servers sharing the engine, not a monotonic counter.
    pub inflight: usize,
}

/// An analytic estimation reply: the §6.3 distribution estimate, the
/// §6.2 average-Hd estimate, and where the model came from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Estimate {
    /// Expected charge per cycle under the full Hd distribution.
    pub charge_per_cycle: f64,
    /// Charge interpolated at the average Hd only.
    pub via_average: f64,
    /// The average Hd of the queried distribution.
    pub average_hd: f64,
    /// Which tier served the model.
    pub source: CacheSource,
}

/// Outcome of [`PowerEngine::warm`]: how each requested spec was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct WarmReport {
    /// Specs requested (including duplicates).
    pub requested: usize,
    /// Served from the memory tier.
    pub memory: usize,
    /// Served from the disk tier.
    pub disk: usize,
    /// Characterized by this warm call.
    pub characterized: usize,
    /// Coalesced onto another in-flight characterization.
    pub coalesced: usize,
}

/// One in-flight characterization that concurrent requests coalesce on.
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

enum FlightState {
    Pending,
    Ready(Arc<Characterization>),
    Failed(String),
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        }
    }

    /// Publish the leader's outcome and wake every waiter.
    fn resolve(&self, outcome: Result<Arc<Characterization>, String>) {
        let mut state = self.state.lock().expect("flight lock");
        *state = match outcome {
            Ok(c) => FlightState::Ready(c),
            Err(detail) => FlightState::Failed(detail),
        };
        self.cv.notify_all();
    }

    /// Block until the leader resolves the flight.
    fn wait(&self) -> Result<Arc<Characterization>, String> {
        let mut state = self.state.lock().expect("flight lock");
        loop {
            match &*state {
                FlightState::Pending => {
                    state = self.cv.wait(state).expect("flight lock");
                }
                FlightState::Ready(c) => return Ok(Arc::clone(c)),
                FlightState::Failed(detail) => return Err(detail.clone()),
            }
        }
    }
}

/// Memory cache and in-flight registry, guarded by one mutex so the
/// "hit, wait, or become leader" decision is atomic.
struct EngineInner {
    cache: LruCache<ModelKey, Arc<Characterization>>,
    inflight: HashMap<ModelKey, Arc<Flight>>,
}

/// The long-lived estimation facade: a thread-safe, two-tier
/// content-addressed cache of characterized models with single-flight
/// miss handling. See the [module docs](self) for the full contract.
pub struct PowerEngine {
    options: EngineOptions,
    library: Option<ModelLibrary>,
    inner: Mutex<EngineInner>,
    disk_hits: AtomicU64,
    characterizations: AtomicU64,
    coalesced: AtomicU64,
}

impl std::fmt::Debug for PowerEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PowerEngine")
            .field("options", &self.options)
            .field("stats", &self.stats())
            .finish()
    }
}

impl PowerEngine {
    /// Build an engine from options. When `disk_root` is set, the on-disk
    /// tier is a [`ModelLibrary`] keyed identically (configuration and
    /// shard count in the artifact names).
    pub fn new(options: EngineOptions) -> Self {
        let library = options.disk_root.as_ref().map(|root| {
            match options.sharding {
                Some(sharding) => {
                    ModelLibrary::with_sharding(root.clone(), options.config, sharding)
                }
                None => ModelLibrary::new(root.clone(), options.config),
            }
            // Serving must survive a dirty store: corrupt artifacts
            // are quarantined and re-characterized, never fatal.
            .with_corrupt_policy(CorruptArtifactPolicy::Quarantine)
        });
        let capacity = options.capacity.max(1);
        PowerEngine {
            library,
            inner: Mutex::new(EngineInner {
                cache: LruCache::new(capacity),
                inflight: HashMap::new(),
            }),
            options,
            disk_hits: AtomicU64::new(0),
            characterizations: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// An engine with [`EngineOptions::default`].
    pub fn with_defaults() -> Self {
        PowerEngine::new(EngineOptions::default())
    }

    /// The engine's construction options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The cache key a spec maps to under this engine's configuration.
    pub fn key_for(&self, spec: ModuleSpec) -> ModelKey {
        let shards = self.options.sharding.map_or(0, |s| s.shards);
        ModelKey::new(spec, &self.options.config, shards)
    }

    /// Fetch the characterization of `spec`, reporting which tier served
    /// it. Misses characterize on demand; concurrent misses on the same
    /// key coalesce onto one characterization (single flight).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Netlist`] for unconstructible specs,
    /// [`ModelError::Artifact`] for corrupt disk artifacts, and
    /// [`ModelError::SingleFlight`] when a coalesced request's leader
    /// failed (the leader receives the original error). Failures are not
    /// cached: a later request retries.
    pub fn fetch(
        &self,
        spec: ModuleSpec,
    ) -> Result<(Arc<Characterization>, CacheSource), ModelError> {
        self.fetch_traced(spec, &mut TraceCtx::disabled())
    }

    /// [`PowerEngine::fetch`] with per-stage timing recorded into
    /// `trace`: [`Stage::CacheLookup`] covers the hit/wait/lead decision
    /// under the engine lock, [`Stage::SingleFlightWait`] the time
    /// blocked on another request's characterization, and
    /// [`Stage::Characterize`] the leader's own characterization —
    /// including disk-tier loads, which are attributed here because the
    /// artifact read replaces the characterization work.
    ///
    /// # Errors
    ///
    /// As for [`PowerEngine::fetch`].
    pub fn fetch_traced(
        &self,
        spec: ModuleSpec,
        trace: &mut TraceCtx,
    ) -> Result<(Arc<Characterization>, CacheSource), ModelError> {
        let key = self.key_for(spec);
        enum Role {
            Hit(Arc<Characterization>),
            Waiter(Arc<Flight>),
            Leader(Arc<Flight>),
        }
        let role = trace.time(Stage::CacheLookup, || {
            let mut inner = self.inner.lock().expect("engine lock");
            if let Some(cached) = inner.cache.get(&key) {
                Role::Hit(Arc::clone(cached))
            } else if let Some(flight) = inner.inflight.get(&key) {
                Role::Waiter(Arc::clone(flight))
            } else {
                let flight = Arc::new(Flight::new());
                inner.inflight.insert(key, Arc::clone(&flight));
                Role::Leader(flight)
            }
        });
        match role {
            Role::Hit(cached) => {
                telemetry::counter_add("engine.cache.hit", 1);
                Ok((cached, CacheSource::Memory))
            }
            Role::Waiter(flight) => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("engine.singleflight.coalesced", 1);
                trace
                    .time(Stage::SingleFlightWait, || flight.wait())
                    .map(|c| (c, CacheSource::Coalesced))
                    .map_err(|detail| ModelError::SingleFlight {
                        key: key.to_string(),
                        detail,
                    })
            }
            Role::Leader(flight) => {
                telemetry::counter_add("engine.cache.miss", 1);
                let _span = telemetry::span("engine.miss");
                let outcome = trace.time(Stage::Characterize, || self.load_or_characterize(spec));
                let mut inner = self.inner.lock().expect("engine lock");
                inner.inflight.remove(&key);
                match &outcome {
                    Ok((c, _)) => {
                        if let Some(evicted) = inner.cache.insert(key, Arc::clone(c)) {
                            telemetry::counter_add("engine.cache.eviction", 1);
                            telemetry::event(
                                telemetry::Level::Debug,
                                "engine.evict",
                                &[("key", evicted.to_string().into())],
                            );
                        }
                        flight.resolve(Ok(Arc::clone(c)));
                    }
                    Err(e) => flight.resolve(Err(e.to_string())),
                }
                outcome
            }
        }
    }

    /// [`PowerEngine::fetch`] without the source annotation.
    ///
    /// # Errors
    ///
    /// As for [`PowerEngine::fetch`].
    pub fn model(&self, spec: ModuleSpec) -> Result<Arc<Characterization>, ModelError> {
        self.fetch(spec).map(|(c, _)| c)
    }

    /// Resolve a miss below the memory tier: disk artifact if present,
    /// fresh characterization otherwise (stored to disk when the engine
    /// has a library tier).
    fn load_or_characterize(
        &self,
        spec: ModuleSpec,
    ) -> Result<(Arc<Characterization>, CacheSource), ModelError> {
        if let Some(library) = &self.library {
            // get_traced reports which store path actually served the
            // request, so attribution cannot race a concurrent writer the
            // way a separate contains()-then-get() check could.
            let (result, source) = library.get_traced(spec)?;
            return match source {
                LibrarySource::DiskValid | LibrarySource::DiskMigrated => {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    telemetry::counter_add("engine.disk.hit", 1);
                    Ok((Arc::new(result), CacheSource::Disk))
                }
                LibrarySource::Characterized | LibrarySource::Recovered => {
                    self.characterizations.fetch_add(1, Ordering::Relaxed);
                    telemetry::counter_add("engine.characterize", 1);
                    Ok((Arc::new(result), CacheSource::Fresh))
                }
            };
        }
        let netlist = spec.build()?.validate()?;
        let result = match &self.options.sharding {
            Some(sharding) => characterize_sharded(&netlist, &self.options.config, sharding)?,
            None => characterize(&netlist, &self.options.config)?,
        };
        self.characterizations.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("engine.characterize", 1);
        Ok((Arc::new(result), CacheSource::Fresh))
    }

    /// Analytic power estimate of `spec` under an Hd distribution: the
    /// §6.3 expected charge plus the §6.2 average-Hd interpolation,
    /// served from the cache.
    ///
    /// # Errors
    ///
    /// As for [`PowerEngine::fetch`], plus
    /// [`ModelError::WidthMismatch`] if the distribution width differs
    /// from the module's input width.
    pub fn estimate(
        &self,
        spec: ModuleSpec,
        dist: &HdDistribution,
    ) -> Result<Estimate, ModelError> {
        self.estimate_traced(spec, dist, &mut TraceCtx::disabled())
    }

    /// [`PowerEngine::estimate`] with per-stage timing recorded into
    /// `trace`: the fetch stages (see [`PowerEngine::fetch_traced`]) plus
    /// [`Stage::Estimate`] covering the distribution and interpolation
    /// math.
    ///
    /// # Errors
    ///
    /// As for [`PowerEngine::estimate`].
    pub fn estimate_traced(
        &self,
        spec: ModuleSpec,
        dist: &HdDistribution,
        trace: &mut TraceCtx,
    ) -> Result<Estimate, ModelError> {
        let (characterization, source) = self.fetch_traced(spec, trace)?;
        let model = &characterization.model;
        trace.time(Stage::Estimate, || {
            Ok(Estimate {
                charge_per_cycle: model.estimate_distribution(dist)?,
                via_average: model.estimate_interpolated(dist.mean()),
                average_hd: dist.mean(),
                source,
            })
        })
    }

    /// Pre-populate the cache for `specs` on up to `threads` worker
    /// threads (0 = all cores). Duplicate specs coalesce through the
    /// single-flight path, so each distinct key characterizes at most
    /// once.
    ///
    /// # Errors
    ///
    /// Returns the first per-spec error in input order; remaining specs
    /// may or may not have been cached.
    pub fn warm(&self, specs: &[ModuleSpec], threads: usize) -> Result<WarmReport, ModelError> {
        let _span = telemetry::span("engine.warm");
        let results = parallel_map_ordered(specs, resolve_threads(threads), |_, spec| {
            self.fetch(*spec).map(|(_, source)| source)
        });
        let mut report = WarmReport {
            requested: specs.len(),
            ..WarmReport::default()
        };
        for result in results {
            match result? {
                CacheSource::Memory => report.memory += 1,
                CacheSource::Disk => report.disk += 1,
                CacheSource::Fresh => report.characterized += 1,
                CacheSource::Coalesced => report.coalesced += 1,
            }
        }
        Ok(report)
    }

    /// Up to `limit` cache keys ordered most-recently-used first — the
    /// working set this engine is actually serving. Cluster warm-key
    /// gossip advertises these to peers.
    pub fn hottest_keys(&self, limit: usize) -> Vec<ModelKey> {
        let inner = self.inner.lock().expect("engine lock");
        inner.cache.hottest(limit)
    }

    /// Whether a model for `spec` is already available locally, in either
    /// tier, without fetching (and in particular without characterizing).
    /// Racy by nature — a concurrent eviction or store write can change
    /// the answer — so callers treat it as a hint, not a guarantee.
    pub fn has_model(&self, spec: ModuleSpec) -> bool {
        let key = self.key_for(spec);
        {
            let inner = self.inner.lock().expect("engine lock");
            if inner.cache.peek(&key).is_some() {
                return true;
            }
        }
        self.library
            .as_ref()
            .is_some_and(|library| library.contains(spec))
    }

    /// Counter snapshot of the cache tiers and characterization activity.
    pub fn stats(&self) -> EngineStats {
        let inner = self.inner.lock().expect("engine lock");
        EngineStats {
            entries: inner.cache.len(),
            capacity: inner.cache.capacity(),
            hits: inner.cache.hits(),
            misses: inner.cache.misses(),
            evictions: inner.cache.evictions(),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            characterizations: self.characterizations.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            inflight: inner.inflight.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdpm_netlist::ModuleKind;

    fn quick_options() -> EngineOptions {
        EngineOptions {
            config: CharacterizationConfig {
                max_patterns: 1500,
                ..CharacterizationConfig::default()
            },
            sharding: Some(ShardingConfig {
                shards: 4,
                threads: 1,
            }),
            disk_root: None,
            capacity: 4,
        }
    }

    #[test]
    fn memory_tier_serves_repeat_requests() {
        let engine = PowerEngine::new(quick_options());
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        let (first, source) = engine.fetch(spec).unwrap();
        assert_eq!(source, CacheSource::Fresh);
        let (second, source) = engine.fetch(spec).unwrap();
        assert_eq!(source, CacheSource::Memory);
        assert!(Arc::ptr_eq(&first, &second), "hit shares the Arc");
        let stats = engine.stats();
        assert_eq!(stats.characterizations, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.inflight, 0, "no characterization left registered");
    }

    #[test]
    fn capacity_bound_evicts_lru() {
        let engine = PowerEngine::new(EngineOptions {
            capacity: 2,
            ..quick_options()
        });
        let specs: Vec<ModuleSpec> = [4usize, 5, 6]
            .iter()
            .map(|&w| ModuleSpec::new(ModuleKind::RippleAdder, w))
            .collect();
        engine.model(specs[0]).unwrap();
        engine.model(specs[1]).unwrap();
        engine.model(specs[0]).unwrap(); // touch: specs[1] becomes LRU
        engine.model(specs[2]).unwrap(); // evicts specs[1]
        assert_eq!(engine.stats().evictions, 1);
        let (_, source) = engine.fetch(specs[0]).unwrap();
        assert_eq!(source, CacheSource::Memory, "survivor still cached");
        let (_, source) = engine.fetch(specs[1]).unwrap();
        assert_eq!(source, CacheSource::Fresh, "victim re-characterizes");
        assert_eq!(engine.stats().characterizations, 4);
    }

    #[test]
    fn disk_tier_survives_engine_restart() {
        let root = crate::test_support::TempDir::new("engine_disk");
        let options = EngineOptions {
            disk_root: Some(root.path().to_path_buf()),
            ..quick_options()
        };
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        let first = {
            let engine = PowerEngine::new(options.clone());
            let (c, source) = engine.fetch(spec).unwrap();
            assert_eq!(source, CacheSource::Fresh);
            c.model.clone()
        };
        let engine = PowerEngine::new(options);
        let (c, source) = engine.fetch(spec).unwrap();
        assert_eq!(source, CacheSource::Disk);
        assert_eq!(c.model, first, "disk round-trip is exact");
        assert_eq!(engine.stats().disk_hits, 1);
        assert_eq!(engine.stats().characterizations, 0);
    }

    #[test]
    fn dirty_disk_tier_is_quarantined_not_fatal() {
        let root = crate::test_support::TempDir::new("engine_dirty");
        let options = EngineOptions {
            disk_root: Some(root.path().to_path_buf()),
            ..quick_options()
        };
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        // Plant a corrupt artifact exactly where the engine will look.
        let engine = PowerEngine::new(options.clone());
        let path = root.path().join(engine.key_for(spec).artifact_file_name());
        std::fs::write(&path, "{torn artifact").unwrap();
        let (_, source) = engine.fetch(spec).unwrap();
        assert_eq!(source, CacheSource::Fresh, "recovered by characterizing");
        assert!(
            root.path().join("quarantine").is_dir(),
            "corrupt artifact moved aside"
        );
        // A second engine cold-starts from the repaired store.
        let engine = PowerEngine::new(options);
        let (_, source) = engine.fetch(spec).unwrap();
        assert_eq!(source, CacheSource::Disk);
    }

    #[test]
    fn failures_are_not_cached() {
        let engine = PowerEngine::new(quick_options());
        let bad = ModuleSpec::new(ModuleKind::CsaMultiplier, 1usize);
        assert!(matches!(engine.model(bad), Err(ModelError::Netlist(_))));
        // The failed flight must be cleared so a retry re-attempts (and
        // fails with the structured error again, not a stale flight).
        assert!(matches!(engine.model(bad), Err(ModelError::Netlist(_))));
        assert_eq!(engine.stats().entries, 0);
    }

    #[test]
    fn warm_reports_sources() {
        let engine = PowerEngine::new(quick_options());
        let specs: Vec<ModuleSpec> = [4usize, 5]
            .iter()
            .map(|&w| ModuleSpec::new(ModuleKind::RippleAdder, w))
            .collect();
        let report = engine.warm(&specs, 2).unwrap();
        assert_eq!(report.requested, 2);
        assert_eq!(report.characterized, 2);
        let report = engine.warm(&specs, 2).unwrap();
        assert_eq!(report.memory, 2);
        assert_eq!(engine.stats().characterizations, 2);
    }

    #[test]
    fn estimate_serves_from_cache() {
        let engine = PowerEngine::new(quick_options());
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        let m = 8; // two 4-bit operands
        let dist = HdDistribution::from_histogram(&{
            let mut h = vec![0u64; m + 1];
            h[2] = 50;
            h[6] = 50;
            h
        });
        let cold = engine.estimate(spec, &dist).unwrap();
        assert_eq!(cold.source, CacheSource::Fresh);
        let warm = engine.estimate(spec, &dist).unwrap();
        assert_eq!(warm.source, CacheSource::Memory);
        assert_eq!(cold.charge_per_cycle, warm.charge_per_cycle);
        assert!(warm.charge_per_cycle > 0.0);
        assert_eq!(warm.average_hd, dist.mean());
    }

    #[test]
    fn traced_fetch_attributes_stage_time() {
        let engine = PowerEngine::new(quick_options());
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);

        let mut cold = TraceCtx::new();
        let (_, source) = engine.fetch_traced(spec, &mut cold).unwrap();
        assert_eq!(source, CacheSource::Fresh);
        assert!(
            cold.stage_ns(Stage::Characterize) > 0,
            "leader time lands in the characterize stage"
        );
        assert_eq!(cold.stage_ns(Stage::SingleFlightWait), 0);

        let mut warm = TraceCtx::new();
        let (_, source) = engine.fetch_traced(spec, &mut warm).unwrap();
        assert_eq!(source, CacheSource::Memory);
        assert_eq!(warm.stage_ns(Stage::Characterize), 0);

        let m = 8;
        let dist = HdDistribution::from_histogram(&{
            let mut h = vec![0u64; m + 1];
            h[4] = 1;
            h
        });
        let mut est = TraceCtx::new();
        engine.estimate_traced(spec, &dist, &mut est).unwrap();
        assert!(est.stage_ns(Stage::Estimate) > 0);
    }

    #[test]
    fn coalesced_fetch_times_single_flight_wait() {
        let engine = Arc::new(PowerEngine::new(EngineOptions {
            config: CharacterizationConfig {
                max_patterns: 50_000,
                ..CharacterizationConfig::default()
            },
            ..quick_options()
        }));
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 8usize);
        let leader = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || engine.fetch(spec).unwrap().1)
        };
        // Give the leader a head start so our fetch coalesces; if timing
        // still races (leader finished first) the source degrades to a
        // memory hit and the wait assertions are skipped.
        std::thread::sleep(std::time::Duration::from_millis(2));
        let mut waited = TraceCtx::new();
        let (_, source) = engine.fetch_traced(spec, &mut waited).unwrap();
        leader.join().unwrap();
        if source == CacheSource::Coalesced {
            assert!(waited.stage_ns(Stage::SingleFlightWait) > 0);
            assert_eq!(waited.stage_ns(Stage::Characterize), 0);
        }
    }

    #[test]
    fn sequential_and_sharded_engines_use_distinct_keys() {
        let sharded = PowerEngine::new(quick_options());
        let sequential = PowerEngine::new(EngineOptions {
            sharding: None,
            ..quick_options()
        });
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
        assert_ne!(sharded.key_for(spec), sequential.key_for(spec));
        assert_eq!(sequential.key_for(spec).shards, 0);
    }
}
