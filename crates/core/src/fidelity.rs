//! The fidelity ladder: tier labels and the tier-A analytic model.
//!
//! [`crate::PowerEngine`] answers every estimate from the best tier it
//! can reach instantly, bounded below by a per-request [`Fidelity`]
//! floor:
//!
//! * **tier A — [`Fidelity::Analytic`]** (nanoseconds): a closed-form §6
//!   Hd-distribution estimate built from netlist structure alone
//!   ([`analytic_model`]) — switched capacitance scales linearly with the
//!   Hamming distance of the inputs, calibrated per module family;
//! * **tier B — [`Fidelity::Regressed`]** (microseconds): a
//!   [`crate::ParameterizableModel`] fitted on the fly from
//!   already-characterized sibling widths of the same family (eq. 6–10),
//!   memoized per family and invalidated when a new sibling lands;
//! * **tier C — [`Fidelity::Full`]** (milliseconds): the characterized
//!   model itself.
//!
//! Replies are labeled with their fidelity and a confidence figure so a
//! client can tell an instant approximation from the real thing; the
//! engine upgrades served specs toward tier C in the background.

use hdpm_netlist::{ModuleKind, ModuleSpec, NetlistStats};
use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::model::HdModel;

/// Fidelity tier of a served estimate, ordered worst to best:
/// `Analytic < Regressed < Full`. A request's fidelity *floor* is the
/// minimum tier it accepts.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Fidelity {
    /// Tier A: the closed-form structural estimate of [`analytic_model`].
    Analytic,
    /// Tier B: §5 regression over characterized sibling widths.
    Regressed,
    /// Tier C: the fully characterized model.
    #[default]
    Full,
}

impl Fidelity {
    /// Lower-case wire name, shared by protocol v1 JSON and the CLI
    /// `--fidelity-floor` flag.
    pub fn as_str(self) -> &'static str {
        match self {
            Fidelity::Analytic => "analytic",
            Fidelity::Regressed => "regressed",
            Fidelity::Full => "full",
        }
    }

    /// Parse the wire name back; `None` for anything else.
    pub fn parse(text: &str) -> Option<Fidelity> {
        match text {
            "analytic" => Some(Fidelity::Analytic),
            "regressed" => Some(Fidelity::Regressed),
            "full" => Some(Fidelity::Full),
            _ => None,
        }
    }

    /// Protocol v2 wire code (`0` is reserved for "server default" in
    /// request frames, so tiers start at 1).
    pub fn code(self) -> u8 {
        match self {
            Fidelity::Analytic => 1,
            Fidelity::Regressed => 2,
            Fidelity::Full => 3,
        }
    }

    /// Inverse of [`Fidelity::code`]; `None` for unassigned codes.
    pub fn from_code(code: u8) -> Option<Fidelity> {
        match code {
            1 => Some(Fidelity::Analytic),
            2 => Some(Fidelity::Regressed),
            3 => Some(Fidelity::Full),
            _ => None,
        }
    }
}

impl std::str::FromStr for Fidelity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Fidelity::parse(s).ok_or_else(|| format!("expected analytic, regressed or full, not `{s}`"))
    }
}

impl std::fmt::Display for Fidelity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Confidence reported with tier-A answers. Analytic estimates carry no
/// per-instance error feedback, so the figure is a fixed, documented
/// prior: the §4 evaluation places structural estimates within a factor
/// of a few of the characterized charge, far outside the regression
/// tier's percent-level band.
pub const ANALYTIC_CONFIDENCE: f64 = 0.25;

/// Per-family charge slope κ of the tier-A model, calibrated offline
/// against characterized width-{4,8} references (1500 patterns, 4
/// shards — the `calibrate_analytic_kappa` harness below): the
/// least-squares slope of `p_i` against `C_total · i / m`. Units:
/// charge per (capacitance·normalized-Hd).
fn analytic_kappa(kind: ModuleKind) -> f64 {
    match kind {
        ModuleKind::RippleAdder => 1.193,
        ModuleKind::ClaAdder => 0.856,
        ModuleKind::AbsVal => 0.867,
        ModuleKind::CsaMultiplier => 6.183,
        ModuleKind::BoothWallaceMultiplier => 2.611,
        ModuleKind::Incrementer => 1.554,
        ModuleKind::Subtractor => 2.454,
        ModuleKind::Comparator => 0.883,
        ModuleKind::CarrySelectAdder => 1.118,
        ModuleKind::CarrySkipAdder => 1.100,
        ModuleKind::BarrelShifter => 1.344,
        ModuleKind::GfMultiplier => 1.372,
        ModuleKind::Mac => 7.143,
        ModuleKind::Divider => 4.392,
    }
}

/// Tier A: a closed-form [`HdModel`] for `spec` from netlist structure
/// alone — no simulation, no characterization, no siblings.
///
/// The model is linear in the Hamming distance: `p_i = κ · C · i / m`,
/// where `C` is the module's total capacitance ([`NetlistStats`]), `m`
/// its input bits and κ the per-family slope above. That is exactly the
/// shape eq. 2 degenerates to when every input transition switches a
/// proportional slice of the module, which holds to first order for the
/// datapath generators here; the per-family κ absorbs how far each
/// structure deviates from it.
///
/// # Errors
///
/// Returns [`ModelError::Netlist`] when the spec cannot be built (the
/// same specs the characterization path rejects).
pub fn analytic_model(spec: ModuleSpec) -> Result<HdModel, ModelError> {
    let netlist = spec.build()?;
    let stats = NetlistStats::of(&netlist);
    let m = stats.input_bits;
    let slope = analytic_kappa(spec.kind) * stats.total_capacitance / m as f64;
    let coeffs: Vec<f64> = (0..=m).map(|i| slope * i as f64).collect();
    Ok(HdModel::from_parts(
        format!("{spec}(analytic)"),
        m,
        coeffs,
        vec![0.0; m + 1],
        // Synthetic counts: every class "populated" so no gap-filling
        // reshapes the closed form.
        std::iter::once(0)
            .chain(std::iter::repeat_n(1, m))
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdpm_datamodel::HdDistribution;

    #[test]
    fn fidelity_orders_worst_to_best_and_round_trips() {
        assert!(Fidelity::Analytic < Fidelity::Regressed);
        assert!(Fidelity::Regressed < Fidelity::Full);
        for f in [Fidelity::Analytic, Fidelity::Regressed, Fidelity::Full] {
            assert_eq!(Fidelity::parse(f.as_str()), Some(f));
            assert_eq!(Fidelity::from_code(f.code()), Some(f));
            assert_eq!(f.as_str().parse::<Fidelity>().unwrap(), f);
        }
        assert_eq!(Fidelity::parse("fast"), None);
        assert_eq!(Fidelity::from_code(0), None);
        assert_eq!(Fidelity::default(), Fidelity::Full);
    }

    #[test]
    fn analytic_model_is_linear_monotone_and_instant() {
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, 8usize);
        let model = analytic_model(spec).unwrap();
        assert_eq!(model.input_bits(), 16);
        assert_eq!(model.coefficient(0), 0.0);
        for i in 1..=16 {
            assert!(model.coefficient(i) > model.coefficient(i - 1));
        }
        // Linear: p_8 is exactly half of p_16.
        let half = model.coefficient(8) / model.coefficient(16);
        assert!((half - 0.5).abs() < 1e-12, "{half}");
        let dist = HdDistribution::from_bit_activities(&[0.5; 16]);
        assert!(model.estimate_distribution(&dist).unwrap() > 0.0);
    }

    #[test]
    fn analytic_model_rejects_unbuildable_specs() {
        let bad = ModuleSpec::new(ModuleKind::CsaMultiplier, 1usize);
        assert!(matches!(analytic_model(bad), Err(ModelError::Netlist(_))));
    }

    #[test]
    fn every_family_has_an_analytic_model() {
        for kind in ModuleKind::ALL {
            let spec = ModuleSpec::new(kind, 8usize);
            let model = analytic_model(spec).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(model.coefficient(model.input_bits()) > 0.0, "{kind}");
        }
    }

    /// Offline calibration harness for the κ table: characterize each
    /// family at widths 4 and 8 and print the least-squares slope of
    /// `p_i` against `C_total · i / m`. Run manually after changing the
    /// generators or the characterization defaults:
    ///
    /// ```sh
    /// cargo test --release -p hdpm-core calibrate_analytic_kappa -- --ignored --nocapture
    /// ```
    #[test]
    #[ignore = "offline calibration harness; prints the κ table"]
    fn calibrate_analytic_kappa() {
        use crate::characterize::{characterize_sharded, CharacterizationConfig};
        use crate::shard::ShardingConfig;
        let config = CharacterizationConfig {
            max_patterns: 1500,
            ..CharacterizationConfig::default()
        };
        let sharding = ShardingConfig {
            shards: 4,
            threads: 1,
        };
        for kind in ModuleKind::ALL {
            let mut num = 0.0f64;
            let mut den = 0.0f64;
            for width in [4usize, 8] {
                let spec = ModuleSpec::new(kind, width);
                let netlist = match spec.build().and_then(|n| n.validate()) {
                    Ok(n) => n,
                    Err(_) => continue,
                };
                let stats = NetlistStats::of(netlist.netlist());
                let c = characterize_sharded(&netlist, &config, &sharding).unwrap();
                let m = c.model.input_bits();
                for i in 1..=m {
                    let x = stats.total_capacitance * i as f64 / m as f64;
                    num += c.model.coefficient(i) * x;
                    den += x * x;
                }
            }
            println!("ModuleKind::{kind:?} => {:.3},", num / den);
        }
    }
}
