//! Model characterization (§4.1).
//!
//! Module prototypes are stimulated with random patterns; the reference
//! simulator reports the charge of every transition; coefficients are the
//! per-class averages of eq. 4, with the per-class average absolute
//! deviation `ε_i` of eq. 5. Characterization stops early once the
//! coefficients have converged.
//!
//! Two drivers share the same stimulus and accumulation machinery:
//!
//! * [`characterize`] — the sequential reference: one seeded pattern
//!   stream, convergence-checked every `check_interval` patterns;
//! * [`characterize_sharded`] — the pattern budget split into `S`
//!   deterministic shards with RNG streams derived by
//!   [`crate::shard_seed`], simulated on scoped worker threads and merged
//!   in ascending shard index. The coefficient tables are bit-identical
//!   for every thread count (see `docs/parallelism.md`).
//!
//! Both drivers run on either reference-simulator backend (see
//! [`SimBackend`] and `docs/simulation.md`): the event-driven oracle or
//! the bit-parallel engine, which packs 64 transitions of the stimulus
//! stream into one block and is **bit-identical** to the oracle — the
//! backend choice never changes a bit of any coefficient table, which is
//! why it is *not* part of [`CharacterizationConfig`] (and therefore not
//! part of the persisted-model cache identity).

use hdpm_netlist::ValidatedNetlist;
use hdpm_sim::{BitPattern, BitplaneSimulator, DelayModel, SimBackend, Simulator, BLOCK_LANES};
use hdpm_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use telemetry::Level;

use crate::error::ModelError;
use crate::model::{EnhancedHdModel, HdModel, ZeroClustering};
use crate::shard::{
    parallel_map_ordered, shard_budgets, shard_seed, ClassAccumulator, ShardingConfig,
};

/// The statistics of the characterization pattern stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StimulusKind {
    /// Uniform random patterns — the paper's §4.1 stimulus (every bit is
    /// an independent fair coin).
    #[default]
    UniformRandom,
    /// Stratified stimulus: the per-bit one-probability cycles through a
    /// sweep of values, so that zero-rich and one-rich transitions are
    /// well represented. Recommended when the *enhanced* model's
    /// stable-zero subgroups must be populated (uniform random patterns
    /// almost never produce transitions where most stable bits are zero).
    SignalProbSweep,
    /// Hd-stratified stimulus: every transition flips a uniformly chosen
    /// number of uniformly chosen bits of the previous pattern. The
    /// conditional law of a transition given its class `E_i` is identical
    /// to uniform random patterns (uniform state, uniform `i`-subset of
    /// flipped positions), but every class receives `≈ n/(m+1)` samples
    /// instead of the binomial tail starving `p_1` and `p_m` — importance
    /// sampling over the event classes of eq. 4.
    UniformHd,
}

/// Configuration of a characterization run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationConfig {
    /// Maximum number of random characterization patterns.
    pub max_patterns: usize,
    /// Statistics of the characterization stream.
    pub stimulus: StimulusKind,
    /// RNG seed for the pattern stream.
    pub seed: u64,
    /// Reference-simulator timing discipline.
    pub delay_model: DelayModel,
    /// Convergence tolerance: characterization stops when no populated
    /// class coefficient moved by more than this relative amount between
    /// checkpoints.
    pub convergence_tol: f64,
    /// Patterns between convergence checkpoints.
    pub check_interval: usize,
    /// Minimum samples a class needs before it participates in the
    /// convergence check.
    pub min_class_samples: u64,
    /// Subgroup layout of the enhanced model.
    pub clustering: ZeroClustering,
}

impl Default for CharacterizationConfig {
    fn default() -> Self {
        CharacterizationConfig {
            max_patterns: 12_000,
            stimulus: StimulusKind::UniformRandom,
            seed: 0xC0FFEE,
            delay_model: DelayModel::Unit,
            convergence_tol: 0.02,
            check_interval: 2_000,
            min_class_samples: 8,
            clustering: ZeroClustering::Full,
        }
    }
}

impl CharacterizationConfig {
    /// A fluent, validating builder starting from the defaults.
    /// Struct-literal construction keeps working; the builder adds range
    /// checks at [`CharacterizationConfigBuilder::build`] time.
    ///
    /// ```
    /// use hdpm_core::{CharacterizationConfig, StimulusKind};
    ///
    /// let config = CharacterizationConfig::builder()
    ///     .max_patterns(4_000)
    ///     .stimulus(StimulusKind::SignalProbSweep)
    ///     .seed(7)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(config.max_patterns, 4_000);
    /// assert!(CharacterizationConfig::builder()
    ///     .max_patterns(0)
    ///     .build()
    ///     .is_err());
    /// ```
    pub fn builder() -> CharacterizationConfigBuilder {
        CharacterizationConfigBuilder {
            config: CharacterizationConfig::default(),
        }
    }
}

/// Fluent builder of [`CharacterizationConfig`], created by
/// [`CharacterizationConfig::builder`]. Setters override one field each;
/// [`CharacterizationConfigBuilder::build`] validates ranges and returns
/// [`ModelError::InvalidConfig`] naming the first offending field.
#[derive(Debug, Clone, Copy)]
pub struct CharacterizationConfigBuilder {
    config: CharacterizationConfig,
}

impl CharacterizationConfigBuilder {
    /// Maximum number of random characterization patterns (≥ 2).
    #[must_use]
    pub fn max_patterns(mut self, max_patterns: usize) -> Self {
        self.config.max_patterns = max_patterns;
        self
    }

    /// Statistics of the characterization stream.
    #[must_use]
    pub fn stimulus(mut self, stimulus: StimulusKind) -> Self {
        self.config.stimulus = stimulus;
        self
    }

    /// RNG seed for the pattern stream.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Reference-simulator timing discipline.
    #[must_use]
    pub fn delay_model(mut self, delay_model: DelayModel) -> Self {
        self.config.delay_model = delay_model;
        self
    }

    /// Convergence tolerance (finite, ≥ 0).
    #[must_use]
    pub fn convergence_tol(mut self, convergence_tol: f64) -> Self {
        self.config.convergence_tol = convergence_tol;
        self
    }

    /// Patterns between convergence checkpoints (> 0).
    #[must_use]
    pub fn check_interval(mut self, check_interval: usize) -> Self {
        self.config.check_interval = check_interval;
        self
    }

    /// Minimum samples a class needs before it participates in the
    /// convergence check (≥ 1).
    #[must_use]
    pub fn min_class_samples(mut self, min_class_samples: u64) -> Self {
        self.config.min_class_samples = min_class_samples;
        self
    }

    /// Subgroup layout of the enhanced model (`Clustered(k)` needs k ≥ 1).
    #[must_use]
    pub fn clustering(mut self, clustering: ZeroClustering) -> Self {
        self.config.clustering = clustering;
        self
    }

    /// Validate the assembled configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] if any field is out of range:
    /// `max_patterns < 2`, `check_interval == 0`, a non-finite or negative
    /// `convergence_tol`, `min_class_samples == 0`, or
    /// `ZeroClustering::Clustered(0)`.
    pub fn build(self) -> Result<CharacterizationConfig, ModelError> {
        let c = self.config;
        if c.max_patterns < 2 {
            return Err(ModelError::InvalidConfig {
                field: "max_patterns",
                value: c.max_patterns.to_string(),
                constraint: "must be at least 2",
            });
        }
        if c.check_interval == 0 {
            return Err(ModelError::InvalidConfig {
                field: "check_interval",
                value: c.check_interval.to_string(),
                constraint: "must be positive",
            });
        }
        if !c.convergence_tol.is_finite() || c.convergence_tol < 0.0 {
            return Err(ModelError::InvalidConfig {
                field: "convergence_tol",
                value: c.convergence_tol.to_string(),
                constraint: "must be finite and non-negative",
            });
        }
        if c.min_class_samples == 0 {
            return Err(ModelError::InvalidConfig {
                field: "min_class_samples",
                value: c.min_class_samples.to_string(),
                constraint: "must be at least 1",
            });
        }
        if let ZeroClustering::Clustered(0) = c.clustering {
            return Err(ModelError::InvalidConfig {
                field: "clustering",
                value: "Clustered(0)".to_string(),
                constraint: "cluster size must be at least 1",
            });
        }
        Ok(c)
    }
}

/// One convergence checkpoint: patterns seen so far and the largest
/// relative coefficient change since the previous checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Patterns applied up to this checkpoint.
    pub patterns: usize,
    /// Maximum relative coefficient change across populated classes.
    pub max_relative_change: f64,
}

/// The result of characterizing one module prototype.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    /// The basic Hd model (eq. 2).
    pub model: HdModel,
    /// The enhanced Hd model (eq. 3).
    pub enhanced: EnhancedHdModel,
    /// Number of transitions actually used.
    pub transitions: usize,
    /// Pattern count after which the convergence criterion held, if it did
    /// before `max_patterns` ran out.
    pub converged_after: Option<usize>,
    /// Convergence history (for the convergence-ablation bench).
    pub history: Vec<ConvergencePoint>,
}

/// Signal-probability levels of the stratified stimulus; each level holds
/// for a block of patterns so transitions within a block carry the
/// level's statistics.
const SWEEP_LEVELS: [f64; 7] = [0.5, 0.15, 0.85, 0.3, 0.7, 0.05, 0.95];
const SWEEP_BLOCK: usize = 200;

/// One deterministic characterization pattern stream: an RNG, the
/// stimulus law and the previous pattern. The sequential driver owns one
/// stream; every shard of a sharded run owns an independent stream seeded
/// via [`shard_seed`].
struct StimulusStream {
    rng: StdRng,
    stimulus: StimulusKind,
    m: usize,
    prev: Option<BitPattern>,
    /// Scratch index pool for the Hd-stratified subset draw.
    positions: Vec<usize>,
    generated: usize,
}

impl StimulusStream {
    fn new(m: usize, stimulus: StimulusKind, seed: u64) -> Self {
        StimulusStream {
            rng: StdRng::seed_from_u64(seed),
            stimulus,
            m,
            prev: None,
            positions: (0..m).collect(),
            generated: 0,
        }
    }

    /// Generate the next pattern and, unless it is the stream's first, the
    /// `(hd, stable_zeros)` classification of the transition into it.
    fn next_pattern(&mut self) -> (BitPattern, Option<(usize, usize)>) {
        let m = self.m;
        let pattern = match (self.stimulus, self.prev) {
            (StimulusKind::UniformRandom, _) | (_, None) => {
                BitPattern::from_masked(self.rng.gen::<u64>(), m)
            }
            (StimulusKind::SignalProbSweep, _) => {
                let level = SWEEP_LEVELS[(self.generated / SWEEP_BLOCK) % SWEEP_LEVELS.len()];
                let mut bits = 0u64;
                for i in 0..m {
                    if self.rng.gen_bool(level) {
                        bits |= 1 << i;
                    }
                }
                BitPattern::new(bits, m)
            }
            (StimulusKind::UniformHd, Some(prev)) => {
                let k = self.rng.gen_range(0..=m);
                // Partial Fisher-Yates: the first k entries become a
                // uniform k-subset of bit positions.
                for i in 0..k {
                    let j = self.rng.gen_range(i..m);
                    self.positions.swap(i, j);
                }
                let mut bits = prev.bits();
                for &pos in &self.positions[..k] {
                    bits ^= 1 << pos;
                }
                BitPattern::new(bits, m)
            }
        };
        let transition = self
            .prev
            .map(|prev| (prev.hamming_distance(pattern), prev.stable_zeros(pattern)));
        self.prev = Some(pattern);
        self.generated += 1;
        (pattern, transition)
    }
}

/// Drive `budget` patterns from `stream` through the selected simulator
/// backend, invoking `observe(transition, charge)` once per pattern in
/// stream order; stops early when `observe` returns `true`.
///
/// The bit-parallel engine packs transitions 64 at a time, but because it
/// is bit-identical to the oracle *per transition* (see
/// [`BitplaneSimulator`]), `observe` sees exactly the same
/// `(transition, charge)` sequence either way — including when a
/// convergence checkpoint stops the run mid-block (the remaining lanes of
/// the block are simply discarded). Netlists with registers are outside
/// the bit-plane engine's lane-parallel model, so they silently fall back
/// to the event-driven oracle.
fn drive_stream(
    netlist: &ValidatedNetlist,
    config: &CharacterizationConfig,
    backend: SimBackend,
    stream: &mut StimulusStream,
    budget: usize,
    mut observe: impl FnMut(Option<(usize, usize)>, f64) -> bool,
) {
    let use_bitplane = backend == SimBackend::Bitplane && BitplaneSimulator::supports(netlist);
    if use_bitplane {
        let mut sim = BitplaneSimulator::new(netlist, config.delay_model);
        let mut patterns = Vec::with_capacity(BLOCK_LANES + 1);
        let mut transitions = Vec::with_capacity(BLOCK_LANES + 1);
        let mut applied = 0usize;
        'blocks: while applied < budget {
            // The first block carries one extra pattern: it initializes
            // the simulator state and yields no transition result.
            let cap = if applied == 0 {
                BLOCK_LANES + 1
            } else {
                BLOCK_LANES
            };
            let take = (budget - applied).min(cap);
            patterns.clear();
            transitions.clear();
            for _ in 0..take {
                let (pattern, transition) = stream.next_pattern();
                patterns.push(pattern);
                transitions.push(transition);
            }
            let results = sim.apply_block(&patterns);
            let offset = patterns.len() - results.len();
            for (i, &transition) in transitions.iter().enumerate() {
                let charge = if i < offset {
                    0.0
                } else {
                    results[i - offset].charge
                };
                applied += 1;
                if observe(transition, charge) {
                    break 'blocks;
                }
            }
        }
        sim.flush_telemetry();
    } else {
        let mut sim = Simulator::with_delay_model(netlist, config.delay_model);
        let mut applied = 0usize;
        while applied < budget {
            let (pattern, transition) = stream.next_pattern();
            let result = sim.apply(pattern);
            applied += 1;
            if observe(transition, result.charge) {
                break;
            }
        }
        sim.flush_telemetry();
    }
}

/// Coefficient snapshot for the convergence check: classes under
/// `min_samples` are NaN so they never participate in the diff.
fn convergence_snapshot(acc: &ClassAccumulator, min_samples: u64) -> Vec<f64> {
    acc.counts()
        .iter()
        .zip(acc.charge_sums())
        .map(|(&c, &s)| {
            if c >= min_samples {
                s / c as f64
            } else {
                f64::NAN
            }
        })
        .collect()
}

/// Largest relative coefficient move between two snapshots, ignoring
/// classes that are unpopulated (NaN) on either side.
fn max_relative_change(new: &[f64], old: &[f64]) -> f64 {
    let mut max_change: f64 = 0.0;
    for (new, old) in new.iter().zip(old) {
        if new.is_nan() || old.is_nan() || *old == 0.0 {
            continue;
        }
        max_change = max_change.max(((new - old) / old).abs());
    }
    max_change
}

/// Characterize a module prototype with random patterns (§4.1).
///
/// This is the sequential reference implementation; see
/// [`characterize_sharded`] for the thread-count-invariant parallel
/// driver.
///
/// # Errors
///
/// Returns [`ModelError::EmptyCharacterization`] when the pattern budget
/// produced no transition in any Hd class (every eq. 4 average would be
/// the undefined `0/0`).
///
/// # Examples
///
/// ```
/// use hdpm_core::{characterize, CharacterizationConfig};
/// use hdpm_netlist::modules;
///
/// # fn main() -> Result<(), hdpm_core::ModelError> {
/// let adder = modules::ripple_adder(4)?.validate()?;
/// let config = CharacterizationConfig {
///     max_patterns: 2000,
///     ..CharacterizationConfig::default()
/// };
/// let result = characterize(&adder, &config)?;
/// // Coefficients grow with the Hamming distance.
/// assert!(result.model.coefficient(8) > result.model.coefficient(2));
/// # Ok(())
/// # }
/// ```
pub fn characterize(
    netlist: &ValidatedNetlist,
    config: &CharacterizationConfig,
) -> Result<Characterization, ModelError> {
    characterize_with_backend(netlist, config, SimBackend::resolve(None))
}

/// [`characterize`] with an explicit simulator backend instead of the
/// [`SimBackend::resolve`]d default. The backend never changes a bit of
/// the result (that contract is enforced by `tests/sim_conformance.rs`);
/// passing [`SimBackend::Event`] forces the slower oracle, which is what
/// the differential harness and `--sim-backend event` do.
pub fn characterize_with_backend(
    netlist: &ValidatedNetlist,
    config: &CharacterizationConfig,
    backend: SimBackend,
) -> Result<Characterization, ModelError> {
    let m = netlist.netlist().input_bit_count();

    let _span = telemetry::span("characterize");
    telemetry::event(
        Level::Info,
        "characterize.start",
        &[
            ("module", netlist.netlist().name().into()),
            ("input_bits", m.into()),
            ("stimulus", format!("{:?}", config.stimulus).into()),
            ("max_patterns", config.max_patterns.into()),
            ("seed", config.seed.into()),
            ("backend", backend.id().into()),
        ],
    );

    // Per-sample records for the deviation pass.
    let mut records: Vec<(u16, u16, f64)> = Vec::with_capacity(config.max_patterns);

    // Running per-class accumulator for the convergence check.
    let mut acc = ClassAccumulator::empty(m);
    let mut last_snapshot: Option<Vec<f64>> = None;
    let mut history = Vec::new();
    let mut converged_after = None;
    let mut applied = 0usize;

    let mut stream = StimulusStream::new(m, config.stimulus, config.seed);
    drive_stream(
        netlist,
        config,
        backend,
        &mut stream,
        config.max_patterns,
        |transition, charge| {
            if let Some((hd, zeros)) = transition {
                records.push((hd as u16, zeros as u16, charge));
                acc.record(hd, charge);
            }
            applied += 1;

            if applied.is_multiple_of(config.check_interval) || applied == config.max_patterns {
                let snapshot = convergence_snapshot(&acc, config.min_class_samples);
                if let Some(last) = &last_snapshot {
                    let max_change = max_relative_change(&snapshot, last);
                    history.push(ConvergencePoint {
                        patterns: applied,
                        max_relative_change: max_change,
                    });
                    telemetry::event(
                        Level::Info,
                        "characterize.checkpoint",
                        &[
                            ("patterns", applied.into()),
                            ("max_relative_change", max_change.into()),
                            ("baseline", false.into()),
                        ],
                    );
                    if converged_after.is_none() && max_change < config.convergence_tol {
                        converged_after = Some(applied);
                        last_snapshot = Some(snapshot);
                        return true;
                    }
                } else {
                    // Baseline checkpoint: first coefficient snapshot, no
                    // previous state to diff against.
                    telemetry::event(
                        Level::Info,
                        "characterize.checkpoint",
                        &[("patterns", applied.into()), ("baseline", true.into())],
                    );
                }
                last_snapshot = Some(snapshot);
            }
            false
        },
    );

    telemetry::event(
        Level::Info,
        "characterize.stop",
        &[
            ("patterns", applied.into()),
            ("transitions", records.len().into()),
            (
                "reason",
                if converged_after.is_some() {
                    "converged"
                } else {
                    "max_patterns"
                }
                .into(),
            ),
        ],
    );

    let result = build_characterization(
        netlist.netlist().name(),
        m,
        &records,
        config.clustering,
        converged_after,
        history,
    )?;
    emit_class_telemetry(config, &result);
    Ok(result)
}

/// Characterize a module prototype with the pattern budget split into
/// deterministic shards running on scoped worker threads.
///
/// Each shard owns an independent RNG stream seeded by
/// [`shard_seed`]`(config.seed, shard_index)` and an independent previous
/// pattern, so shard streams never depend on scheduling. Per-shard
/// accumulators and sample records are merged in **ascending shard
/// index**, which makes the resulting coefficient tables (`p_i`, `ε_i`)
/// bit-identical for every `sharding.threads` value, including 1. The
/// shard *count* is part of the result's identity: changing
/// `sharding.shards` selects different pattern streams (statistically
/// equivalent, numerically different).
///
/// Unlike [`characterize`], the sharded driver never stops early: every
/// shard consumes its full budget and the convergence trajectory —
/// checkpointed at shard boundaries over merged prefixes — is advisory.
/// A shard's first pattern initializes its simulator and produces no
/// transition, so a run observes `max_patterns − S` transitions when all
/// budgets are non-zero.
///
/// # Errors
///
/// Returns [`ModelError::EmptyCharacterization`] when no shard produced a
/// transition in any Hd class.
///
/// # Examples
///
/// ```
/// use hdpm_core::{characterize_sharded, CharacterizationConfig, ShardingConfig};
/// use hdpm_netlist::modules;
///
/// # fn main() -> Result<(), hdpm_core::ModelError> {
/// let adder = modules::ripple_adder(4)?.validate()?;
/// let config = CharacterizationConfig {
///     max_patterns: 2000,
///     ..CharacterizationConfig::default()
/// };
/// let sharding = ShardingConfig { shards: 4, threads: 0 };
/// let parallel = characterize_sharded(&adder, &config, &sharding)?;
/// let single = characterize_sharded(
///     &adder,
///     &config,
///     &ShardingConfig { threads: 1, ..sharding },
/// )?;
/// // Thread count never changes a bit of the coefficient tables.
/// assert_eq!(parallel.model, single.model);
/// # Ok(())
/// # }
/// ```
pub fn characterize_sharded(
    netlist: &ValidatedNetlist,
    config: &CharacterizationConfig,
    sharding: &ShardingConfig,
) -> Result<Characterization, ModelError> {
    characterize_sharded_with_backend(netlist, config, sharding, SimBackend::resolve(None))
}

/// [`characterize_sharded`] with an explicit simulator backend. Lane
/// packing composes with the per-shard RNG streams: each shard packs its
/// *own* stream into 64-lane blocks, so sharded bit-plane runs stay
/// bit-identical to the event-driven oracle at every thread count.
pub fn characterize_sharded_with_backend(
    netlist: &ValidatedNetlist,
    config: &CharacterizationConfig,
    sharding: &ShardingConfig,
    backend: SimBackend,
) -> Result<Characterization, ModelError> {
    let m = netlist.netlist().input_bit_count();
    let budgets = shard_budgets(config.max_patterns, sharding.shards);
    let threads = sharding.effective_threads();

    let _span = telemetry::span("characterize.sharded");
    telemetry::event(
        Level::Info,
        "characterize.start",
        &[
            ("module", netlist.netlist().name().into()),
            ("input_bits", m.into()),
            ("stimulus", format!("{:?}", config.stimulus).into()),
            ("max_patterns", config.max_patterns.into()),
            ("seed", config.seed.into()),
            ("shards", sharding.shards.into()),
            ("threads", threads.into()),
            ("backend", backend.id().into()),
        ],
    );

    struct ShardRun {
        records: Vec<(u16, u16, f64)>,
        acc: ClassAccumulator,
    }

    let runs: Vec<ShardRun> = parallel_map_ordered(&budgets, threads, |index, &budget| {
        let mut stream =
            StimulusStream::new(m, config.stimulus, shard_seed(config.seed, index as u64));
        let mut records = Vec::with_capacity(budget.saturating_sub(1));
        let mut acc = ClassAccumulator::empty(m);
        drive_stream(
            netlist,
            config,
            backend,
            &mut stream,
            budget,
            |transition, charge| {
                if let Some((hd, zeros)) = transition {
                    records.push((hd as u16, zeros as u16, charge));
                    acc.record(hd, charge);
                }
                false // shards never stop early
            },
        );
        ShardRun { records, acc }
    });

    // Merge in ascending shard index — this fixed order, not float
    // algebra, is what makes the result independent of the schedule. The
    // merged prefixes double as convergence checkpoints at shard
    // boundaries; the sharded driver never stops early, so the
    // trajectory (and `converged_after`) is advisory.
    let mut merged = ClassAccumulator::empty(m);
    let mut history = Vec::new();
    let mut converged_after = None;
    let mut last_snapshot: Option<Vec<f64>> = None;
    let mut cumulative = 0usize;
    for (index, run) in runs.iter().enumerate() {
        if telemetry::enabled() {
            telemetry::gauge_set(
                &format!("characterize.shard.{index}.samples"),
                run.records.len() as f64,
            );
        }
        merged.merge(&run.acc);
        cumulative += budgets[index];
        let snapshot = convergence_snapshot(&merged, config.min_class_samples);
        if let Some(last) = &last_snapshot {
            let max_change = max_relative_change(&snapshot, last);
            history.push(ConvergencePoint {
                patterns: cumulative,
                max_relative_change: max_change,
            });
            telemetry::event(
                Level::Info,
                "characterize.checkpoint",
                &[
                    ("patterns", cumulative.into()),
                    ("max_relative_change", max_change.into()),
                    ("baseline", false.into()),
                ],
            );
            if converged_after.is_none() && max_change < config.convergence_tol {
                converged_after = Some(cumulative);
            }
        } else {
            telemetry::event(
                Level::Info,
                "characterize.checkpoint",
                &[("patterns", cumulative.into()), ("baseline", true.into())],
            );
        }
        last_snapshot = Some(snapshot);
    }

    let mut records = Vec::with_capacity(merged.total_samples() as usize);
    for run in runs {
        records.extend(run.records);
    }
    telemetry::event(
        Level::Info,
        "characterize.stop",
        &[
            ("patterns", config.max_patterns.into()),
            ("transitions", records.len().into()),
            ("shards", sharding.shards.into()),
            (
                "reason",
                if converged_after.is_some() {
                    "converged"
                } else {
                    "max_patterns"
                }
                .into(),
            ),
        ],
    );

    let result = build_characterization(
        netlist.netlist().name(),
        m,
        &records,
        config.clustering,
        converged_after,
        history,
    )?;
    emit_class_telemetry(config, &result);
    Ok(result)
}

/// Per-class coefficient events plus starvation warnings, shared by both
/// characterization drivers. No-op when telemetry is disabled.
fn emit_class_telemetry(config: &CharacterizationConfig, result: &Characterization) {
    if !telemetry::enabled() {
        return;
    }
    telemetry::counter_add("characterize.transitions", result.transitions as u64);
    let counts = result.model.sample_counts();
    for (hd, &samples) in counts.iter().enumerate() {
        telemetry::event(
            Level::Info,
            "characterize.class_samples",
            &[
                ("hd", hd.into()),
                ("samples", samples.into()),
                ("coefficient", result.model.coefficient(hd).into()),
            ],
        );
    }
    // Under uniform random stimulus the binomial tail starves the
    // extreme Hd classes; recommend the stratified stream when any
    // class stayed under the configured minimum.
    if config.stimulus == StimulusKind::UniformRandom {
        for (hd, &samples) in counts.iter().enumerate().skip(1) {
            if samples < config.min_class_samples {
                telemetry::event(
                    Level::Warn,
                    "characterize.class_starved",
                    &[
                        ("hd", hd.into()),
                        ("samples", samples.into()),
                        ("min_samples", config.min_class_samples.into()),
                        (
                            "hint",
                            "class under-sampled by uniform random stimulus; \
                             use UniformHd (--stratified) for balanced class coverage"
                                .into(),
                        ),
                    ],
                );
            }
        }
    }
}

/// Build the models from classified `(hd, stable_zeros, charge)` records.
/// Exposed for reuse by the adaptation and trace-replay paths.
///
/// The basic model's coefficients and deviations go through the two-pass
/// [`ClassAccumulator`] scheme: pass one pins the eq. 4 class means, pass
/// two accumulates the eq. 5 absolute deviations around them.
pub(crate) fn build_characterization(
    module: &str,
    m: usize,
    records: &[(u16, u16, f64)],
    clustering: ZeroClustering,
    converged_after: Option<usize>,
    history: Vec<ConvergencePoint>,
) -> Result<Characterization, ModelError> {
    // Basic model: eq. 4 means, then eq. 5 deviations around them.
    let mut acc = ClassAccumulator::empty(m);
    for &(hd, _zeros, q) in records {
        acc.record(hd as usize, q);
    }
    if !acc.counts().iter().skip(1).any(|&c| c > 0) {
        return Err(ModelError::EmptyCharacterization {
            module: module.to_string(),
            transitions: records.len(),
        });
    }
    let coeffs = acc.coefficients();
    for &(hd, _zeros, q) in records {
        acc.record_deviation(hd as usize, q, &coeffs);
    }
    let deviations = acc.deviations();
    let basic = HdModel::from_parts(module, m, coeffs, deviations, acc.counts().to_vec());

    // Enhanced model: eq. 3 subgroups.
    let mut e_sums: Vec<Vec<f64>> = (1..=m)
        .map(|i| vec![0.0; clustering.groups(m, i)])
        .collect();
    let mut e_counts: Vec<Vec<u64>> = (1..=m).map(|i| vec![0; clustering.groups(m, i)]).collect();
    for &(hd, zeros, q) in records {
        let (hd, zeros) = (hd as usize, zeros as usize);
        if hd == 0 {
            continue;
        }
        let g = clustering.group_of(m, hd, zeros);
        e_sums[hd - 1][g] += q;
        e_counts[hd - 1][g] += 1;
    }
    let e_coeffs: Vec<Vec<f64>> = e_sums
        .iter()
        .zip(&e_counts)
        .map(|(srow, crow)| {
            srow.iter()
                .zip(crow)
                .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
                .collect()
        })
        .collect();
    let mut e_dev_sums: Vec<Vec<f64>> = e_counts.iter().map(|row| vec![0.0; row.len()]).collect();
    for &(hd, zeros, q) in records {
        let (hd, zeros) = (hd as usize, zeros as usize);
        if hd == 0 {
            continue;
        }
        let g = clustering.group_of(m, hd, zeros);
        let p = e_coeffs[hd - 1][g];
        if p > 0.0 {
            e_dev_sums[hd - 1][g] += ((q - p) / p).abs();
        }
    }
    let e_devs: Vec<Vec<f64>> = e_dev_sums
        .iter()
        .zip(&e_counts)
        .map(|(srow, crow)| {
            srow.iter()
                .zip(crow)
                .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
                .collect()
        })
        .collect();

    let enhanced =
        EnhancedHdModel::from_parts(basic.clone(), clustering, e_coeffs, e_devs, e_counts);

    Ok(Characterization {
        model: basic,
        enhanced,
        transitions: records.len(),
        converged_after,
        history,
    })
}

/// Characterize from an existing reference [`hdpm_sim::Trace`] instead of
/// generating fresh random patterns — useful for replaying recorded or
/// application-specific characterization stimuli.
///
/// # Errors
///
/// Returns [`ModelError::EmptyCharacterization`] when the trace holds no
/// transition in any Hd class `i ≥ 1`.
pub fn characterize_trace(
    trace: &hdpm_sim::Trace,
    clustering: ZeroClustering,
) -> Result<Characterization, ModelError> {
    let records: Vec<(u16, u16, f64)> = trace
        .samples
        .iter()
        .map(|s| (s.hd as u16, s.stable_zeros as u16, s.charge))
        .collect();
    build_characterization(
        &trace.module,
        trace.input_width,
        &records,
        clustering,
        None,
        Vec::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdpm_netlist::modules;

    fn quick_config() -> CharacterizationConfig {
        CharacterizationConfig {
            max_patterns: 4000,
            check_interval: 1000,
            ..CharacterizationConfig::default()
        }
    }

    #[test]
    fn coefficients_increase_with_hd() {
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let c = characterize(&adder, &quick_config()).unwrap();
        let model = &c.model;
        // The curve rises over the well-populated bulk of the binomial Hd
        // range (it saturates and rolls off at the extreme classes, where
        // complementing every input leaves the XOR propagate chains
        // invariant — visible in the paper's Fig. 1 saturation too).
        assert!(model.coefficient(1) > 0.0);
        assert!(model.coefficient(2) > model.coefficient(1));
        assert!(model.coefficient(4) > model.coefficient(2));
        assert!(model.coefficient(5) > model.coefficient(3));
    }

    #[test]
    fn deviations_shrink_for_large_hd() {
        // §4.1: "the relative coefficient deviations are decreasing for
        // larger values of the Hamming-distance."
        let mul = modules::csa_multiplier(6, 6).unwrap().validate().unwrap();
        let c = characterize(&mul, &quick_config()).unwrap();
        let low = c.model.deviation(2);
        let high = c.model.deviation(10);
        assert!(
            high < low,
            "deviation at Hd 10 ({high}) should be below Hd 2 ({low})"
        );
    }

    #[test]
    fn characterization_converges() {
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let config = CharacterizationConfig {
            max_patterns: 60_000,
            check_interval: 4_000,
            convergence_tol: 0.05,
            ..CharacterizationConfig::default()
        };
        let c = characterize(&adder, &config).unwrap();
        assert!(
            c.converged_after.is_some(),
            "expected convergence, history: {:?}",
            c.history
        );
    }

    #[test]
    fn enhanced_model_separates_zero_rich_transitions() {
        // For an adder, transitions among low (zero-heavy) operand values
        // exercise less of the carry chain than transitions among high
        // values: the all-stable-zeros subgroup should sit below the
        // no-stable-zeros subgroup for small Hd.
        let adder = modules::ripple_adder(8).unwrap().validate().unwrap();
        let config = CharacterizationConfig {
            max_patterns: 12_000,
            ..quick_config()
        };
        let c = characterize(&adder, &config).unwrap();
        let m = 16;
        let hd = 2;
        let row = c.enhanced.coefficient_row(hd);
        let counts = c.enhanced.sample_count_row(hd);
        let groups = row.len();
        assert_eq!(groups, m - hd + 1);
        // Compare low-zeros vs high-zeros ends where populated.
        let low_zero = (0..groups / 4)
            .filter(|&g| counts[g] > 3)
            .map(|g| row[g])
            .fold(f64::NAN, f64::max);
        let high_zero = (3 * groups / 4..groups)
            .filter(|&g| counts[g] > 3)
            .map(|g| row[g])
            .fold(f64::NAN, f64::min);
        if low_zero.is_finite() && high_zero.is_finite() {
            assert!(
                high_zero < low_zero,
                "all-zeros subgroup {high_zero} should be below no-zeros {low_zero}"
            );
        }
    }

    #[test]
    fn uniform_hd_stimulus_balances_class_counts() {
        let adder = modules::ripple_adder(8).unwrap().validate().unwrap();
        let config = CharacterizationConfig {
            max_patterns: 8000,
            stimulus: StimulusKind::UniformHd,
            convergence_tol: 0.0,
            ..CharacterizationConfig::default()
        };
        let c = characterize(&adder, &config).unwrap();
        let counts = c.model.sample_counts();
        // Every class (1..=16) should be populated with roughly
        // n/(m+1) = ~470 samples; allow wide slack.
        for (i, &count) in counts.iter().enumerate().skip(1) {
            assert!(
                count > 200,
                "class {i} starved under UniformHd: {count} samples"
            );
        }
        // The extreme classes must be far better sampled than under a
        // uniform random stream, where P(Hd = 1) = 16/2^16.
        assert!(counts[1] > 100);
        assert!(counts[16] > 100);
    }

    #[test]
    fn uniform_hd_class_means_match_uniform_random() {
        // Both stimuli must estimate the same class-conditional means
        // (the UniformHd draw is the exact conditional law).
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let base = CharacterizationConfig {
            max_patterns: 40_000,
            convergence_tol: 0.0,
            ..CharacterizationConfig::default()
        };
        let uniform = characterize(&adder, &base).unwrap();
        let stratified = characterize(
            &adder,
            &CharacterizationConfig {
                stimulus: StimulusKind::UniformHd,
                ..base
            },
        )
        .unwrap();
        // Compare the well-populated central classes.
        for i in 3..=5 {
            let a = uniform.model.coefficient(i);
            let b = stratified.model.coefficient(i);
            assert!(
                ((a - b) / a).abs() < 0.05,
                "class {i}: uniform {a} vs stratified {b}"
            );
        }
    }

    #[test]
    fn trace_replay_matches_direct_characterization() {
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let patterns = hdpm_sim::random_patterns(8, 3000, 42);
        let trace = hdpm_sim::run_patterns(&adder, &patterns, DelayModel::Unit);
        let c = characterize_trace(&trace, ZeroClustering::Full).unwrap();
        assert_eq!(c.transitions, 2999);
        assert!(c.model.coefficient(4) > 0.0);
    }

    #[test]
    fn characterization_is_deterministic() {
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let a = characterize(&adder, &quick_config()).unwrap();
        let b = characterize(&adder, &quick_config()).unwrap();
        assert_eq!(a.model, b.model);
    }

    #[test]
    fn zero_transition_budget_is_a_structured_error() {
        // Regression: a pattern budget of 0 or 1 produces no transition,
        // which used to trip an internal 0/0 panic deep in model assembly.
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        for budget in [0usize, 1] {
            let config = CharacterizationConfig {
                max_patterns: budget,
                ..CharacterizationConfig::default()
            };
            match characterize(&adder, &config) {
                Err(ModelError::EmptyCharacterization {
                    module,
                    transitions,
                }) => {
                    assert_eq!(transitions, 0, "budget {budget}");
                    assert!(module.contains("ripple_adder"));
                }
                other => panic!("budget {budget}: expected EmptyCharacterization, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_trace_is_a_structured_error() {
        let trace = hdpm_sim::Trace {
            module: "empty".into(),
            input_width: 4,
            samples: Vec::new(),
        };
        assert!(matches!(
            characterize_trace(&trace, ZeroClustering::Full),
            Err(ModelError::EmptyCharacterization { transitions: 0, .. })
        ));
    }

    #[test]
    fn sharded_is_invariant_in_thread_count() {
        // The full module-family matrix lives in tests/parallel_conformance.rs;
        // this is the quick in-crate smoke check.
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let config = CharacterizationConfig {
            max_patterns: 1600,
            ..CharacterizationConfig::default()
        };
        let reference = characterize_sharded(
            &adder,
            &config,
            &ShardingConfig {
                shards: 4,
                threads: 1,
            },
        )
        .unwrap();
        for threads in [2, 4, 8] {
            let c = characterize_sharded(&adder, &config, &ShardingConfig { shards: 4, threads })
                .unwrap();
            assert_eq!(reference, c, "threads = {threads}");
        }
        // Every shard's first pattern initializes; the rest are transitions.
        assert_eq!(reference.transitions, 1600 - 4);
    }

    #[test]
    fn sharded_stimuli_cover_every_kind() {
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        for stimulus in [
            StimulusKind::UniformRandom,
            StimulusKind::SignalProbSweep,
            StimulusKind::UniformHd,
        ] {
            let config = CharacterizationConfig {
                max_patterns: 1200,
                stimulus,
                ..CharacterizationConfig::default()
            };
            let sharding = ShardingConfig {
                shards: 3,
                threads: 2,
            };
            let a = characterize_sharded(&adder, &config, &sharding).unwrap();
            let b = characterize_sharded(&adder, &config, &sharding).unwrap();
            assert_eq!(a, b, "{stimulus:?} must be reproducible");
            assert!(a.model.coefficient(4) > 0.0);
        }
    }

    #[test]
    fn shard_count_is_part_of_the_result_identity() {
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let config = CharacterizationConfig {
            max_patterns: 2000,
            ..CharacterizationConfig::default()
        };
        let two = characterize_sharded(
            &adder,
            &config,
            &ShardingConfig {
                shards: 2,
                threads: 1,
            },
        )
        .unwrap();
        let four = characterize_sharded(
            &adder,
            &config,
            &ShardingConfig {
                shards: 4,
                threads: 1,
            },
        )
        .unwrap();
        // Different shard counts select different pattern streams...
        assert_ne!(two.model, four.model);
        // ...but agree statistically on the well-populated classes.
        for i in 3..=5 {
            let a = two.model.coefficient(i);
            let b = four.model.coefficient(i);
            assert!(((a - b) / a).abs() < 0.2, "class {i}: {a} vs {b}");
        }
    }

    #[test]
    fn backends_agree_sequentially() {
        // The headline contract (full matrix in tests/sim_conformance.rs):
        // the bit-plane engine is bit-identical to the event-driven
        // oracle, including mid-block convergence stops.
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let mut config = quick_config();
        config.check_interval = 300; // not lane-aligned: stops mid-block
        config.convergence_tol = 0.08;
        let event = characterize_with_backend(&adder, &config, SimBackend::Event).unwrap();
        let bitplane = characterize_with_backend(&adder, &config, SimBackend::Bitplane).unwrap();
        assert_eq!(event, bitplane);
    }

    #[test]
    fn backends_agree_when_sharded() {
        let mul = modules::csa_multiplier(4, 4).unwrap().validate().unwrap();
        let config = CharacterizationConfig {
            max_patterns: 1500,
            ..quick_config()
        };
        let sharding = ShardingConfig {
            shards: 4,
            threads: 2,
        };
        let event =
            characterize_sharded_with_backend(&mul, &config, &sharding, SimBackend::Event).unwrap();
        let bitplane =
            characterize_sharded_with_backend(&mul, &config, &sharding, SimBackend::Bitplane)
                .unwrap();
        assert_eq!(event, bitplane);
    }

    #[test]
    fn registered_netlists_fall_back_to_the_oracle() {
        // Sequential state is not lane-parallelizable; the MAC must take
        // the event-driven path under either requested backend and agree.
        let mac = modules::mac(4).unwrap().validate().unwrap();
        assert!(!hdpm_sim::BitplaneSimulator::supports(&mac));
        let config = CharacterizationConfig {
            max_patterns: 1200,
            ..quick_config()
        };
        let event = characterize_with_backend(&mac, &config, SimBackend::Event).unwrap();
        let bitplane = characterize_with_backend(&mac, &config, SimBackend::Bitplane).unwrap();
        assert_eq!(event, bitplane);
    }

    #[test]
    fn default_backend_resolution_matches_explicit_bitplane() {
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let via_default = characterize(&adder, &quick_config()).unwrap();
        let via_explicit =
            characterize_with_backend(&adder, &quick_config(), SimBackend::Bitplane).unwrap();
        assert_eq!(via_default, via_explicit);
    }

    #[test]
    fn builder_defaults_match_struct_default() {
        let built = CharacterizationConfig::builder().build().unwrap();
        assert_eq!(built, CharacterizationConfig::default());
    }

    #[test]
    fn builder_sets_every_field() {
        let built = CharacterizationConfig::builder()
            .max_patterns(5_000)
            .stimulus(StimulusKind::UniformHd)
            .seed(42)
            .delay_model(DelayModel::Zero)
            .convergence_tol(0.05)
            .check_interval(500)
            .min_class_samples(3)
            .clustering(ZeroClustering::Clustered(2))
            .build()
            .unwrap();
        let expected = CharacterizationConfig {
            max_patterns: 5_000,
            stimulus: StimulusKind::UniformHd,
            seed: 42,
            delay_model: DelayModel::Zero,
            convergence_tol: 0.05,
            check_interval: 500,
            min_class_samples: 3,
            clustering: ZeroClustering::Clustered(2),
        };
        assert_eq!(built, expected);
    }

    #[test]
    fn builder_rejects_out_of_range_fields() {
        let cases: Vec<(CharacterizationConfigBuilder, &str)> = vec![
            (
                CharacterizationConfig::builder().max_patterns(1),
                "max_patterns",
            ),
            (
                CharacterizationConfig::builder().check_interval(0),
                "check_interval",
            ),
            (
                CharacterizationConfig::builder().convergence_tol(f64::NAN),
                "convergence_tol",
            ),
            (
                CharacterizationConfig::builder().convergence_tol(-0.1),
                "convergence_tol",
            ),
            (
                CharacterizationConfig::builder().min_class_samples(0),
                "min_class_samples",
            ),
            (
                CharacterizationConfig::builder().clustering(ZeroClustering::Clustered(0)),
                "clustering",
            ),
        ];
        for (builder, expected_field) in cases {
            match builder.build() {
                Err(ModelError::InvalidConfig { field, .. }) => {
                    assert_eq!(field, expected_field);
                }
                other => panic!("expected InvalidConfig for {expected_field}, got {other:?}"),
            }
        }
    }
}
