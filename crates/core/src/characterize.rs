//! Model characterization (§4.1).
//!
//! Module prototypes are stimulated with random patterns; the reference
//! simulator reports the charge of every transition; coefficients are the
//! per-class averages of eq. 4, with the per-class average absolute
//! deviation `ε_i` of eq. 5. Characterization stops early once the
//! coefficients have converged.

use hdpm_netlist::ValidatedNetlist;
use hdpm_sim::{BitPattern, DelayModel, Simulator};
use hdpm_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use telemetry::Level;

use crate::model::{EnhancedHdModel, HdModel, ZeroClustering};

/// The statistics of the characterization pattern stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StimulusKind {
    /// Uniform random patterns — the paper's §4.1 stimulus (every bit is
    /// an independent fair coin).
    #[default]
    UniformRandom,
    /// Stratified stimulus: the per-bit one-probability cycles through a
    /// sweep of values, so that zero-rich and one-rich transitions are
    /// well represented. Recommended when the *enhanced* model's
    /// stable-zero subgroups must be populated (uniform random patterns
    /// almost never produce transitions where most stable bits are zero).
    SignalProbSweep,
    /// Hd-stratified stimulus: every transition flips a uniformly chosen
    /// number of uniformly chosen bits of the previous pattern. The
    /// conditional law of a transition given its class `E_i` is identical
    /// to uniform random patterns (uniform state, uniform `i`-subset of
    /// flipped positions), but every class receives `≈ n/(m+1)` samples
    /// instead of the binomial tail starving `p_1` and `p_m` — importance
    /// sampling over the event classes of eq. 4.
    UniformHd,
}

/// Configuration of a characterization run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationConfig {
    /// Maximum number of random characterization patterns.
    pub max_patterns: usize,
    /// Statistics of the characterization stream.
    pub stimulus: StimulusKind,
    /// RNG seed for the pattern stream.
    pub seed: u64,
    /// Reference-simulator timing discipline.
    pub delay_model: DelayModel,
    /// Convergence tolerance: characterization stops when no populated
    /// class coefficient moved by more than this relative amount between
    /// checkpoints.
    pub convergence_tol: f64,
    /// Patterns between convergence checkpoints.
    pub check_interval: usize,
    /// Minimum samples a class needs before it participates in the
    /// convergence check.
    pub min_class_samples: u64,
    /// Subgroup layout of the enhanced model.
    pub clustering: ZeroClustering,
}

impl Default for CharacterizationConfig {
    fn default() -> Self {
        CharacterizationConfig {
            max_patterns: 12_000,
            stimulus: StimulusKind::UniformRandom,
            seed: 0xC0FFEE,
            delay_model: DelayModel::Unit,
            convergence_tol: 0.02,
            check_interval: 2_000,
            min_class_samples: 8,
            clustering: ZeroClustering::Full,
        }
    }
}

/// One convergence checkpoint: patterns seen so far and the largest
/// relative coefficient change since the previous checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Patterns applied up to this checkpoint.
    pub patterns: usize,
    /// Maximum relative coefficient change across populated classes.
    pub max_relative_change: f64,
}

/// The result of characterizing one module prototype.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    /// The basic Hd model (eq. 2).
    pub model: HdModel,
    /// The enhanced Hd model (eq. 3).
    pub enhanced: EnhancedHdModel,
    /// Number of transitions actually used.
    pub transitions: usize,
    /// Pattern count after which the convergence criterion held, if it did
    /// before `max_patterns` ran out.
    pub converged_after: Option<usize>,
    /// Convergence history (for the convergence-ablation bench).
    pub history: Vec<ConvergencePoint>,
}

/// Characterize a module prototype with random patterns (§4.1).
///
/// # Examples
///
/// ```
/// use hdpm_core::{characterize, CharacterizationConfig};
/// use hdpm_netlist::modules;
///
/// # fn main() -> Result<(), hdpm_netlist::NetlistError> {
/// let adder = modules::ripple_adder(4)?.validate()?;
/// let config = CharacterizationConfig {
///     max_patterns: 2000,
///     ..CharacterizationConfig::default()
/// };
/// let result = characterize(&adder, &config);
/// // Coefficients grow with the Hamming distance.
/// assert!(result.model.coefficient(8) > result.model.coefficient(2));
/// # Ok(())
/// # }
/// ```
pub fn characterize(
    netlist: &ValidatedNetlist,
    config: &CharacterizationConfig,
) -> Characterization {
    let m = netlist.netlist().input_bit_count();
    let mut sim = Simulator::with_delay_model(netlist, config.delay_model);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let _span = telemetry::span("characterize");
    telemetry::event(
        Level::Info,
        "characterize.start",
        &[
            ("module", netlist.netlist().name().into()),
            ("input_bits", m.into()),
            ("stimulus", format!("{:?}", config.stimulus).into()),
            ("max_patterns", config.max_patterns.into()),
            ("seed", config.seed.into()),
        ],
    );

    // Per-sample records for the deviation pass.
    let mut records: Vec<(u16, u16, f64)> = Vec::with_capacity(config.max_patterns);

    // Running per-class sums for the convergence check.
    let mut sums = vec![0.0f64; m + 1];
    let mut counts = vec![0u64; m + 1];
    let mut last_snapshot: Option<Vec<f64>> = None;
    let mut history = Vec::new();
    let mut converged_after = None;

    // Signal-probability levels of the stratified stimulus; each level
    // holds for a block of patterns so transitions within a block carry
    // the level's statistics.
    const SWEEP_LEVELS: [f64; 7] = [0.5, 0.15, 0.85, 0.3, 0.7, 0.05, 0.95];
    const SWEEP_BLOCK: usize = 200;

    let mut prev: Option<BitPattern> = None;
    // Scratch index pool for the Hd-stratified subset draw.
    let mut positions: Vec<usize> = (0..m).collect();
    let mut applied = 0usize;
    while applied < config.max_patterns {
        let pattern = match (config.stimulus, prev) {
            (StimulusKind::UniformRandom, _) | (_, None) => {
                BitPattern::from_masked(rng.gen::<u64>(), m)
            }
            (StimulusKind::SignalProbSweep, _) => {
                let level = SWEEP_LEVELS[(applied / SWEEP_BLOCK) % SWEEP_LEVELS.len()];
                let mut bits = 0u64;
                for i in 0..m {
                    if rng.gen_bool(level) {
                        bits |= 1 << i;
                    }
                }
                BitPattern::new(bits, m)
            }
            (StimulusKind::UniformHd, Some(prev)) => {
                let k = rng.gen_range(0..=m);
                // Partial Fisher-Yates: the first k entries become a
                // uniform k-subset of bit positions.
                for i in 0..k {
                    let j = rng.gen_range(i..m);
                    positions.swap(i, j);
                }
                let mut bits = prev.bits();
                for &pos in &positions[..k] {
                    bits ^= 1 << pos;
                }
                BitPattern::new(bits, m)
            }
        };
        let result = sim.apply(pattern);
        if let Some(prev) = prev {
            let hd = prev.hamming_distance(pattern);
            let zeros = prev.stable_zeros(pattern);
            records.push((hd as u16, zeros as u16, result.charge));
            sums[hd] += result.charge;
            counts[hd] += 1;
        }
        prev = Some(pattern);
        applied += 1;

        if applied.is_multiple_of(config.check_interval) || applied == config.max_patterns {
            let snapshot: Vec<f64> = (0..=m)
                .map(|i| {
                    if counts[i] >= config.min_class_samples {
                        sums[i] / counts[i] as f64
                    } else {
                        f64::NAN
                    }
                })
                .collect();
            if let Some(last) = &last_snapshot {
                let mut max_change: f64 = 0.0;
                for (new, old) in snapshot.iter().zip(last) {
                    if new.is_nan() || old.is_nan() || *old == 0.0 {
                        continue;
                    }
                    max_change = max_change.max(((new - old) / old).abs());
                }
                history.push(ConvergencePoint {
                    patterns: applied,
                    max_relative_change: max_change,
                });
                telemetry::event(
                    Level::Info,
                    "characterize.checkpoint",
                    &[
                        ("patterns", applied.into()),
                        ("max_relative_change", max_change.into()),
                        ("baseline", false.into()),
                    ],
                );
                if converged_after.is_none() && max_change < config.convergence_tol {
                    converged_after = Some(applied);
                    break;
                }
            } else {
                // Baseline checkpoint: first coefficient snapshot, no
                // previous state to diff against.
                telemetry::event(
                    Level::Info,
                    "characterize.checkpoint",
                    &[("patterns", applied.into()), ("baseline", true.into())],
                );
            }
            last_snapshot = Some(snapshot);
        }
    }

    telemetry::event(
        Level::Info,
        "characterize.stop",
        &[
            ("patterns", applied.into()),
            ("transitions", records.len().into()),
            (
                "reason",
                if converged_after.is_some() {
                    "converged"
                } else {
                    "max_patterns"
                }
                .into(),
            ),
        ],
    );
    sim.flush_telemetry();

    let result = build_characterization(
        netlist.netlist().name(),
        m,
        &records,
        config.clustering,
        converged_after,
        history,
    );

    if telemetry::enabled() {
        telemetry::counter_add("characterize.transitions", result.transitions as u64);
        let counts = result.model.sample_counts();
        for (hd, &samples) in counts.iter().enumerate() {
            telemetry::event(
                Level::Info,
                "characterize.class_samples",
                &[
                    ("hd", hd.into()),
                    ("samples", samples.into()),
                    ("coefficient", result.model.coefficient(hd).into()),
                ],
            );
        }
        // Under uniform random stimulus the binomial tail starves the
        // extreme Hd classes; recommend the stratified stream when any
        // class stayed under the configured minimum.
        if config.stimulus == StimulusKind::UniformRandom {
            for (hd, &samples) in counts.iter().enumerate().skip(1) {
                if samples < config.min_class_samples {
                    telemetry::event(
                        Level::Warn,
                        "characterize.class_starved",
                        &[
                            ("hd", hd.into()),
                            ("samples", samples.into()),
                            ("min_samples", config.min_class_samples.into()),
                            (
                                "hint",
                                "class under-sampled by uniform random stimulus; \
                                 use UniformHd (--stratified) for balanced class coverage"
                                    .into(),
                            ),
                        ],
                    );
                }
            }
        }
    }

    result
}

/// Build the models from classified `(hd, stable_zeros, charge)` records.
/// Exposed for reuse by the adaptation and trace-replay paths.
pub(crate) fn build_characterization(
    module: &str,
    m: usize,
    records: &[(u16, u16, f64)],
    clustering: ZeroClustering,
    converged_after: Option<usize>,
    history: Vec<ConvergencePoint>,
) -> Characterization {
    // Basic model: eq. 4 means.
    let mut sums = vec![0.0f64; m + 1];
    let mut counts = vec![0u64; m + 1];
    for &(hd, _zeros, q) in records {
        sums[hd as usize] += q;
        counts[hd as usize] += 1;
    }
    let coeffs: Vec<f64> = (0..=m)
        .map(|i| {
            if counts[i] > 0 {
                sums[i] / counts[i] as f64
            } else {
                0.0
            }
        })
        .collect();

    // Eq. 5 deviations.
    let mut dev_sums = vec![0.0f64; m + 1];
    for &(hd, _zeros, q) in records {
        let p = coeffs[hd as usize];
        if p > 0.0 {
            dev_sums[hd as usize] += ((q - p) / p).abs();
        }
    }
    let deviations: Vec<f64> = (0..=m)
        .map(|i| {
            if counts[i] > 0 {
                dev_sums[i] / counts[i] as f64
            } else {
                0.0
            }
        })
        .collect();

    let basic = HdModel::from_parts(module, m, coeffs, deviations, counts);

    // Enhanced model: eq. 3 subgroups.
    let mut e_sums: Vec<Vec<f64>> = (1..=m)
        .map(|i| vec![0.0; clustering.groups(m, i)])
        .collect();
    let mut e_counts: Vec<Vec<u64>> = (1..=m).map(|i| vec![0; clustering.groups(m, i)]).collect();
    for &(hd, zeros, q) in records {
        let (hd, zeros) = (hd as usize, zeros as usize);
        if hd == 0 {
            continue;
        }
        let g = clustering.group_of(m, hd, zeros);
        e_sums[hd - 1][g] += q;
        e_counts[hd - 1][g] += 1;
    }
    let e_coeffs: Vec<Vec<f64>> = e_sums
        .iter()
        .zip(&e_counts)
        .map(|(srow, crow)| {
            srow.iter()
                .zip(crow)
                .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
                .collect()
        })
        .collect();
    let mut e_dev_sums: Vec<Vec<f64>> = e_counts.iter().map(|row| vec![0.0; row.len()]).collect();
    for &(hd, zeros, q) in records {
        let (hd, zeros) = (hd as usize, zeros as usize);
        if hd == 0 {
            continue;
        }
        let g = clustering.group_of(m, hd, zeros);
        let p = e_coeffs[hd - 1][g];
        if p > 0.0 {
            e_dev_sums[hd - 1][g] += ((q - p) / p).abs();
        }
    }
    let e_devs: Vec<Vec<f64>> = e_dev_sums
        .iter()
        .zip(&e_counts)
        .map(|(srow, crow)| {
            srow.iter()
                .zip(crow)
                .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
                .collect()
        })
        .collect();

    let enhanced =
        EnhancedHdModel::from_parts(basic.clone(), clustering, e_coeffs, e_devs, e_counts);

    Characterization {
        model: basic,
        enhanced,
        transitions: records.len(),
        converged_after,
        history,
    }
}

/// Characterize from an existing reference [`hdpm_sim::Trace`] instead of
/// generating fresh random patterns — useful for replaying recorded or
/// application-specific characterization stimuli.
pub fn characterize_trace(trace: &hdpm_sim::Trace, clustering: ZeroClustering) -> Characterization {
    let records: Vec<(u16, u16, f64)> = trace
        .samples
        .iter()
        .map(|s| (s.hd as u16, s.stable_zeros as u16, s.charge))
        .collect();
    build_characterization(
        &trace.module,
        trace.input_width,
        &records,
        clustering,
        None,
        Vec::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdpm_netlist::modules;

    fn quick_config() -> CharacterizationConfig {
        CharacterizationConfig {
            max_patterns: 4000,
            check_interval: 1000,
            ..CharacterizationConfig::default()
        }
    }

    #[test]
    fn coefficients_increase_with_hd() {
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let c = characterize(&adder, &quick_config());
        let model = &c.model;
        // The curve rises over the well-populated bulk of the binomial Hd
        // range (it saturates and rolls off at the extreme classes, where
        // complementing every input leaves the XOR propagate chains
        // invariant — visible in the paper's Fig. 1 saturation too).
        assert!(model.coefficient(1) > 0.0);
        assert!(model.coefficient(2) > model.coefficient(1));
        assert!(model.coefficient(4) > model.coefficient(2));
        assert!(model.coefficient(5) > model.coefficient(3));
    }

    #[test]
    fn deviations_shrink_for_large_hd() {
        // §4.1: "the relative coefficient deviations are decreasing for
        // larger values of the Hamming-distance."
        let mul = modules::csa_multiplier(6, 6).unwrap().validate().unwrap();
        let c = characterize(&mul, &quick_config());
        let low = c.model.deviation(2);
        let high = c.model.deviation(10);
        assert!(
            high < low,
            "deviation at Hd 10 ({high}) should be below Hd 2 ({low})"
        );
    }

    #[test]
    fn characterization_converges() {
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let config = CharacterizationConfig {
            max_patterns: 60_000,
            check_interval: 4_000,
            convergence_tol: 0.05,
            ..CharacterizationConfig::default()
        };
        let c = characterize(&adder, &config);
        assert!(
            c.converged_after.is_some(),
            "expected convergence, history: {:?}",
            c.history
        );
    }

    #[test]
    fn enhanced_model_separates_zero_rich_transitions() {
        // For an adder, transitions among low (zero-heavy) operand values
        // exercise less of the carry chain than transitions among high
        // values: the all-stable-zeros subgroup should sit below the
        // no-stable-zeros subgroup for small Hd.
        let adder = modules::ripple_adder(8).unwrap().validate().unwrap();
        let config = CharacterizationConfig {
            max_patterns: 12_000,
            ..quick_config()
        };
        let c = characterize(&adder, &config);
        let m = 16;
        let hd = 2;
        let row = c.enhanced.coefficient_row(hd);
        let counts = c.enhanced.sample_count_row(hd);
        let groups = row.len();
        assert_eq!(groups, m - hd + 1);
        // Compare low-zeros vs high-zeros ends where populated.
        let low_zero = (0..groups / 4)
            .filter(|&g| counts[g] > 3)
            .map(|g| row[g])
            .fold(f64::NAN, f64::max);
        let high_zero = (3 * groups / 4..groups)
            .filter(|&g| counts[g] > 3)
            .map(|g| row[g])
            .fold(f64::NAN, f64::min);
        if low_zero.is_finite() && high_zero.is_finite() {
            assert!(
                high_zero < low_zero,
                "all-zeros subgroup {high_zero} should be below no-zeros {low_zero}"
            );
        }
    }

    #[test]
    fn uniform_hd_stimulus_balances_class_counts() {
        let adder = modules::ripple_adder(8).unwrap().validate().unwrap();
        let config = CharacterizationConfig {
            max_patterns: 8000,
            stimulus: StimulusKind::UniformHd,
            convergence_tol: 0.0,
            ..CharacterizationConfig::default()
        };
        let c = characterize(&adder, &config);
        let counts = c.model.sample_counts();
        // Every class (1..=16) should be populated with roughly
        // n/(m+1) = ~470 samples; allow wide slack.
        for (i, &count) in counts.iter().enumerate().skip(1) {
            assert!(
                count > 200,
                "class {i} starved under UniformHd: {count} samples"
            );
        }
        // The extreme classes must be far better sampled than under a
        // uniform random stream, where P(Hd = 1) = 16/2^16.
        assert!(counts[1] > 100);
        assert!(counts[16] > 100);
    }

    #[test]
    fn uniform_hd_class_means_match_uniform_random() {
        // Both stimuli must estimate the same class-conditional means
        // (the UniformHd draw is the exact conditional law).
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let base = CharacterizationConfig {
            max_patterns: 40_000,
            convergence_tol: 0.0,
            ..CharacterizationConfig::default()
        };
        let uniform = characterize(&adder, &base);
        let stratified = characterize(
            &adder,
            &CharacterizationConfig {
                stimulus: StimulusKind::UniformHd,
                ..base
            },
        );
        // Compare the well-populated central classes.
        for i in 3..=5 {
            let a = uniform.model.coefficient(i);
            let b = stratified.model.coefficient(i);
            assert!(
                ((a - b) / a).abs() < 0.05,
                "class {i}: uniform {a} vs stratified {b}"
            );
        }
    }

    #[test]
    fn trace_replay_matches_direct_characterization() {
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let patterns = hdpm_sim::random_patterns(8, 3000, 42);
        let trace = hdpm_sim::run_patterns(&adder, &patterns, DelayModel::Unit);
        let c = characterize_trace(&trace, ZeroClustering::Full);
        assert_eq!(c.transitions, 2999);
        assert!(c.model.coefficient(4) > 0.0);
    }

    #[test]
    fn characterization_is_deterministic() {
        let adder = modules::ripple_adder(4).unwrap().validate().unwrap();
        let a = characterize(&adder, &quick_config());
        let b = characterize(&adder, &quick_config());
        assert_eq!(a.model, b.model);
    }
}
