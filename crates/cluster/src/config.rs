//! Static cluster configuration: this node's identity plus its peers,
//! exactly as passed on the command line.

use std::net::SocketAddr;
use std::time::Duration;

/// One remote fleet member: a stable id and the address its protocol
/// port listens on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Peer {
    /// Stable member id, the unit of ring membership.
    pub id: String,
    /// Protocol (not admin) listening address of the peer.
    pub addr: SocketAddr,
}

/// Static cluster configuration of one node. Every node of a fleet is
/// started with the same member set (itself under `--node-id`, the
/// others under `--peers`), so all nodes compute the same ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// This node's member id.
    pub node_id: String,
    /// The *other* members of the fleet; the ring is `node_id` + these.
    pub peers: Vec<Peer>,
    /// Replicas per key beyond the owner.
    pub replicas: usize,
    /// Cadence of warm-key gossip rounds.
    pub gossip_interval: Duration,
    /// How long `/readyz` may report `warming` before the node serves
    /// anyway; the gossip pre-warm gate gives up at this deadline.
    pub warm_timeout: Duration,
    /// Per-operation budget for peer fetch/probe/gossip calls (connect
    /// plus read/write).
    pub peer_timeout: Duration,
    /// Budget for a characterization forwarded to the owner; generous,
    /// because the owner may be running the gate-level characterization
    /// this call exists to avoid duplicating.
    pub forward_timeout: Duration,
}

impl ClusterConfig {
    /// A configuration with default timings: gossip every 2 s, 10 s warm
    /// budget, 1 s per peer operation, 30 s forwarded-characterization
    /// budget, 1 replica.
    pub fn new(node_id: impl Into<String>, peers: Vec<Peer>) -> ClusterConfig {
        ClusterConfig {
            node_id: node_id.into(),
            peers,
            replicas: 1,
            gossip_interval: Duration::from_millis(2000),
            warm_timeout: Duration::from_millis(10_000),
            peer_timeout: Duration::from_millis(1000),
            forward_timeout: Duration::from_millis(30_000),
        }
    }

    /// All member ids of the fleet: this node plus every peer.
    pub fn member_ids(&self) -> Vec<String> {
        let mut ids = vec![self.node_id.clone()];
        ids.extend(self.peers.iter().map(|p| p.id.clone()));
        ids
    }

    /// Look up a peer by member id (`None` for `node_id` itself).
    pub fn peer(&self, id: &str) -> Option<&Peer> {
        self.peers.iter().find(|p| p.id == id)
    }

    /// Reject configurations no fleet can agree on.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem found: empty or
    /// malformed node id, duplicate member ids, a peer claiming this
    /// node's id, or a zero gossip interval.
    pub fn validate(&self) -> Result<(), String> {
        validate_id(&self.node_id)?;
        for peer in &self.peers {
            validate_id(&peer.id)?;
            if peer.id == self.node_id {
                return Err(format!(
                    "peer `{}` has the same id as this node; list only the other members",
                    peer.id
                ));
            }
        }
        for (i, peer) in self.peers.iter().enumerate() {
            if self.peers[..i].iter().any(|p| p.id == peer.id) {
                return Err(format!("duplicate peer id `{}`", peer.id));
            }
        }
        if self.gossip_interval.is_zero() {
            return Err("gossip interval must be positive".to_string());
        }
        Ok(())
    }
}

fn validate_id(id: &str) -> Result<(), String> {
    if id.is_empty() {
        return Err("member id must not be empty".to_string());
    }
    if id
        .chars()
        .any(|c| c.is_whitespace() || c == '=' || c == ',')
    {
        return Err(format!(
            "member id `{id}` must not contain whitespace, `=` or `,`"
        ));
    }
    Ok(())
}

/// Parse a `--peers` value: comma-separated `id=host:port` entries, e.g.
/// `node2=127.0.0.1:7002,node3=127.0.0.1:7003`. Addresses must be
/// numeric socket addresses (no name resolution happens here).
///
/// # Errors
///
/// A human-readable description of the first malformed entry.
pub fn parse_peers(raw: &str) -> Result<Vec<Peer>, String> {
    let mut peers = Vec::new();
    for entry in raw.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let Some((id, addr)) = entry.split_once('=') else {
            return Err(format!("peer `{entry}` is not of the form id=host:port"));
        };
        let addr: SocketAddr = addr.trim().parse().map_err(|e| {
            format!(
                "peer `{id}` has an unparseable address `{}`: {e}",
                addr.trim()
            )
        })?;
        peers.push(Peer {
            id: id.trim().to_string(),
            addr,
        });
    }
    if peers.is_empty() {
        return Err("peer list is empty".to_string());
    }
    Ok(peers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_lists_parse_and_validate() {
        let peers = parse_peers("node2=127.0.0.1:7002, node3=127.0.0.1:7003").unwrap();
        assert_eq!(peers.len(), 2);
        assert_eq!(peers[0].id, "node2");
        assert_eq!(peers[1].addr.port(), 7003);
        let config = ClusterConfig::new("node1", peers);
        config.validate().unwrap();
        assert_eq!(
            config.member_ids(),
            vec![
                "node1".to_string(),
                "node2".to_string(),
                "node3".to_string()
            ]
        );
        assert_eq!(config.peer("node3").unwrap().addr.port(), 7003);
        assert!(config.peer("node1").is_none());
    }

    #[test]
    fn malformed_peer_lists_are_rejected() {
        for (raw, needle) in [
            ("node2", "id=host:port"),
            ("node2=localhost:7002", "unparseable address"),
            ("node2=127.0.0.1", "unparseable address"),
            ("", "empty"),
        ] {
            let err = parse_peers(raw).unwrap_err();
            assert!(err.contains(needle), "{raw:?}: {err}");
        }
    }

    #[test]
    fn nonsense_configurations_are_rejected() {
        let peer = |id: &str, port: u16| Peer {
            id: id.to_string(),
            addr: format!("127.0.0.1:{port}").parse().unwrap(),
        };
        let cases = [
            (ClusterConfig::new("", vec![peer("b", 1)]), "empty"),
            (ClusterConfig::new("a b", vec![peer("b", 1)]), "whitespace"),
            (
                ClusterConfig::new("a", vec![peer("a", 1)]),
                "same id as this node",
            ),
            (
                ClusterConfig::new("a", vec![peer("b", 1), peer("b", 2)]),
                "duplicate",
            ),
            (
                ClusterConfig {
                    gossip_interval: Duration::ZERO,
                    ..ClusterConfig::new("a", vec![peer("b", 1)])
                },
                "gossip interval",
            ),
        ];
        for (config, needle) in cases {
            let err = config.validate().unwrap_err();
            assert!(err.contains(needle), "{config:?}: {err}");
        }
        ClusterConfig::new("a", vec![]).validate().unwrap();
    }
}
