//! Rendezvous-hash ownership ring.
//!
//! For each (member, key) pair the ring computes a deterministic 64-bit
//! score; the members with the highest scores hold the key, the single
//! highest being the owner. Unlike a token ring, rendezvous hashing needs
//! no virtual nodes for balance and has minimal disruption by
//! construction: removing a member only remaps the keys that member held,
//! because every other member's score for every key is unchanged.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over a byte string — the same hash the model store uses for
/// checksums and fingerprints, reimplemented here so the ring has no
/// dependency on the store crate.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A rendezvous-hash ownership ring over a fixed member set.
///
/// Keys are the `Display` form of a `ModelKey` (spec, configuration
/// fingerprint, shard count), so two differently-configured fleets can
/// never confuse each other's artifacts even if their member ids collide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    members: Vec<String>,
    replicas: usize,
}

impl Ring {
    /// A ring over `members` where each key is held by its owner plus
    /// `replicas` further members (when that many exist). Members are
    /// deduplicated; order of the input does not matter.
    pub fn new(members: impl IntoIterator<Item = String>, replicas: usize) -> Ring {
        let mut members: Vec<String> = members.into_iter().collect();
        members.sort();
        members.dedup();
        Ring { members, replicas }
    }

    /// The member ids, sorted.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// Configured replica count (holders beyond the owner).
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Rendezvous score of one member for one key. The member id and key
    /// are joined with a NUL so `("ab", "c")` and `("a", "bc")` cannot
    /// collide.
    fn score(member: &str, key: &str) -> u64 {
        let mut bytes = Vec::with_capacity(member.len() + 1 + key.len());
        bytes.extend_from_slice(member.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(key.as_bytes());
        fnv1a64(&bytes)
    }

    /// The members holding `key`: the owner first, then up to
    /// [`Ring::replicas`] replicas, in descending rendezvous order.
    /// Empty only for an empty ring.
    pub fn holders(&self, key: &str) -> Vec<&str> {
        let mut scored: Vec<(u64, &str)> = self
            .members
            .iter()
            .map(|m| (Ring::score(m, key), m.as_str()))
            .collect();
        // Descending by score; member name as a deterministic tiebreak.
        scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(b.1)));
        scored
            .into_iter()
            .take(1 + self.replicas)
            .map(|(_, m)| m)
            .collect()
    }

    /// The single owner of `key`, or `None` for an empty ring.
    pub fn owner(&self, key: &str) -> Option<&str> {
        self.holders(key).first().copied()
    }

    /// Whether `member` is the owner or one of the replicas of `key`.
    pub fn is_holder(&self, member: &str, key: &str) -> bool {
        self.holders(key).contains(&member)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring3(replicas: usize) -> Ring {
        Ring::new(["node1", "node2", "node3"].map(String::from), replicas)
    }

    #[test]
    fn ownership_is_deterministic_and_order_independent() {
        let a = ring3(1);
        let b = Ring::new(["node3", "node1", "node2", "node1"].map(String::from), 1);
        assert_eq!(a, b, "sorting and dedup normalize construction");
        for key in [
            "ripple_adder_4_cfgdeadbeef_sh8",
            "csa_multiplier_16x16_cfg0_sh4",
        ] {
            assert_eq!(a.owner(key), b.owner(key));
            assert_eq!(a.holders(key), b.holders(key));
        }
    }

    #[test]
    fn holders_are_distinct_members_led_by_the_owner() {
        let ring = ring3(1);
        let holders = ring.holders("some_key");
        assert_eq!(holders.len(), 2, "owner plus one replica");
        assert_ne!(holders[0], holders[1]);
        assert_eq!(ring.owner("some_key"), Some(holders[0]));
        assert!(ring.is_holder(holders[0], "some_key"));
        assert!(ring.is_holder(holders[1], "some_key"));
        // Replica count is capped by the member count.
        let wide = ring3(10);
        assert_eq!(wide.holders("some_key").len(), 3);
    }

    #[test]
    fn keys_spread_across_members() {
        let ring = ring3(0);
        let mut counts = std::collections::HashMap::new();
        for i in 0..300 {
            let key = format!("ripple_adder_{i}_cfg0123456789abcdef_sh8");
            *counts
                .entry(ring.owner(&key).unwrap().to_string())
                .or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 3, "every member owns some keys: {counts:?}");
        for (member, count) in &counts {
            assert!(
                (40..=160).contains(count),
                "grossly unbalanced ownership for {member}: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_member_only_remaps_its_own_keys() {
        let full = ring3(0);
        let reduced = Ring::new(["node1", "node2"].map(String::from), 0);
        for i in 0..200 {
            let key = format!("barrel_shifter_{i}_cfg0123456789abcdef_sh4");
            let before = full.owner(&key).unwrap();
            let after = reduced.owner(&key).unwrap();
            if before != "node3" {
                assert_eq!(before, after, "surviving assignment is stable for {key}");
            } else {
                assert!(after == "node1" || after == "node2");
            }
        }
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = Ring::new(Vec::<String>::new(), 1);
        assert_eq!(ring.owner("k"), None);
        assert!(ring.holders("k").is_empty());
        assert!(!ring.is_holder("node1", "k"));
    }
}
