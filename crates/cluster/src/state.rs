//! One node's live view of the fleet: the ring, transfer/forward/gossip
//! counters, per-peer health, and the pre-warm readiness gate.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use hdpm_telemetry as telemetry;

use crate::config::{ClusterConfig, Peer};
use crate::ring::Ring;

/// Monotonic counters of cluster activity. Every recording also feeds
/// the process-wide telemetry registry under a `cluster.*` name, so the
/// counters show up on `/metrics` alongside everything else; the local
/// atomics back the structured `/clusterz` snapshot.
#[derive(Debug, Default)]
pub struct ClusterStats {
    fetch_hits: AtomicU64,
    fetch_misses: AtomicU64,
    fetch_errors: AtomicU64,
    forwards: AtomicU64,
    forward_fallbacks: AtomicU64,
    gossip_rounds: AtomicU64,
    warm_keys_sent: AtomicU64,
    warm_keys_learned: AtomicU64,
    quarantined: AtomicU64,
}

/// Plain snapshot of [`ClusterStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Peer fetches that returned a verified artifact.
    pub fetch_hits: u64,
    /// Peer fetches answered "not present" (the owner had not
    /// characterized yet).
    pub fetch_misses: u64,
    /// Peer fetches that failed (connect, timeout, refused, oversized).
    pub fetch_errors: u64,
    /// Cold characterizations forwarded to the owner.
    pub forwards: u64,
    /// Forwards that fell back to a local characterization.
    pub forward_fallbacks: u64,
    /// Completed gossip rounds (every peer attempted once).
    pub gossip_rounds: u64,
    /// Warm keys advertised to peers.
    pub warm_keys_sent: u64,
    /// Warm keys learned from peers.
    pub warm_keys_learned: u64,
    /// Peer-fetched payloads that failed verification and were
    /// quarantined instead of admitted.
    pub quarantined: u64,
}

impl ClusterStats {
    /// A peer fetch returned a verified artifact.
    pub fn record_fetch_hit(&self) {
        self.fetch_hits.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("cluster.fetch.hit", 1);
    }

    /// A peer fetch was answered "not present".
    pub fn record_fetch_miss(&self) {
        self.fetch_misses.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("cluster.fetch.miss", 1);
    }

    /// A peer fetch failed outright.
    pub fn record_fetch_error(&self) {
        self.fetch_errors.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("cluster.fetch.error", 1);
    }

    /// A cold characterization was forwarded to the owner.
    pub fn record_forward(&self) {
        self.forwards.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("cluster.forward", 1);
    }

    /// A forward failed and the node characterized locally instead.
    pub fn record_forward_fallback(&self) {
        self.forward_fallbacks.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("cluster.forward.fallback", 1);
    }

    /// A gossip round (every peer attempted once) completed.
    pub fn record_gossip_round(&self) {
        self.gossip_rounds.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("cluster.gossip.round", 1);
    }

    /// `n` warm keys were advertised to a peer.
    pub fn record_warm_keys_sent(&self, n: u64) {
        self.warm_keys_sent.fetch_add(n, Ordering::Relaxed);
        telemetry::counter_add("cluster.warm.keys.sent", n);
    }

    /// `n` warm keys were learned from a peer.
    pub fn record_warm_keys_learned(&self, n: u64) {
        self.warm_keys_learned.fetch_add(n, Ordering::Relaxed);
        telemetry::counter_add("cluster.warm.keys.learned", n);
    }

    /// A peer-fetched payload failed verification and was quarantined.
    pub fn record_quarantine(&self) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("cluster.quarantine", 1);
    }

    /// Consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            fetch_hits: self.fetch_hits.load(Ordering::Relaxed),
            fetch_misses: self.fetch_misses.load(Ordering::Relaxed),
            fetch_errors: self.fetch_errors.load(Ordering::Relaxed),
            forwards: self.forwards.load(Ordering::Relaxed),
            forward_fallbacks: self.forward_fallbacks.load(Ordering::Relaxed),
            gossip_rounds: self.gossip_rounds.load(Ordering::Relaxed),
            warm_keys_sent: self.warm_keys_sent.load(Ordering::Relaxed),
            warm_keys_learned: self.warm_keys_learned.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }
}

/// Outcome history of one peer, as shown on `/clusterz`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PeerStatus {
    /// Operations against this peer that succeeded.
    pub ok: u64,
    /// Operations against this peer that failed.
    pub errors: u64,
    /// Whether the most recent operation succeeded.
    pub reachable: bool,
    /// Detail of the most recent failure, if any.
    pub last_error: Option<String>,
}

/// Per-peer health bookkeeping, keyed by member id.
#[derive(Debug, Default)]
pub struct PeerHealth {
    peers: Mutex<BTreeMap<String, PeerStatus>>,
}

impl PeerHealth {
    /// Record a successful operation against `peer`.
    pub fn record_ok(&self, peer: &str) {
        let mut peers = self.peers.lock().expect("peer health lock");
        let status = peers.entry(peer.to_string()).or_default();
        status.ok += 1;
        status.reachable = true;
    }

    /// Record a failed operation against `peer`.
    pub fn record_error(&self, peer: &str, detail: impl Into<String>) {
        let mut peers = self.peers.lock().expect("peer health lock");
        let status = peers.entry(peer.to_string()).or_default();
        status.errors += 1;
        status.reachable = false;
        status.last_error = Some(detail.into());
    }

    /// Snapshot of every peer seen so far, sorted by member id.
    pub fn snapshot(&self) -> Vec<(String, PeerStatus)> {
        let peers = self.peers.lock().expect("peer health lock");
        peers
            .iter()
            .map(|(id, s)| (id.clone(), s.clone()))
            .collect()
    }
}

/// The pre-warm readiness gate: a fresh node reports `503 warming` on
/// `/readyz` until its first gossip exchange has pre-warmed the cache,
/// or until the configured warm timeout expires — whichever is first.
#[derive(Debug)]
pub struct WarmState {
    started: Instant,
    complete: AtomicBool,
    prewarmed: AtomicU64,
}

impl Default for WarmState {
    fn default() -> Self {
        WarmState {
            started: Instant::now(),
            complete: AtomicBool::new(false),
            prewarmed: AtomicU64::new(0),
        }
    }
}

impl WarmState {
    /// Declare pre-warm complete (first useful gossip round finished, or
    /// there is nothing to wait for).
    pub fn mark_complete(&self) {
        self.complete.store(true, Ordering::Release);
    }

    /// Whether pre-warm has been declared complete (ignoring the
    /// timeout).
    pub fn is_complete(&self) -> bool {
        self.complete.load(Ordering::Acquire)
    }

    /// Count `n` models pre-warmed from peers before readiness.
    pub fn record_prewarmed(&self, n: u64) {
        self.prewarmed.fetch_add(n, Ordering::Relaxed);
    }

    /// Models pre-warmed from peers so far.
    pub fn prewarmed(&self) -> u64 {
        self.prewarmed.load(Ordering::Relaxed)
    }

    /// Whether the node may serve: pre-warm completed, or its budget
    /// (`warm_timeout`) has expired.
    pub fn ready(&self, warm_timeout: std::time::Duration) -> bool {
        self.is_complete() || self.started.elapsed() >= warm_timeout
    }
}

/// One node's complete cluster state: configuration, the ring derived
/// from it, and all live bookkeeping. Built once at server start and
/// shared (behind an `Arc`) by the request path, the gossip thread and
/// the admin plane.
#[derive(Debug)]
pub struct ClusterState {
    config: ClusterConfig,
    ring: Ring,
    stats: ClusterStats,
    health: PeerHealth,
    warm: WarmState,
}

impl ClusterState {
    /// Validate `config` and derive the ring from its member set.
    ///
    /// # Errors
    ///
    /// The [`ClusterConfig::validate`] error, verbatim.
    pub fn new(config: ClusterConfig) -> Result<ClusterState, String> {
        config.validate()?;
        let ring = Ring::new(config.member_ids(), config.replicas);
        Ok(ClusterState {
            config,
            ring,
            stats: ClusterStats::default(),
            health: PeerHealth::default(),
            warm: WarmState::default(),
        })
    }

    /// The static configuration this state was built from.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The ownership ring over all member ids.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Cluster activity counters.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// Per-peer health bookkeeping.
    pub fn health(&self) -> &PeerHealth {
        &self.health
    }

    /// The pre-warm readiness gate.
    pub fn warm(&self) -> &WarmState {
        &self.warm
    }

    /// Whether this node is the owner of `key`.
    pub fn owns(&self, key: &str) -> bool {
        self.ring.owner(key) == Some(self.config.node_id.as_str())
    }

    /// The remote holders of `key` (owner first, replicas after), i.e.
    /// the peers this node may fetch `key` from — excludes itself.
    pub fn holder_peers(&self, key: &str) -> Vec<&Peer> {
        self.ring
            .holders(key)
            .into_iter()
            .filter_map(|id| self.config.peer(id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ClusterState {
        let peers = crate::parse_peers("node2=127.0.0.1:7002,node3=127.0.0.1:7003").unwrap();
        ClusterState::new(ClusterConfig::new("node1", peers)).unwrap()
    }

    #[test]
    fn state_derives_the_ring_from_all_members() {
        let state = state();
        assert_eq!(state.ring().members().len(), 3);
        let key = "ripple_adder_8_cfg0123456789abcdef_sh8";
        let holders = state.ring().holders(key);
        assert_eq!(holders.len(), 2, "owner plus one replica by default");
        assert_eq!(
            state.owns(key),
            holders[0] == "node1",
            "owns() agrees with the ring"
        );
        // holder_peers never contains this node and preserves ring order.
        let peer_ids: Vec<&str> = state
            .holder_peers(key)
            .iter()
            .map(|p| p.id.as_str())
            .collect();
        assert!(!peer_ids.contains(&"node1"));
        for id in &peer_ids {
            assert!(holders.contains(id));
        }
    }

    #[test]
    fn stats_snapshot_reflects_recordings() {
        let state = state();
        state.stats().record_fetch_hit();
        state.stats().record_fetch_miss();
        state.stats().record_forward();
        state.stats().record_forward_fallback();
        state.stats().record_gossip_round();
        state.stats().record_warm_keys_sent(3);
        state.stats().record_warm_keys_learned(2);
        state.stats().record_quarantine();
        state.stats().record_fetch_error();
        let snap = state.stats().snapshot();
        assert_eq!(snap.fetch_hits, 1);
        assert_eq!(snap.fetch_misses, 1);
        assert_eq!(snap.fetch_errors, 1);
        assert_eq!(snap.forwards, 1);
        assert_eq!(snap.forward_fallbacks, 1);
        assert_eq!(snap.gossip_rounds, 1);
        assert_eq!(snap.warm_keys_sent, 3);
        assert_eq!(snap.warm_keys_learned, 2);
        assert_eq!(snap.quarantined, 1);
    }

    #[test]
    fn peer_health_tracks_latest_outcome() {
        let state = state();
        state.health().record_ok("node2");
        state.health().record_error("node2", "connect refused");
        state.health().record_ok("node3");
        let snapshot = state.health().snapshot();
        assert_eq!(snapshot.len(), 2);
        let node2 = &snapshot[0].1;
        assert_eq!(snapshot[0].0, "node2");
        assert_eq!((node2.ok, node2.errors), (1, 1));
        assert!(!node2.reachable);
        assert_eq!(node2.last_error.as_deref(), Some("connect refused"));
        assert!(snapshot[1].1.reachable);
    }

    #[test]
    fn warm_gate_opens_on_completion_or_timeout() {
        let state = state();
        let long = std::time::Duration::from_secs(3600);
        assert!(!state.warm().ready(long));
        assert!(
            state.warm().ready(std::time::Duration::ZERO),
            "an expired budget opens the gate without completion"
        );
        state.warm().record_prewarmed(4);
        state.warm().mark_complete();
        assert!(state.warm().ready(long));
        assert_eq!(state.warm().prewarmed(), 4);
    }
}
