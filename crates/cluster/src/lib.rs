//! Cluster membership for hdpm serving fleets.
//!
//! N independent `hdpm server` processes become one cooperative fleet by
//! agreeing, from static configuration alone, on which node *owns* each
//! model artifact. This crate holds the shared-nothing pieces of that
//! agreement — no sockets, no filesystem:
//!
//! * [`Ring`] — rendezvous (highest-random-weight) hashing over the
//!   member ids, assigning every model key an owner plus R replicas.
//!   Every node computes the same assignment independently, and removing
//!   a member only remaps the keys that member held.
//! * [`ClusterConfig`] / [`Peer`] — static peer configuration as passed
//!   on the command line (`--node-id`, `--peers id=addr,...`).
//! * [`ClusterState`] — one node's live view of the fleet: the ring,
//!   transfer/forward/gossip counters ([`ClusterStats`]), per-peer
//!   health ([`PeerHealth`]), and the warm-up gate ([`WarmState`]) that
//!   holds `/readyz` at `503 warming` until the first gossip exchange
//!   pre-warms the cache or the warm timeout expires.
//!
//! The wire work — peer-fetch of envelope bytes, forwarded
//! characterizations, warm-key exchange — lives in `hdpm-server`, which
//! consumes this crate. See `docs/cluster.md` for the full protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod ring;
mod state;

pub use config::{parse_peers, ClusterConfig, Peer};
pub use ring::Ring;
pub use state::{ClusterState, ClusterStats, PeerHealth, PeerStatus, StatsSnapshot, WarmState};
