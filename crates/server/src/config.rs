//! Validated server configuration: [`ServerConfig`] and its builder.
//!
//! The server used to take a public field-bag struct (`ServerOptions`)
//! whose nonsense combinations — a zero-depth queue, a deadline longer
//! than the idle reaper, a zero write timeout — were silently clamped at
//! start time. [`ServerConfig::builder`] mirrors
//! `CharacterizationConfig::builder()` in `hdpm-core`: fluent setters
//! over the defaults, with every invalid combination rejected at
//! [`ServerConfigBuilder::build`] time as a typed [`ConfigError`] naming
//! the constraint.
//!
//! ```
//! use hdpm_server::{ConfigError, ServerConfig};
//! use std::time::Duration;
//!
//! let config = ServerConfig::builder()
//!     .workers(2)
//!     .queue_depth(512)
//!     .deadline(Duration::from_secs(5))
//!     .build()
//!     .unwrap();
//! assert_eq!(config.queue_depth, 512);
//!
//! assert_eq!(
//!     ServerConfig::builder().queue_depth(0).build().unwrap_err(),
//!     ConfigError::ZeroQueueDepth,
//! );
//! ```

use std::net::SocketAddr;
use std::time::Duration;

use hdpm_cluster::ClusterConfig;
use hdpm_core::{EngineOptions, Fidelity};

/// A validated server configuration. Construct via
/// [`ServerConfig::builder`]; the fields are public for reading (the CLI
/// echoes them back, tests assert on them) but the only way to obtain a
/// `ServerConfig` is through the builder's validation.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: SocketAddr,
    /// Worker pool size; 0 resolves to the available parallelism.
    pub workers: usize,
    /// Reactor (event-loop) pool size; 0 resolves to a small fixed pool
    /// derived from the available parallelism (capped at 4). Reactors
    /// only shuffle bytes, so a handful serves tens of thousands of
    /// connections.
    pub reactors: usize,
    /// Bound of the request queue; pushes beyond it shed with an
    /// `overloaded` reply.
    pub queue_depth: usize,
    /// Server-side per-request deadline; `None` disables the check.
    /// Requests may tighten (never extend) it in band.
    pub deadline: Option<Duration>,
    /// Idle reaping: a connection silent this long is shut.
    pub idle_timeout: Duration,
    /// A connection whose peer does not drain its replies within this
    /// window is disconnected.
    pub write_timeout: Duration,
    /// Connection admission bound.
    pub max_connections: usize,
    /// Engine shared by the worker pool.
    pub engine: EngineOptions,
    /// Admin-plane bind address; `None` runs without one.
    pub admin_addr: Option<SocketAddr>,
    /// Per-request tracing (ids echoed in replies, stage timings, flight
    /// recorder, slow-request log).
    pub tracing: bool,
    /// End-to-end latency above which a completed request logs one
    /// `slow_request` line (tracing only).
    pub slow_threshold: Duration,
    /// Cluster membership; `None` runs a standalone node. Requires a
    /// disk-tier engine (`engine.disk_root`), because peer-fetched
    /// artifacts are admitted through the on-disk store.
    pub cluster: Option<ClusterConfig>,
    /// Fidelity floor applied to estimate requests that don't carry
    /// their own: `Full` (the default) preserves the historical
    /// blocking behavior; lower floors let cold specs answer instantly
    /// from the fidelity ladder and upgrade in the background.
    pub fidelity_floor: Fidelity,
}

impl ServerConfig {
    /// A fluent, validating builder starting from the defaults:
    /// loopback ephemeral port, auto-sized worker and reactor pools,
    /// queue depth 256, 30 s deadline, 60 s idle reap, 5 s write
    /// timeout, 256 connections, default engine, no admin plane, tracing
    /// on with a 250 ms slow-request threshold.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig {
                addr: SocketAddr::from(([127, 0, 0, 1], 0)),
                workers: 0,
                reactors: 0,
                queue_depth: 256,
                deadline: Some(Duration::from_secs(30)),
                idle_timeout: Duration::from_secs(60),
                write_timeout: Duration::from_secs(5),
                max_connections: 256,
                engine: EngineOptions::default(),
                admin_addr: None,
                tracing: true,
                slow_threshold: Duration::from_millis(250),
                cluster: None,
                fidelity_floor: Fidelity::Full,
            },
        }
    }
}

impl Default for ServerConfig {
    /// The builder defaults (always valid).
    fn default() -> Self {
        ServerConfig::builder().build().expect("defaults are valid")
    }
}

/// Why a [`ServerConfigBuilder::build`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `queue_depth == 0`: the server could never admit a request.
    ZeroQueueDepth,
    /// `max_connections == 0`: the server could never admit a peer.
    ZeroMaxConnections,
    /// A zero idle timeout would reap every connection instantly.
    ZeroIdleTimeout,
    /// A zero write timeout would disconnect every reply.
    ZeroWriteTimeout,
    /// A zero deadline would time every request out before it ran; use
    /// [`ServerConfigBuilder::no_deadline`] to disable the check instead.
    ZeroDeadline,
    /// The deadline exceeds the idle timeout: the reaper would tear a
    /// connection down while its one pending request was still within
    /// deadline. Carries `(deadline, idle_timeout)`.
    DeadlineExceedsIdleTimeout(Duration, Duration),
    /// Cluster mode without a disk-tier engine: peer-fetched artifacts
    /// are admitted through the on-disk store, so `--models` is
    /// mandatory for cluster members.
    ClusterNeedsDiskStore,
    /// The cluster configuration itself is inconsistent (empty or
    /// duplicate member ids, a peer claiming this node's id, a zero
    /// gossip interval). Carries the description from
    /// `hdpm_cluster::ClusterConfig::validate`.
    InvalidCluster(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroQueueDepth => write!(f, "queue_depth must be at least 1"),
            ConfigError::ZeroMaxConnections => write!(f, "max_connections must be at least 1"),
            ConfigError::ZeroIdleTimeout => write!(f, "idle_timeout must be positive"),
            ConfigError::ZeroWriteTimeout => write!(f, "write_timeout must be positive"),
            ConfigError::ZeroDeadline => {
                write!(
                    f,
                    "deadline must be positive (use no_deadline() to disable)"
                )
            }
            ConfigError::DeadlineExceedsIdleTimeout(deadline, idle) => write!(
                f,
                "deadline ({} ms) exceeds idle_timeout ({} ms): the idle reaper would \
                 cut connections with requests still within deadline",
                deadline.as_millis(),
                idle.as_millis()
            ),
            ConfigError::ClusterNeedsDiskStore => write!(
                f,
                "cluster mode requires a disk-tier engine (--models): peer-fetched \
                 artifacts are admitted through the on-disk store"
            ),
            ConfigError::InvalidCluster(detail) => {
                write!(f, "invalid cluster configuration: {detail}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Fluent builder of [`ServerConfig`], created by
/// [`ServerConfig::builder`]. Setters override one field each;
/// [`ServerConfigBuilder::build`] validates the combination.
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Bind address; port 0 picks an ephemeral port.
    #[must_use]
    pub fn addr(mut self, addr: SocketAddr) -> Self {
        self.config.addr = addr;
        self
    }

    /// Worker pool size; 0 resolves to the available parallelism.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Reactor pool size; 0 auto-sizes (small, capped at 4).
    #[must_use]
    pub fn reactors(mut self, reactors: usize) -> Self {
        self.config.reactors = reactors;
        self
    }

    /// Request queue bound (≥ 1).
    #[must_use]
    pub fn queue_depth(mut self, queue_depth: usize) -> Self {
        self.config.queue_depth = queue_depth;
        self
    }

    /// Server-side per-request deadline (positive, ≤ idle timeout).
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.config.deadline = Some(deadline);
        self
    }

    /// Disable the server-side deadline (in-band request deadlines still
    /// apply).
    #[must_use]
    pub fn no_deadline(mut self) -> Self {
        self.config.deadline = None;
        self
    }

    /// Idle reap window (positive).
    #[must_use]
    pub fn idle_timeout(mut self, idle_timeout: Duration) -> Self {
        self.config.idle_timeout = idle_timeout;
        self
    }

    /// Reply-drain window before a slow consumer is cut (positive).
    #[must_use]
    pub fn write_timeout(mut self, write_timeout: Duration) -> Self {
        self.config.write_timeout = write_timeout;
        self
    }

    /// Connection admission bound (≥ 1).
    #[must_use]
    pub fn max_connections(mut self, max_connections: usize) -> Self {
        self.config.max_connections = max_connections;
        self
    }

    /// Engine options shared by the worker pool.
    #[must_use]
    pub fn engine(mut self, engine: EngineOptions) -> Self {
        self.config.engine = engine;
        self
    }

    /// Serve the admin plane on this address.
    #[must_use]
    pub fn admin_addr(mut self, admin_addr: SocketAddr) -> Self {
        self.config.admin_addr = Some(admin_addr);
        self
    }

    /// Toggle per-request tracing.
    #[must_use]
    pub fn tracing(mut self, tracing: bool) -> Self {
        self.config.tracing = tracing;
        self
    }

    /// Slow-request log threshold.
    #[must_use]
    pub fn slow_threshold(mut self, slow_threshold: Duration) -> Self {
        self.config.slow_threshold = slow_threshold;
        self
    }

    /// Join a cluster: this node's identity and its peers.
    #[must_use]
    pub fn cluster(mut self, cluster: ClusterConfig) -> Self {
        self.config.cluster = Some(cluster);
        self
    }

    /// Fidelity floor for estimate requests without one of their own.
    #[must_use]
    pub fn fidelity_floor(mut self, fidelity_floor: Fidelity) -> Self {
        self.config.fidelity_floor = fidelity_floor;
        self
    }

    /// Validate the assembled configuration.
    ///
    /// # Errors
    ///
    /// The first violated constraint, as a [`ConfigError`].
    pub fn build(self) -> Result<ServerConfig, ConfigError> {
        let c = self.config;
        if c.queue_depth == 0 {
            return Err(ConfigError::ZeroQueueDepth);
        }
        if c.max_connections == 0 {
            return Err(ConfigError::ZeroMaxConnections);
        }
        if c.idle_timeout.is_zero() {
            return Err(ConfigError::ZeroIdleTimeout);
        }
        if c.write_timeout.is_zero() {
            return Err(ConfigError::ZeroWriteTimeout);
        }
        if let Some(deadline) = c.deadline {
            if deadline.is_zero() {
                return Err(ConfigError::ZeroDeadline);
            }
            if deadline > c.idle_timeout {
                return Err(ConfigError::DeadlineExceedsIdleTimeout(
                    deadline,
                    c.idle_timeout,
                ));
            }
        }
        if let Some(cluster) = &c.cluster {
            if c.engine.disk_root.is_none() {
                return Err(ConfigError::ClusterNeedsDiskStore);
            }
            cluster.validate().map_err(ConfigError::InvalidCluster)?;
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_and_match_documented_values() {
        let config = ServerConfig::default();
        assert_eq!(config.queue_depth, 256);
        assert_eq!(config.deadline, Some(Duration::from_secs(30)));
        assert_eq!(config.idle_timeout, Duration::from_secs(60));
        assert_eq!(config.write_timeout, Duration::from_secs(5));
        assert_eq!(config.max_connections, 256);
        assert_eq!(config.workers, 0, "auto");
        assert_eq!(config.reactors, 0, "auto");
        assert!(config.tracing);
        assert!(config.admin_addr.is_none());
        assert_eq!(config.fidelity_floor, Fidelity::Full);
    }

    #[test]
    fn every_setter_lands_on_its_field() {
        let config = ServerConfig::builder()
            .addr(SocketAddr::from(([127, 0, 0, 1], 4321)))
            .workers(3)
            .reactors(2)
            .queue_depth(64)
            .deadline(Duration::from_secs(2))
            .idle_timeout(Duration::from_secs(10))
            .write_timeout(Duration::from_secs(1))
            .max_connections(99)
            .admin_addr(SocketAddr::from(([127, 0, 0, 1], 4322)))
            .tracing(false)
            .slow_threshold(Duration::from_millis(10))
            .fidelity_floor(Fidelity::Analytic)
            .build()
            .unwrap();
        assert_eq!(config.addr.port(), 4321);
        assert_eq!(config.workers, 3);
        assert_eq!(config.reactors, 2);
        assert_eq!(config.queue_depth, 64);
        assert_eq!(config.deadline, Some(Duration::from_secs(2)));
        assert_eq!(config.idle_timeout, Duration::from_secs(10));
        assert_eq!(config.write_timeout, Duration::from_secs(1));
        assert_eq!(config.max_connections, 99);
        assert_eq!(config.admin_addr.unwrap().port(), 4322);
        assert!(!config.tracing);
        assert_eq!(config.slow_threshold, Duration::from_millis(10));
        assert_eq!(config.fidelity_floor, Fidelity::Analytic);
    }

    #[test]
    fn nonsense_combinations_are_typed_errors() {
        assert_eq!(
            ServerConfig::builder().queue_depth(0).build().unwrap_err(),
            ConfigError::ZeroQueueDepth
        );
        assert_eq!(
            ServerConfig::builder()
                .max_connections(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroMaxConnections
        );
        assert_eq!(
            ServerConfig::builder()
                .idle_timeout(Duration::ZERO)
                .build()
                .unwrap_err(),
            ConfigError::ZeroIdleTimeout
        );
        assert_eq!(
            ServerConfig::builder()
                .write_timeout(Duration::ZERO)
                .build()
                .unwrap_err(),
            ConfigError::ZeroWriteTimeout
        );
        assert_eq!(
            ServerConfig::builder()
                .deadline(Duration::ZERO)
                .build()
                .unwrap_err(),
            ConfigError::ZeroDeadline
        );
        assert_eq!(
            ServerConfig::builder()
                .deadline(Duration::from_secs(120))
                .build()
                .unwrap_err(),
            ConfigError::DeadlineExceedsIdleTimeout(
                Duration::from_secs(120),
                Duration::from_secs(60)
            )
        );
    }

    #[test]
    fn cluster_mode_requires_a_disk_store_and_a_sane_member_set() {
        let peers = hdpm_cluster::parse_peers("node2=127.0.0.1:7002").unwrap();
        let cluster = ClusterConfig::new("node1", peers.clone());
        assert_eq!(
            ServerConfig::builder()
                .cluster(cluster.clone())
                .build()
                .unwrap_err(),
            ConfigError::ClusterNeedsDiskStore
        );
        let disk_engine = EngineOptions {
            disk_root: Some(std::path::PathBuf::from("/tmp/models")),
            ..EngineOptions::default()
        };
        let config = ServerConfig::builder()
            .engine(disk_engine.clone())
            .cluster(cluster)
            .build()
            .unwrap();
        assert_eq!(config.cluster.unwrap().node_id, "node1");
        // An inconsistent member set surfaces the cluster crate's message.
        let bad = ClusterConfig::new("node2", peers);
        match ServerConfig::builder()
            .engine(disk_engine)
            .cluster(bad)
            .build()
        {
            Err(ConfigError::InvalidCluster(detail)) => {
                assert!(detail.contains("same id"), "{detail}");
            }
            other => panic!("expected InvalidCluster, got {other:?}"),
        }
    }

    #[test]
    fn no_deadline_lifts_the_deadline_constraints() {
        let config = ServerConfig::builder()
            .no_deadline()
            .idle_timeout(Duration::from_millis(100))
            .build()
            .unwrap();
        assert_eq!(config.deadline, None);
    }

    #[test]
    fn errors_render_actionable_messages() {
        let message = ConfigError::DeadlineExceedsIdleTimeout(
            Duration::from_secs(120),
            Duration::from_secs(60),
        )
        .to_string();
        assert!(message.contains("120000 ms"), "{message}");
        assert!(message.contains("60000 ms"), "{message}");
        assert!(ConfigError::ZeroDeadline
            .to_string()
            .contains("no_deadline"));
    }
}
