//! The JSON-lines request/reply codec shared by `hdpm serve` (stdin) and
//! `hdpm server` (TCP) — one source of truth for the wire format.
//!
//! One request per line, one reply per line. Three operations:
//!
//! * `{"op":"estimate","module":...,"width":...,"data":...}` — analytic
//!   power estimate through the engine cache;
//! * `{"op":"characterize","module":...,"width":...}` — force a model
//!   into the cache and report where it came from;
//! * `{"op":"stats"}` — the engine's counter snapshot.
//!
//! Every failure produces a structured reply
//! `{"ok":false,"error":{"kind":"<kind>","message":"<detail>"}}` and never
//! tears the transport down; [`ErrorKind`] enumerates the kinds. Blank
//! lines are skipped. The transcript in `docs/engine.md` is a golden
//! fixture: both transports must replay it byte-identically
//! (`crates/server/tests/golden.rs`).

use std::io::{BufRead, Write};
use std::sync::Arc;

use hdpm_core::{Fidelity, PowerEngine};
use hdpm_datamodel::{region_model, HdDistribution, WordModel};
use hdpm_netlist::{ModuleKind, ModuleSpec};
use hdpm_streams::{DataType, ALL_DATA_TYPES};
use hdpm_telemetry::{Stage, TraceCtx};
use serde::{Deserialize, Value};

/// Every module kind the protocol accepts, in `hdpm list` order.
pub const ALL_MODULE_KINDS: [ModuleKind; 14] = ModuleKind::ALL;

/// Resolve a module kind by its wire id.
///
/// # Errors
///
/// Returns a message naming the unknown kind.
pub fn module_kind(name: &str) -> Result<ModuleKind, String> {
    ModuleKind::from_id(name).ok_or_else(|| format!("unknown module kind `{name}`"))
}

/// Resolve a data type by name or paper roman numeral.
///
/// # Errors
///
/// Returns a message naming the unknown type.
pub fn data_type(name: &str) -> Result<DataType, String> {
    ALL_DATA_TYPES
        .iter()
        .copied()
        .find(|d| d.name() == name || d.roman() == name)
        .ok_or_else(|| format!("unknown data type `{name}`"))
}

/// One parsed request line. Unknown keys are ignored; absent optional
/// keys fall back to the same defaults as the batch subcommands.
#[derive(Debug, Deserialize)]
pub struct Request {
    /// Operation: `estimate`, `characterize` or `stats`.
    pub op: String,
    /// Module kind id (required by `estimate`/`characterize`).
    pub module: Option<String>,
    /// First operand width (required by `estimate`/`characterize`).
    pub width: Option<usize>,
    /// Second operand width for rectangular modules.
    pub width2: Option<usize>,
    /// Data type of the operand streams (default `random`).
    pub data: Option<String>,
    /// Stream length in cycles (default 2000).
    pub cycles: Option<usize>,
    /// Stream generator seed (default 7).
    pub seed: Option<u64>,
    /// Per-request deadline in milliseconds, honoured by the TCP server
    /// (capped by the server's own deadline); ignored on stdin.
    pub deadline_ms: Option<u64>,
    /// Minimum acceptable fidelity tier for `estimate` (`analytic`,
    /// `regressed` or `full`); absent = the transport's default floor
    /// (`full` on stdin, the `--fidelity-floor` flag on the TCP server).
    pub fidelity_floor: Option<String>,
}

/// Resolve a request's effective fidelity floor against the transport
/// default.
///
/// # Errors
///
/// [`ErrorKind::BadRequest`] naming an unknown floor spelling.
pub fn effective_floor(request: &Request, default: Fidelity) -> Result<Fidelity, RequestError> {
    match request.fidelity_floor.as_deref() {
        None => Ok(default),
        Some(text) => Fidelity::parse(text).ok_or_else(|| {
            (
                ErrorKind::BadRequest,
                format!("unknown fidelity floor `{text}` (expected analytic, regressed or full)"),
            )
        }),
    }
}

/// Classification of a failed request, carried on the wire as
/// `error.kind`. The full failure-semantics table is in `docs/server.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line was not valid JSON.
    Malformed,
    /// The line was not valid UTF-8.
    InvalidUtf8,
    /// Valid JSON that is not a valid request (unknown op, missing or
    /// unresolvable fields).
    BadRequest,
    /// The engine failed to serve the request (netlist construction,
    /// characterization, width mismatch, corrupt artifact ...).
    Engine,
    /// The server shed the request: queue full, connection limit, or
    /// draining. Never emitted by the stdin transport.
    Overloaded,
    /// The request's deadline expired before a worker reached it. Never
    /// emitted by the stdin transport.
    Timeout,
}

impl ErrorKind {
    /// The lower-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Malformed => "malformed",
            ErrorKind::InvalidUtf8 => "invalid_utf8",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Engine => "engine",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Timeout => "timeout",
        }
    }
}

/// A failed request: kind plus human-readable detail.
pub type RequestError = (ErrorKind, String);

/// Build the structured error reply value for a failed request.
pub fn error_value(kind: ErrorKind, message: &str) -> Value {
    Value::Object(vec![
        ("ok".into(), Value::Bool(false)),
        (
            "error".into(),
            Value::Object(vec![
                ("kind".into(), Value::Str(kind.as_str().into())),
                ("message".into(), Value::Str(message.into())),
            ]),
        ),
    ])
}

/// Serialize a reply value to its wire line (without the newline).
pub fn render(reply: &Value) -> String {
    serde_json::to_string(reply).expect("reply values always serialize")
}

/// [`error_value`] pre-rendered to its wire line.
pub fn error_line(kind: ErrorKind, message: &str) -> String {
    render(&error_value(kind, message))
}

/// Append the trace id to a reply value (`"trace":"t…"`), so clients can
/// join a reply against the server's flight recorder and slow-request
/// log. The TCP server attaches this to every reply when tracing is on;
/// the stdin transport never does (its golden transcript is id-free).
pub fn attach_trace(reply: &mut Value, trace_id: &str) {
    if let Value::Object(fields) = reply {
        fields.push(("trace".into(), Value::Str(trace_id.into())));
    }
}

/// [`attach_trace`] applied to an already-rendered reply line: splices
/// `,"trace":"t…"` in before the closing brace. Byte-identical to
/// attaching before rendering (trace ids never need escaping), without
/// re-walking the value — the server's warm path uses this.
pub fn append_trace(line: &mut String, trace_id: &str) {
    debug_assert!(line.ends_with('}'), "replies are JSON objects: {line}");
    line.truncate(line.len() - 1);
    line.reserve(trace_id.len() + 12);
    line.push_str(",\"trace\":\"");
    line.push_str(trace_id);
    line.push_str("\"}");
}

/// [`append_trace`] from the raw 64-bit id: renders the `t…` form
/// straight into the line, skipping the intermediate id string.
pub fn append_trace_id(line: &mut String, id: u64) {
    debug_assert!(line.ends_with('}'), "replies are JSON objects: {line}");
    line.truncate(line.len() - 1);
    line.reserve(29);
    line.push_str(",\"trace\":\"");
    hdpm_telemetry::trace::write_trace_id(line, id);
    line.push_str("\"}");
}

/// Decode one raw line into a [`Request`], classifying failures. Returns
/// `Ok(None)` for blank lines (no reply is owed).
///
/// # Errors
///
/// [`ErrorKind::InvalidUtf8`] for non-UTF-8 bytes, [`ErrorKind::Malformed`]
/// for invalid JSON or a shape mismatch.
pub fn decode(raw: &[u8]) -> Result<Option<Request>, RequestError> {
    let text = std::str::from_utf8(raw).map_err(|_| {
        (
            ErrorKind::InvalidUtf8,
            "request line is not valid UTF-8".to_string(),
        )
    })?;
    if text.trim().is_empty() {
        return Ok(None);
    }
    serde_json::from_str::<Request>(text)
        .map(Some)
        .map_err(|e| (ErrorKind::Malformed, format!("malformed request: {e}")))
}

/// Execute a decoded request against the engine.
///
/// # Errors
///
/// [`ErrorKind::BadRequest`] for unresolvable request fields,
/// [`ErrorKind::Engine`] for engine failures.
pub fn handle(engine: &Arc<PowerEngine>, request: &Request) -> Result<Value, RequestError> {
    handle_traced(engine, request, &mut TraceCtx::disabled())
}

/// [`handle`] with per-stage timing recorded into `trace`: the engine
/// stages (see `PowerEngine::fetch_traced`) plus the input-distribution
/// fit, attributed to [`Stage::Estimate`].
///
/// # Errors
///
/// As for [`handle`].
pub fn handle_traced(
    engine: &Arc<PowerEngine>,
    request: &Request,
    trace: &mut TraceCtx,
) -> Result<Value, RequestError> {
    handle_traced_with_floor(engine, request, Fidelity::Full, trace)
}

/// [`handle_traced`] under a transport-level default fidelity floor
/// (overridable per request via `fidelity_floor`). The TCP server passes
/// its `--fidelity-floor`; the stdin transport always defaults to
/// `full`, keeping its golden transcript semantics.
///
/// # Errors
///
/// As for [`handle`].
pub fn handle_traced_with_floor(
    engine: &Arc<PowerEngine>,
    request: &Request,
    default_floor: Fidelity,
    trace: &mut TraceCtx,
) -> Result<Value, RequestError> {
    match request.op.as_str() {
        "estimate" => op_estimate(engine, request, default_floor, trace),
        "characterize" => op_characterize(engine, request, trace),
        "stats" => Ok(op_stats(engine)),
        other => Err((
            ErrorKind::BadRequest,
            format!("unknown op `{other}` (expected estimate, characterize or stats)"),
        )),
    }
}

/// A short human-readable handle on what a request asked for, used in
/// trace records and the slow-request log: `module/width` (or
/// `module/w1xw2`) when present, empty otherwise.
pub fn request_detail(request: &Request) -> String {
    let Some(module) = request.module.as_deref() else {
        return String::new();
    };
    match (request.width, request.width2) {
        (Some(w1), Some(w2)) => format!("{module}/{w1}x{w2}"),
        (Some(w1), None) => format!("{module}/{w1}"),
        _ => module.to_string(),
    }
}

/// Decode and execute one raw line, rendering the reply. Returns `None`
/// for blank lines. This is the single entry point both transports call.
pub fn handle_line(engine: &Arc<PowerEngine>, raw: &[u8]) -> Option<String> {
    handle_line_with_floor(engine, raw, Fidelity::Full)
}

/// [`handle_line`] under a transport-level default fidelity floor.
pub fn handle_line_with_floor(
    engine: &Arc<PowerEngine>,
    raw: &[u8],
    default_floor: Fidelity,
) -> Option<String> {
    let reply = match decode(raw) {
        Ok(None) => return None,
        Ok(Some(request)) => {
            match handle_traced_with_floor(
                engine,
                &request,
                default_floor,
                &mut TraceCtx::disabled(),
            ) {
                Ok(reply) => reply,
                Err((kind, message)) => error_value(kind, &message),
            }
        }
        Err((kind, message)) => error_value(kind, &message),
    };
    Some(render(&reply))
}

/// The request/reply loop over byte streams: `hdpm serve`'s engine room,
/// also driven in-memory by tests and the golden-transcript replay.
/// Reads raw bytes (not [`BufRead::lines`]) so invalid UTF-8 yields a
/// structured reply instead of an `io::Error` that would end the loop.
/// The default fidelity floor is `full`, preserving the golden
/// transcript; [`serve_lines_with_floor`] lowers it.
///
/// # Errors
///
/// Only transport failures (reading input, writing output) end the loop.
pub fn serve_lines<R: BufRead, W: Write>(
    engine: &Arc<PowerEngine>,
    input: R,
    output: W,
) -> std::io::Result<()> {
    serve_lines_with_floor(engine, Fidelity::Full, input, output)
}

/// [`serve_lines`] with a transport-level default fidelity floor — the
/// engine room of `hdpm serve --fidelity-floor`.
///
/// # Errors
///
/// Only transport failures (reading input, writing output) end the loop.
pub fn serve_lines_with_floor<R: BufRead, W: Write>(
    engine: &Arc<PowerEngine>,
    default_floor: Fidelity,
    mut input: R,
    mut output: W,
) -> std::io::Result<()> {
    let _span = hdpm_telemetry::span("serve.loop");
    let mut raw = Vec::new();
    loop {
        raw.clear();
        if input.read_until(b'\n', &mut raw)? == 0 {
            return Ok(());
        }
        if let Some(reply) = handle_line_with_floor(engine, trim_line(&raw), default_floor) {
            output.write_all(reply.as_bytes())?;
            output.write_all(b"\n")?;
            output.flush()?;
        }
    }
}

/// Strip one trailing `\n` or `\r\n` from a raw line.
pub fn trim_line(raw: &[u8]) -> &[u8] {
    let raw = raw.strip_suffix(b"\n").unwrap_or(raw);
    raw.strip_suffix(b"\r").unwrap_or(raw)
}

/// The module spec a request addresses, when its op has one and the
/// fields resolve — the cluster ensure-model hook keys on this before
/// the request reaches the engine. Unresolvable requests return `None`
/// and fail later with their usual structured error.
pub(crate) fn request_spec(request: &Request) -> Option<ModuleSpec> {
    match request.op.as_str() {
        "estimate" | "characterize" => spec_of(request).ok(),
        _ => None,
    }
}

fn spec_of(request: &Request) -> Result<ModuleSpec, RequestError> {
    let bad = |message: String| (ErrorKind::BadRequest, message);
    let name = request
        .module
        .as_deref()
        .ok_or_else(|| bad("missing field `module`".into()))?;
    let kind = module_kind(name).map_err(bad)?;
    let width = request
        .width
        .ok_or_else(|| bad("missing field `width`".into()))?;
    let width = match request.width2 {
        Some(w2) => hdpm_netlist::ModuleWidth::Rect(width, w2),
        None => hdpm_netlist::ModuleWidth::Uniform(width),
    };
    Ok(ModuleSpec::new(kind, width))
}

fn engine_error(e: impl std::fmt::Display) -> RequestError {
    (ErrorKind::Engine, e.to_string())
}

/// The analytic §6.3 input distribution: generate the named operand
/// streams, fit per-operand region models, convolve. A pure function of
/// its arguments, and ~100 µs of numeric fitting per call — so each
/// serving thread memoizes it. Identical warm `estimate` requests (the
/// common monitoring workload) then cost a lookup instead of a refit,
/// which is what lets the TCP server clear its requests/sec bar.
pub(crate) fn input_distribution(
    dt: DataType,
    operands: usize,
    m1: usize,
    cycles: usize,
    seed: u64,
) -> HdDistribution {
    use hdpm_telemetry as telemetry;
    type DistKey = (&'static str, usize, usize, usize, u64);
    struct DistCache {
        tick: u64,
        map: std::collections::HashMap<DistKey, (u64, HdDistribution)>,
    }
    thread_local! {
        static DISTRIBUTIONS: std::cell::RefCell<DistCache> = std::cell::RefCell::new(DistCache {
            tick: 0,
            map: std::collections::HashMap::new(),
        });
    }
    let key = (dt.name(), operands, m1, cycles, seed);
    DISTRIBUTIONS.with(|cache| {
        let mut cache = cache.borrow_mut();
        cache.tick += 1;
        let tick = cache.tick;
        if let Some((last_used, dist)) = cache.map.get_mut(&key) {
            *last_used = tick;
            telemetry::counter_add("protocol.dist_cache.hit", 1);
            return dist.clone();
        }
        telemetry::counter_add("protocol.dist_cache.miss", 1);
        let streams = dt.generate_operands(operands, m1, cycles, seed);
        let dists: Vec<HdDistribution> = streams
            .iter()
            .map(|w| HdDistribution::from_regions(&region_model(&WordModel::from_words(w, m1))))
            .collect();
        let dist = HdDistribution::convolve_all(&dists);
        // Bounded, one cold entry at a time: evicting the least recently
        // used key keeps the warm working set intact when the 129th
        // distinct key lands, instead of dropping the whole memo and
        // refitting ~100 µs per entry on the next pass over it.
        if cache.map.len() >= 128 {
            if let Some(victim) = cache
                .map
                .iter()
                .min_by_key(|(_, (last_used, _))| *last_used)
                .map(|(k, _)| *k)
            {
                cache.map.remove(&victim);
                telemetry::counter_add("protocol.dist_cache.evict", 1);
            }
        }
        cache.map.insert(key, (tick, dist.clone()));
        dist
    })
}

fn op_estimate(
    engine: &Arc<PowerEngine>,
    request: &Request,
    default_floor: Fidelity,
    trace: &mut TraceCtx,
) -> Result<Value, RequestError> {
    let spec = spec_of(request)?;
    let floor = effective_floor(request, default_floor)?;
    let dt = data_type(request.data.as_deref().unwrap_or("random"))
        .map_err(|m| (ErrorKind::BadRequest, m))?;
    let cycles = request.cycles.unwrap_or(2000);
    let seed = request.seed.unwrap_or(7);

    let (m1, _) = spec.width.operand_widths();
    // The distribution fit is estimation math, so its time (≈100 µs on a
    // per-thread memo miss) lands in the estimate stage.
    let dist = trace.time(Stage::Estimate, || {
        input_distribution(dt, spec.kind.operand_count(), m1, cycles, seed)
    });

    let estimate = engine
        .estimate_with_floor_traced(spec, &dist, floor, trace)
        .map_err(engine_error)?;
    Ok(Value::Object(vec![
        ("ok".into(), Value::Bool(true)),
        ("op".into(), Value::Str("estimate".into())),
        ("module".into(), Value::Str(spec.to_string())),
        ("data".into(), Value::Str(dt.to_string())),
        (
            "charge_per_cycle".into(),
            Value::Float(estimate.charge_per_cycle),
        ),
        ("via_average".into(), Value::Float(estimate.via_average)),
        ("average_hd".into(), Value::Float(estimate.average_hd)),
        ("source".into(), Value::Str(estimate.source.as_str().into())),
        (
            "fidelity".into(),
            Value::Str(estimate.fidelity.as_str().into()),
        ),
        ("confidence".into(), Value::Float(estimate.confidence)),
    ]))
}

fn op_characterize(
    engine: &Arc<PowerEngine>,
    request: &Request,
    trace: &mut TraceCtx,
) -> Result<Value, RequestError> {
    let spec = spec_of(request)?;
    let (characterization, source) = engine.fetch_traced(spec, trace).map_err(engine_error)?;
    Ok(Value::Object(vec![
        ("ok".into(), Value::Bool(true)),
        ("op".into(), Value::Str("characterize".into())),
        ("module".into(), Value::Str(spec.to_string())),
        (
            "input_bits".into(),
            Value::Int(characterization.model.input_bits() as i64),
        ),
        (
            "transitions".into(),
            Value::Int(characterization.transitions as i64),
        ),
        (
            "converged_after".into(),
            match characterization.converged_after {
                Some(patterns) => Value::Int(patterns as i64),
                None => Value::Null,
            },
        ),
        ("source".into(), Value::Str(source.as_str().into())),
        (
            "fidelity".into(),
            Value::Str(Fidelity::Full.as_str().into()),
        ),
    ]))
}

fn op_stats(engine: &Arc<PowerEngine>) -> Value {
    let stats = engine.stats();
    Value::Object(vec![
        ("ok".into(), Value::Bool(true)),
        ("op".into(), Value::Str("stats".into())),
        ("entries".into(), Value::Int(stats.entries as i64)),
        ("capacity".into(), Value::Int(stats.capacity as i64)),
        ("hits".into(), Value::Int(stats.hits as i64)),
        ("misses".into(), Value::Int(stats.misses as i64)),
        ("evictions".into(), Value::Int(stats.evictions as i64)),
        ("disk_hits".into(), Value::Int(stats.disk_hits as i64)),
        (
            "characterizations".into(),
            Value::Int(stats.characterizations as i64),
        ),
        ("coalesced".into(), Value::Int(stats.coalesced as i64)),
        ("inflight".into(), Value::Int(stats.inflight as i64)),
        (
            "analytic_served".into(),
            Value::Int(stats.analytic_served as i64),
        ),
        (
            "regressed_served".into(),
            Value::Int(stats.regressed_served as i64),
        ),
        (
            "upgrades_done".into(),
            Value::Int(stats.upgrades_done as i64),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdpm_core::{CharacterizationConfig, EngineOptions, ShardingConfig};

    #[test]
    fn append_trace_matches_attach_then_render() {
        let id = "t00c0ffee00c0ffee";
        for value in [
            error_value(ErrorKind::Timeout, "deadline exceeded: queued 9 ms"),
            Value::Object(vec![
                ("ok".into(), Value::Bool(true)),
                ("op".into(), Value::Str("stats".into())),
                ("entries".into(), Value::UInt(3)),
            ]),
        ] {
            let mut attached = value.clone();
            attach_trace(&mut attached, id);
            let mut spliced = render(&value);
            append_trace(&mut spliced, id);
            assert_eq!(spliced, render(&attached));
        }
    }

    fn quick_engine() -> Arc<PowerEngine> {
        Arc::new(PowerEngine::new(EngineOptions {
            config: CharacterizationConfig::builder()
                .max_patterns(1500)
                .build()
                .unwrap(),
            sharding: Some(ShardingConfig {
                shards: 4,
                threads: 1,
            }),
            disk_root: None,
            capacity: 8,
        }))
    }

    fn run(engine: &Arc<PowerEngine>, script: &[u8]) -> Vec<String> {
        let mut out = Vec::new();
        serve_lines(engine, script, &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(String::from)
            .collect()
    }

    #[test]
    fn estimate_then_stats_round_trip() {
        let engine = quick_engine();
        let replies = run(
            &engine,
            b"{\"op\":\"characterize\",\"module\":\"ripple_adder\",\"width\":4}\n\
              {\"op\":\"estimate\",\"module\":\"ripple_adder\",\"width\":4,\"data\":\"counter\"}\n\
              {\"op\":\"stats\"}\n",
        );
        assert_eq!(replies.len(), 3);
        assert!(replies[0].contains("\"ok\":true"));
        assert!(replies[0].contains("\"source\":\"fresh\""));
        assert!(replies[1].contains("\"source\":\"memory\""));
        assert!(replies[1].contains("charge_per_cycle"));
        assert!(replies[2].contains("\"characterizations\":1"));
        assert!(replies[2].contains("\"inflight\":0"));
    }

    #[test]
    fn failures_are_structured_and_do_not_stop_the_loop() {
        let engine = quick_engine();
        let replies = run(
            &engine,
            b"not json\n\
              {\"op\":\"transmogrify\"}\n\
              {\"op\":\"estimate\",\"module\":\"warp_core\",\"width\":4}\n\
              {\"op\":\"estimate\",\"module\":\"ripple_adder\"}\n\
              \n\
              {\"op\":\"stats\"}\n",
        );
        assert_eq!(replies.len(), 5, "blank lines skipped, errors replied");
        assert!(replies[0].contains("\"ok\":false"));
        assert!(replies[0].contains("\"kind\":\"malformed\""));
        assert!(replies[0].contains("malformed request"));
        assert!(replies[1].contains("\"kind\":\"bad_request\""));
        assert!(replies[1].contains("unknown op `transmogrify`"));
        assert!(replies[2].contains("unknown module kind `warp_core`"));
        assert!(replies[3].contains("missing field `width`"));
        assert!(replies[4].contains("\"ok\":true"));
    }

    #[test]
    fn invalid_utf8_lines_reply_and_continue() {
        let engine = quick_engine();
        let mut script: Vec<u8> = Vec::new();
        script.extend_from_slice(b"{\"op\":\"stats\"}\n");
        script.extend_from_slice(&[0xFF, 0xFE, b'{', 0x80, b'\n']);
        script.extend_from_slice(b"{\"op\":\"stats\"}\n");
        let replies = run(&engine, &script);
        assert_eq!(replies.len(), 3, "the bad line answered, the loop alive");
        assert!(replies[0].contains("\"ok\":true"));
        assert!(replies[1].contains("\"kind\":\"invalid_utf8\""));
        assert!(replies[1].contains("not valid UTF-8"));
        assert!(replies[2].contains("\"ok\":true"));
    }

    #[test]
    fn engine_failures_are_distinguished_from_bad_requests() {
        let engine = quick_engine();
        // Width 1 csa_multiplier fails netlist construction inside the
        // engine — a well-formed request the engine cannot serve.
        let replies = run(
            &engine,
            b"{\"op\":\"characterize\",\"module\":\"csa_multiplier\",\"width\":1}\n",
        );
        assert!(replies[0].contains("\"kind\":\"engine\""), "{}", replies[0]);
    }

    #[test]
    fn crlf_lines_are_tolerated() {
        let engine = quick_engine();
        let replies = run(&engine, b"{\"op\":\"stats\"}\r\n");
        assert!(replies[0].contains("\"ok\":true"));
    }

    #[test]
    fn replies_are_deterministic_for_a_fresh_engine() {
        let script: &[u8] =
            b"{\"op\":\"estimate\",\"module\":\"ripple_adder\",\"width\":4,\"data\":\"speech\"}\n\
              {\"op\":\"stats\"}\n";
        assert_eq!(run(&quick_engine(), script), run(&quick_engine(), script));
    }

    #[test]
    fn default_floor_replies_are_labeled_full() {
        let engine = quick_engine();
        let replies = run(
            &engine,
            b"{\"op\":\"estimate\",\"module\":\"ripple_adder\",\"width\":4}\n",
        );
        assert!(
            replies[0].contains("\"fidelity\":\"full\""),
            "{}",
            replies[0]
        );
        assert!(replies[0].contains("\"confidence\":1"), "{}", replies[0]);
    }

    #[test]
    fn per_request_floor_serves_an_instant_analytic_answer() {
        let engine = quick_engine();
        let replies = run(
            &engine,
            b"{\"op\":\"estimate\",\"module\":\"ripple_adder\",\"width\":4,\"fidelity_floor\":\"analytic\"}\n",
        );
        assert!(
            replies[0].contains("\"fidelity\":\"analytic\""),
            "{}",
            replies[0]
        );
        assert!(
            replies[0].contains("\"source\":\"analytic\""),
            "{}",
            replies[0]
        );
    }

    #[test]
    fn unknown_floor_spellings_are_bad_requests() {
        let engine = quick_engine();
        let replies = run(
            &engine,
            b"{\"op\":\"estimate\",\"module\":\"ripple_adder\",\"width\":4,\"fidelity_floor\":\"fast\"}\n",
        );
        assert!(
            replies[0].contains("\"kind\":\"bad_request\""),
            "{}",
            replies[0]
        );
        assert!(
            replies[0].contains("unknown fidelity floor `fast`"),
            "{}",
            replies[0]
        );
    }

    #[test]
    fn characterize_replies_are_labeled_full_fidelity() {
        let engine = quick_engine();
        let replies = run(
            &engine,
            b"{\"op\":\"characterize\",\"module\":\"ripple_adder\",\"width\":4}\n",
        );
        assert!(
            replies[0].contains("\"fidelity\":\"full\""),
            "{}",
            replies[0]
        );
    }

    #[test]
    fn stats_reports_the_fidelity_counters() {
        let engine = quick_engine();
        let replies = run(&engine, b"{\"op\":\"stats\"}\n");
        for field in ["analytic_served", "regressed_served", "upgrades_done"] {
            assert!(replies[0].contains(field), "{}", replies[0]);
        }
    }
}
