//! Protocol v2: length-prefixed binary frames with request ids — the
//! multiplexed wire format of the TCP server.
//!
//! v1 (JSON lines, [`crate::protocol`]) has no request ids, so a
//! per-connection sequencer must hold replies until their predecessors
//! are written and one slow characterization stalls every pipelined
//! request behind it. v2 puts an id, an opcode and a per-request
//! deadline **in band**, so workers answer out of order and clients
//! correlate by id.
//!
//! # Negotiation
//!
//! A v2 client opens with the 8-byte preamble [`MAGIC`]
//! (`\0HDPMv2\n`). Its first byte is NUL, which can never begin a v1
//! JSON-lines request, so the server decides the protocol from the very
//! first byte received: `0x00` → v2 frames, anything else → v1 compat
//! (byte-identical to the historical server, golden fixtures included).
//! The server sends no banner in either mode; a v2 client simply starts
//! framing after the preamble.
//!
//! # Frame layout (both directions, little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     len    — payload length in bytes (≤ MAX_PAYLOAD)
//! 4       8     id     — request id, echoed verbatim in the reply
//! 12      1     op     — request: opcode; reply: status (0 = ok)
//! 13      4     extra  — request: deadline_ms (0 = none);
//!                        reply: flags (bit 0 = FLAG_LATE)
//! 17      len   payload
//! ```
//!
//! Request payloads are fixed-layout binary (see the `encode_*_request`
//! helpers); ok-reply payloads are op-specific binary records the client
//! decodes by remembering which op it sent under that id; error-reply
//! payloads are the UTF-8 error message, with the [`ErrorKind`] carried
//! as the status byte. Full field tables: `docs/protocol.md`.

use hdpm_core::{CacheSource, EngineStats, Estimate, Fidelity};
use hdpm_netlist::{ModuleKind, ModuleSpec, ModuleWidth};
use hdpm_streams::{DataType, ALL_DATA_TYPES};

use crate::protocol::ErrorKind;

/// The v2 preamble a client writes immediately after connecting. First
/// byte NUL: unambiguous against any v1 JSON-lines opener.
pub const MAGIC: [u8; 8] = *b"\0HDPMv2\n";

/// Bytes of a frame header (`len`, `id`, `op`, `extra`).
pub const HEADER_LEN: usize = 17;

/// Upper bound on a frame payload; a peer announcing more is protocol
/// abuse and the connection is torn down.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Reply flag: the request's in-band deadline expired while it was
/// executing, and this is the full (late) answer rather than a timeout.
/// See `docs/protocol.md` § deadline semantics.
pub const FLAG_LATE: u32 = 1;

/// Reply status: success (the payload is the op-specific record).
pub const STATUS_OK: u8 = 0;

/// v2 request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Analytic power estimate (payload: [`EstimateParams`]).
    Estimate = 1,
    /// Force a model into the cache (payload: [`CharacterizeParams`]).
    Characterize = 2,
    /// Engine counter snapshot (empty payload).
    Stats = 3,
    /// Liveness no-op (empty payload, empty ok reply).
    Ping = 4,
    /// Cluster peer-fetch: stream a stored artifact's envelope bytes
    /// verbatim (payload: 5-byte spec; ok reply: the envelope, or empty
    /// when the artifact is not on disk).
    FetchModel = 5,
    /// Cluster presence probe (payload: 5-byte spec; ok reply: one
    /// [`HaveModelReply`] byte).
    HaveModel = 6,
    /// Cluster warm-key gossip: exchange hottest specs (payload and ok
    /// reply: a warm-keys list, see [`encode_warm_keys`]).
    WarmKeys = 7,
}

impl Opcode {
    /// Decode a wire opcode byte.
    pub fn from_u8(op: u8) -> Option<Opcode> {
        match op {
            1 => Some(Opcode::Estimate),
            2 => Some(Opcode::Characterize),
            3 => Some(Opcode::Stats),
            4 => Some(Opcode::Ping),
            5 => Some(Opcode::FetchModel),
            6 => Some(Opcode::HaveModel),
            7 => Some(Opcode::WarmKeys),
            _ => None,
        }
    }

    /// The v1 `op` string this opcode corresponds to (trace records and
    /// the slow-request log keep using the v1 names).
    pub fn as_str(self) -> &'static str {
        match self {
            Opcode::Estimate => "estimate",
            Opcode::Characterize => "characterize",
            Opcode::Stats => "stats",
            Opcode::Ping => "ping",
            Opcode::FetchModel => "fetch-model",
            Opcode::HaveModel => "have-model",
            Opcode::WarmKeys => "warm-keys",
        }
    }
}

/// Map an [`ErrorKind`] to its reply status byte.
pub fn status_of(kind: ErrorKind) -> u8 {
    match kind {
        ErrorKind::Malformed => 1,
        ErrorKind::InvalidUtf8 => 2,
        ErrorKind::BadRequest => 3,
        ErrorKind::Engine => 4,
        ErrorKind::Overloaded => 5,
        ErrorKind::Timeout => 6,
    }
}

/// The [`ErrorKind`] behind a non-ok reply status byte.
pub fn kind_of(status: u8) -> Option<ErrorKind> {
    match status {
        1 => Some(ErrorKind::Malformed),
        2 => Some(ErrorKind::InvalidUtf8),
        3 => Some(ErrorKind::BadRequest),
        4 => Some(ErrorKind::Engine),
        5 => Some(ErrorKind::Overloaded),
        6 => Some(ErrorKind::Timeout),
        _ => None,
    }
}

/// Wire code of a model source (reply payloads). `5` marks a reply
/// served from the server's per-thread reply memo — indistinguishable
/// from a memory hit in content, distinguishable on the wire so
/// benchmarks and tests can see the cache tier.
pub fn source_code(source: CacheSource) -> u8 {
    match source {
        CacheSource::Memory => 1,
        CacheSource::Disk => 2,
        CacheSource::Fresh => 3,
        CacheSource::Coalesced => 4,
        CacheSource::Analytic => 6,
        CacheSource::Regressed => 7,
    }
}

/// Source code of a reply served from the per-thread reply memo.
pub const SOURCE_MEMO: u8 = 5;

/// The v1 source string behind a reply source code.
pub fn source_str(code: u8) -> Option<&'static str> {
    match code {
        1 => Some("memory"),
        2 => Some("disk"),
        3 => Some("fresh"),
        4 => Some("coalesced"),
        5 => Some("memo"),
        6 => Some("analytic"),
        7 => Some("regressed"),
        _ => None,
    }
}

/// One decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Payload length in bytes.
    pub len: u32,
    /// Request id (echoed in the reply).
    pub id: u64,
    /// Request opcode, or reply status.
    pub op: u8,
    /// Request deadline_ms (0 = none), or reply flags.
    pub extra: u32,
}

/// Decode the 17 header bytes. Infallible at this layer; `len` is the
/// caller's to validate against [`MAX_PAYLOAD`].
pub fn decode_header(raw: &[u8; HEADER_LEN]) -> FrameHeader {
    FrameHeader {
        len: u32::from_le_bytes(raw[0..4].try_into().expect("4 bytes")),
        id: u64::from_le_bytes(raw[4..12].try_into().expect("8 bytes")),
        op: raw[12],
        extra: u32::from_le_bytes(raw[13..17].try_into().expect("4 bytes")),
    }
}

/// Append one frame (header + payload) to `out`.
pub fn encode_frame(out: &mut Vec<u8>, id: u64, op: u8, extra: u32, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_PAYLOAD as usize);
    out.reserve(HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&id.to_le_bytes());
    out.push(op);
    out.extend_from_slice(&extra.to_le_bytes());
    out.extend_from_slice(payload);
}

// --- estimate ----------------------------------------------------------

/// Decoded payload of an [`Opcode::Estimate`] request (19 bytes on the
/// wire: module `u8`, m1 `u16`, m2 `u16` (0 = uniform), data `u8`,
/// cycles `u32`, seed `u64`, fidelity floor `u8` with 0 = server
/// default). Pre-fidelity 18-byte payloads are still accepted and read
/// as "server default".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EstimateParams {
    /// Module under estimation.
    pub spec: ModuleSpec,
    /// Operand stream statistics.
    pub data: DataType,
    /// Stream length in cycles.
    pub cycles: u32,
    /// Stream generator seed.
    pub seed: u64,
    /// Minimum fidelity tier the client accepts; `None` defers to the
    /// server's configured floor.
    pub floor: Option<Fidelity>,
}

/// Wire size of an estimate request payload.
pub const ESTIMATE_REQ_LEN: usize = 19;

/// Wire size of a pre-fidelity estimate request (no floor byte);
/// accepted for compatibility and treated as floor = server default.
pub const LEGACY_ESTIMATE_REQ_LEN: usize = 18;

fn module_code(kind: ModuleKind) -> u8 {
    // Position in the stable `ModuleKind::ALL` order (the `hdpm list`
    // order); fits u8 by construction (14 kinds).
    ModuleKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("every kind is in ALL") as u8
}

fn module_from_code(code: u8) -> Option<ModuleKind> {
    ModuleKind::ALL.get(code as usize).copied()
}

fn data_code(data: DataType) -> u8 {
    ALL_DATA_TYPES
        .iter()
        .position(|d| *d == data)
        .expect("every data type is in ALL_DATA_TYPES") as u8
}

fn data_from_code(code: u8) -> Option<DataType> {
    ALL_DATA_TYPES.get(code as usize).copied()
}

fn spec_bytes(spec: ModuleSpec) -> [u8; 5] {
    let (m1, m2) = match spec.width {
        ModuleWidth::Uniform(m) => (m, 0usize),
        ModuleWidth::Rect(m1, m2) => (m1, m2),
    };
    let mut out = [0u8; 5];
    out[0] = module_code(spec.kind);
    out[1..3].copy_from_slice(&(m1.min(u16::MAX as usize) as u16).to_le_bytes());
    out[3..5].copy_from_slice(&(m2.min(u16::MAX as usize) as u16).to_le_bytes());
    out
}

fn spec_from_bytes(raw: &[u8]) -> Result<ModuleSpec, String> {
    let kind = module_from_code(raw[0]).ok_or_else(|| format!("unknown module code {}", raw[0]))?;
    let m1 = u16::from_le_bytes(raw[1..3].try_into().expect("2 bytes")) as usize;
    let m2 = u16::from_le_bytes(raw[3..5].try_into().expect("2 bytes")) as usize;
    let width = if m2 == 0 {
        ModuleWidth::Uniform(m1)
    } else {
        ModuleWidth::Rect(m1, m2)
    };
    Ok(ModuleSpec::new(kind, width))
}

/// Render an estimate request payload.
pub fn encode_estimate_request(params: &EstimateParams) -> [u8; ESTIMATE_REQ_LEN] {
    let mut out = [0u8; ESTIMATE_REQ_LEN];
    out[0..5].copy_from_slice(&spec_bytes(params.spec));
    out[5] = data_code(params.data);
    out[6..10].copy_from_slice(&params.cycles.to_le_bytes());
    out[10..18].copy_from_slice(&params.seed.to_le_bytes());
    out[18] = params.floor.map_or(0, Fidelity::code);
    out
}

/// Decode an estimate request payload (current 19-byte or legacy
/// 18-byte layout).
///
/// # Errors
///
/// A message naming the malformed field (wrong length, unknown module,
/// data or fidelity code) — replied as [`ErrorKind::BadRequest`].
pub fn decode_estimate_request(payload: &[u8]) -> Result<EstimateParams, String> {
    if payload.len() != ESTIMATE_REQ_LEN && payload.len() != LEGACY_ESTIMATE_REQ_LEN {
        return Err(format!(
            "estimate payload must be {ESTIMATE_REQ_LEN} bytes ({LEGACY_ESTIMATE_REQ_LEN} legacy), got {}",
            payload.len()
        ));
    }
    let spec = spec_from_bytes(&payload[0..5])?;
    let data =
        data_from_code(payload[5]).ok_or_else(|| format!("unknown data code {}", payload[5]))?;
    let floor = match payload.get(18).copied().unwrap_or(0) {
        0 => None,
        code => {
            Some(Fidelity::from_code(code).ok_or_else(|| format!("unknown fidelity code {code}"))?)
        }
    };
    Ok(EstimateParams {
        spec,
        data,
        cycles: u32::from_le_bytes(payload[6..10].try_into().expect("4 bytes")),
        seed: u64::from_le_bytes(payload[10..18].try_into().expect("8 bytes")),
        floor,
    })
}

/// Wire size of an estimate ok-reply payload (3 × f64, source byte,
/// fidelity byte, confidence f64).
pub const ESTIMATE_REPLY_LEN: usize = 34;

/// Byte offset of the source code in an estimate ok reply — the one
/// byte the server's reply memo rewrites to [`SOURCE_MEMO`].
pub const ESTIMATE_REPLY_SOURCE_OFFSET: usize = 24;

/// Render an estimate ok-reply payload. `source` is a wire source code
/// ([`source_code`] or [`SOURCE_MEMO`]); fidelity and confidence come
/// from the estimate itself.
pub fn encode_estimate_reply(estimate: &Estimate, source: u8) -> [u8; ESTIMATE_REPLY_LEN] {
    let mut out = [0u8; ESTIMATE_REPLY_LEN];
    out[0..8].copy_from_slice(&estimate.charge_per_cycle.to_le_bytes());
    out[8..16].copy_from_slice(&estimate.via_average.to_le_bytes());
    out[16..24].copy_from_slice(&estimate.average_hd.to_le_bytes());
    out[24] = source;
    out[25] = estimate.fidelity.code();
    out[26..34].copy_from_slice(&estimate.confidence.to_le_bytes());
    out
}

/// A decoded estimate ok reply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateReply {
    /// Expected charge per cycle under the full Hd distribution.
    pub charge_per_cycle: f64,
    /// Charge interpolated at the average Hd only.
    pub via_average: f64,
    /// The average Hd of the queried distribution.
    pub average_hd: f64,
    /// Wire source code (see [`source_str`]).
    pub source: u8,
    /// Fidelity tier of the answer.
    pub fidelity: Fidelity,
    /// Confidence in `[0, 1]` (1.0 for full fidelity).
    pub confidence: f64,
}

/// Decode an estimate ok-reply payload.
///
/// # Errors
///
/// Wrong payload length or an unassigned fidelity code.
pub fn decode_estimate_reply(payload: &[u8]) -> Result<EstimateReply, String> {
    if payload.len() != ESTIMATE_REPLY_LEN {
        return Err(format!(
            "estimate reply must be {ESTIMATE_REPLY_LEN} bytes, got {}",
            payload.len()
        ));
    }
    let fidelity = Fidelity::from_code(payload[25])
        .ok_or_else(|| format!("unknown fidelity code {}", payload[25]))?;
    Ok(EstimateReply {
        charge_per_cycle: f64::from_le_bytes(payload[0..8].try_into().expect("8 bytes")),
        via_average: f64::from_le_bytes(payload[8..16].try_into().expect("8 bytes")),
        average_hd: f64::from_le_bytes(payload[16..24].try_into().expect("8 bytes")),
        source: payload[24],
        fidelity,
        confidence: f64::from_le_bytes(payload[26..34].try_into().expect("8 bytes")),
    })
}

// --- characterize ------------------------------------------------------

/// Decoded payload of an [`Opcode::Characterize`] request (5 bytes:
/// module `u8`, m1 `u16`, m2 `u16`, 0 = uniform).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CharacterizeParams {
    /// Module to characterize into the cache.
    pub spec: ModuleSpec,
}

/// Wire size of a characterize request payload.
pub const CHARACTERIZE_REQ_LEN: usize = 5;

/// Render a characterize request payload.
pub fn encode_characterize_request(params: &CharacterizeParams) -> [u8; CHARACTERIZE_REQ_LEN] {
    spec_bytes(params.spec)
}

/// Decode a characterize request payload.
///
/// # Errors
///
/// A message naming the malformed field.
pub fn decode_characterize_request(payload: &[u8]) -> Result<CharacterizeParams, String> {
    if payload.len() != CHARACTERIZE_REQ_LEN {
        return Err(format!(
            "characterize payload must be {CHARACTERIZE_REQ_LEN} bytes, got {}",
            payload.len()
        ));
    }
    Ok(CharacterizeParams {
        spec: spec_from_bytes(payload)?,
    })
}

/// A decoded characterize ok reply (21 bytes: input_bits `u32`,
/// transitions `u64`, converged_after `u64` with `u64::MAX` = never,
/// source `u8`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CharacterizeReply {
    /// Input bit count of the characterized model.
    pub input_bits: u32,
    /// Transitions simulated during characterization.
    pub transitions: u64,
    /// Patterns until convergence, `None` when the pattern budget ran
    /// out first.
    pub converged_after: Option<u64>,
    /// Wire source code (see [`source_str`]).
    pub source: u8,
}

/// Wire size of a characterize ok-reply payload.
pub const CHARACTERIZE_REPLY_LEN: usize = 21;

/// Render a characterize ok-reply payload.
pub fn encode_characterize_reply(reply: &CharacterizeReply) -> [u8; CHARACTERIZE_REPLY_LEN] {
    let mut out = [0u8; CHARACTERIZE_REPLY_LEN];
    out[0..4].copy_from_slice(&reply.input_bits.to_le_bytes());
    out[4..12].copy_from_slice(&reply.transitions.to_le_bytes());
    out[12..20].copy_from_slice(&reply.converged_after.unwrap_or(u64::MAX).to_le_bytes());
    out[20] = reply.source;
    out
}

/// Decode a characterize ok-reply payload.
///
/// # Errors
///
/// Wrong payload length.
pub fn decode_characterize_reply(payload: &[u8]) -> Result<CharacterizeReply, String> {
    if payload.len() != CHARACTERIZE_REPLY_LEN {
        return Err(format!(
            "characterize reply must be {CHARACTERIZE_REPLY_LEN} bytes, got {}",
            payload.len()
        ));
    }
    let converged = u64::from_le_bytes(payload[12..20].try_into().expect("8 bytes"));
    Ok(CharacterizeReply {
        input_bits: u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes")),
        transitions: u64::from_le_bytes(payload[4..12].try_into().expect("8 bytes")),
        converged_after: (converged != u64::MAX).then_some(converged),
        source: payload[20],
    })
}

// --- cluster: fetch-model / have-model / warm-keys ---------------------

/// Wire size of a fetch-model or have-model request payload (the 5-byte
/// spec encoding shared with characterize requests).
pub const SPEC_REQ_LEN: usize = 5;

/// Render a fetch-model / have-model request payload (a bare spec).
pub fn encode_spec_request(spec: ModuleSpec) -> [u8; SPEC_REQ_LEN] {
    spec_bytes(spec)
}

/// Decode a fetch-model / have-model request payload.
///
/// # Errors
///
/// A message naming the malformed field.
pub fn decode_spec_request(payload: &[u8]) -> Result<ModuleSpec, String> {
    if payload.len() != SPEC_REQ_LEN {
        return Err(format!(
            "spec payload must be {SPEC_REQ_LEN} bytes, got {}",
            payload.len()
        ));
    }
    spec_from_bytes(payload)
}

/// An [`Opcode::HaveModel`] ok reply: whether (and where) the probed
/// node holds the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum HaveModelReply {
    /// Not present in either tier.
    Absent = 0,
    /// Present (memory or disk) and fetchable.
    Present = 1,
}

/// Render a have-model ok-reply payload.
pub fn encode_have_model_reply(reply: HaveModelReply) -> [u8; 1] {
    [reply as u8]
}

/// Decode a have-model ok-reply payload.
///
/// # Errors
///
/// Wrong payload length or an unknown presence byte.
pub fn decode_have_model_reply(payload: &[u8]) -> Result<HaveModelReply, String> {
    match payload {
        [0] => Ok(HaveModelReply::Absent),
        [1] => Ok(HaveModelReply::Present),
        [b] => Err(format!("unknown have-model byte {b}")),
        _ => Err(format!(
            "have-model reply must be 1 byte, got {}",
            payload.len()
        )),
    }
}

/// Most specs one warm-keys frame may carry; senders truncate, receivers
/// reject (a bigger list is protocol abuse, not load).
pub const WARM_KEYS_MAX: usize = 256;

/// Render a warm-keys list (request and ok reply share the layout):
/// count `u16` followed by `count` 5-byte specs. Lists longer than
/// [`WARM_KEYS_MAX`] are truncated — warm keys are ordered hottest
/// first, so truncation drops the coldest.
pub fn encode_warm_keys(specs: &[ModuleSpec]) -> Vec<u8> {
    let take = specs.len().min(WARM_KEYS_MAX);
    let mut out = Vec::with_capacity(2 + take * SPEC_REQ_LEN);
    out.extend_from_slice(&(take as u16).to_le_bytes());
    for spec in &specs[..take] {
        out.extend_from_slice(&spec_bytes(*spec));
    }
    out
}

/// Decode a warm-keys list.
///
/// # Errors
///
/// A message naming the malformed field (short payload, count/length
/// disagreement, oversized list, unknown module code).
pub fn decode_warm_keys(payload: &[u8]) -> Result<Vec<ModuleSpec>, String> {
    if payload.len() < 2 {
        return Err(format!(
            "warm-keys payload must be at least 2 bytes, got {}",
            payload.len()
        ));
    }
    let count = u16::from_le_bytes(payload[0..2].try_into().expect("2 bytes")) as usize;
    if count > WARM_KEYS_MAX {
        return Err(format!(
            "warm-keys list of {count} specs exceeds the cap of {WARM_KEYS_MAX}"
        ));
    }
    let body = &payload[2..];
    if body.len() != count * SPEC_REQ_LEN {
        return Err(format!(
            "warm-keys body of {} bytes does not match {count} specs",
            body.len()
        ));
    }
    body.chunks_exact(SPEC_REQ_LEN)
        .map(spec_from_bytes)
        .collect()
}

// --- stats -------------------------------------------------------------

/// Wire size of a stats ok-reply payload (12 × u64 in [`EngineStats`]
/// field order).
pub const STATS_REPLY_LEN: usize = 96;

/// Render a stats ok-reply payload.
pub fn encode_stats_reply(stats: &EngineStats) -> [u8; STATS_REPLY_LEN] {
    let fields: [u64; 12] = [
        stats.entries as u64,
        stats.capacity as u64,
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.disk_hits,
        stats.characterizations,
        stats.coalesced,
        stats.inflight as u64,
        stats.analytic_served,
        stats.regressed_served,
        stats.upgrades_done,
    ];
    let mut out = [0u8; STATS_REPLY_LEN];
    for (slot, field) in out.chunks_exact_mut(8).zip(fields) {
        slot.copy_from_slice(&field.to_le_bytes());
    }
    out
}

/// A decoded stats ok reply, mirroring [`EngineStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsReply {
    /// Live entries in the memory tier.
    pub entries: u64,
    /// Capacity bound of the memory tier.
    pub capacity: u64,
    /// Memory-tier hits.
    pub hits: u64,
    /// Memory-tier misses.
    pub misses: u64,
    /// Memory-tier evictions.
    pub evictions: u64,
    /// Misses served from disk.
    pub disk_hits: u64,
    /// Characterizations executed.
    pub characterizations: u64,
    /// Requests coalesced onto in-flight characterizations.
    pub coalesced: u64,
    /// Characterizations currently in flight.
    pub inflight: u64,
    /// Estimates answered by the tier-A analytic model.
    pub analytic_served: u64,
    /// Estimates answered by a tier-B sibling regression.
    pub regressed_served: u64,
    /// Background fidelity upgrades completed.
    pub upgrades_done: u64,
}

/// Decode a stats ok-reply payload.
///
/// # Errors
///
/// Wrong payload length.
pub fn decode_stats_reply(payload: &[u8]) -> Result<StatsReply, String> {
    if payload.len() != STATS_REPLY_LEN {
        return Err(format!(
            "stats reply must be {STATS_REPLY_LEN} bytes, got {}",
            payload.len()
        ));
    }
    let mut fields = [0u64; 12];
    for (field, slot) in fields.iter_mut().zip(payload.chunks_exact(8)) {
        *field = u64::from_le_bytes(slot.try_into().expect("8 bytes"));
    }
    Ok(StatsReply {
        entries: fields[0],
        capacity: fields[1],
        hits: fields[2],
        misses: fields[3],
        evictions: fields[4],
        disk_hits: fields[5],
        characterizations: fields[6],
        coalesced: fields[7],
        inflight: fields[8],
        analytic_served: fields[9],
        regressed_served: fields[10],
        upgrades_done: fields[11],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magic_starts_with_nul_and_cannot_be_v1() {
        assert_eq!(MAGIC.len(), 8);
        assert_eq!(MAGIC[0], 0, "first byte decides the protocol");
        // No valid v1 opener starts with NUL: v1 requests are JSON text.
        assert!(std::str::from_utf8(&MAGIC[1..]).is_ok());
    }

    #[test]
    fn frame_header_round_trips() {
        let mut out = Vec::new();
        encode_frame(&mut out, 0xDEAD_BEEF_CAFE, 2, 1500, b"payload");
        assert_eq!(out.len(), HEADER_LEN + 7);
        let header = decode_header(out[..HEADER_LEN].try_into().unwrap());
        assert_eq!(
            header,
            FrameHeader {
                len: 7,
                id: 0xDEAD_BEEF_CAFE,
                op: 2,
                extra: 1500,
            }
        );
        assert_eq!(&out[HEADER_LEN..], b"payload");
    }

    #[test]
    fn estimate_request_round_trips_uniform_and_rect() {
        for spec in [
            ModuleSpec::new(ModuleKind::RippleAdder, ModuleWidth::Uniform(16)),
            ModuleSpec::new(ModuleKind::CsaMultiplier, ModuleWidth::Rect(12, 8)),
        ] {
            for floor in [None, Some(Fidelity::Analytic), Some(Fidelity::Full)] {
                let params = EstimateParams {
                    spec,
                    data: DataType::Speech,
                    cycles: 2000,
                    seed: 7,
                    floor,
                };
                let wire = encode_estimate_request(&params);
                assert_eq!(decode_estimate_request(&wire).unwrap(), params);
            }
        }
    }

    #[test]
    fn legacy_18_byte_estimate_requests_decode_with_default_floor() {
        let params = EstimateParams {
            spec: ModuleSpec::new(ModuleKind::RippleAdder, ModuleWidth::Uniform(8)),
            data: DataType::Random,
            cycles: 512,
            seed: 11,
            floor: None,
        };
        let wire = encode_estimate_request(&params);
        let legacy = &wire[..LEGACY_ESTIMATE_REQ_LEN];
        assert_eq!(decode_estimate_request(legacy).unwrap(), params);
        let mut bad_floor = wire;
        bad_floor[18] = 9;
        assert!(decode_estimate_request(&bad_floor)
            .unwrap_err()
            .contains("unknown fidelity code 9"));
    }

    #[test]
    fn estimate_reply_round_trips() {
        let estimate = Estimate {
            charge_per_cycle: 123.456,
            via_average: 120.0,
            average_hd: 3.25,
            source: CacheSource::Fresh,
            fidelity: Fidelity::Full,
            confidence: 1.0,
        };
        let wire = encode_estimate_reply(&estimate, source_code(estimate.source));
        assert_eq!(
            wire[ESTIMATE_REPLY_SOURCE_OFFSET],
            source_code(CacheSource::Fresh)
        );
        let decoded = decode_estimate_reply(&wire).unwrap();
        assert_eq!(decoded.charge_per_cycle, estimate.charge_per_cycle);
        assert_eq!(decoded.via_average, estimate.via_average);
        assert_eq!(decoded.average_hd, estimate.average_hd);
        assert_eq!(source_str(decoded.source), Some("fresh"));
        assert_eq!(decoded.fidelity, Fidelity::Full);
        assert_eq!(decoded.confidence, 1.0);
    }

    #[test]
    fn tiered_estimate_replies_carry_their_fidelity() {
        let estimate = Estimate {
            charge_per_cycle: 4.5,
            via_average: 4.4,
            average_hd: 2.0,
            source: CacheSource::Analytic,
            fidelity: Fidelity::Analytic,
            confidence: 0.25,
        };
        let wire = encode_estimate_reply(&estimate, source_code(estimate.source));
        let decoded = decode_estimate_reply(&wire).unwrap();
        assert_eq!(source_str(decoded.source), Some("analytic"));
        assert_eq!(decoded.fidelity, Fidelity::Analytic);
        assert_eq!(decoded.confidence, 0.25);
        assert_eq!(
            source_str(source_code(CacheSource::Regressed)),
            Some("regressed")
        );
        let mut bad = wire;
        bad[25] = 0;
        assert!(decode_estimate_reply(&bad)
            .unwrap_err()
            .contains("unknown fidelity code 0"));
    }

    #[test]
    fn characterize_round_trips_including_unconverged() {
        let params = CharacterizeParams {
            spec: ModuleSpec::new(ModuleKind::Mac, ModuleWidth::Uniform(8)),
        };
        let wire = encode_characterize_request(&params);
        assert_eq!(decode_characterize_request(&wire).unwrap(), params);
        for converged_after in [Some(1500u64), None] {
            let reply = CharacterizeReply {
                input_bits: 24,
                transitions: 987_654,
                converged_after,
                source: source_code(CacheSource::Disk),
            };
            let wire = encode_characterize_reply(&reply);
            assert_eq!(decode_characterize_reply(&wire).unwrap(), reply);
        }
    }

    #[test]
    fn stats_reply_round_trips() {
        let stats = EngineStats {
            entries: 3,
            capacity: 64,
            hits: 100,
            misses: 4,
            evictions: 1,
            disk_hits: 2,
            characterizations: 2,
            coalesced: 9,
            inflight: 1,
            analytic_served: 5,
            regressed_served: 6,
            upgrades_done: 4,
        };
        let decoded = decode_stats_reply(&encode_stats_reply(&stats)).unwrap();
        assert_eq!(decoded.entries, 3);
        assert_eq!(decoded.capacity, 64);
        assert_eq!(decoded.hits, 100);
        assert_eq!(decoded.coalesced, 9);
        assert_eq!(decoded.inflight, 1);
        assert_eq!(decoded.analytic_served, 5);
        assert_eq!(decoded.regressed_served, 6);
        assert_eq!(decoded.upgrades_done, 4);
    }

    #[test]
    fn malformed_payloads_name_the_problem() {
        assert!(decode_estimate_request(&[0u8; 3])
            .unwrap_err()
            .contains("19 bytes"));
        let mut bad_module = encode_estimate_request(&EstimateParams {
            spec: ModuleSpec::new(ModuleKind::RippleAdder, ModuleWidth::Uniform(4)),
            data: DataType::Random,
            cycles: 64,
            seed: 7,
            floor: None,
        });
        bad_module[0] = 200;
        assert!(decode_estimate_request(&bad_module)
            .unwrap_err()
            .contains("unknown module code 200"));
        let mut bad_data = encode_estimate_request(&EstimateParams {
            spec: ModuleSpec::new(ModuleKind::RippleAdder, ModuleWidth::Uniform(4)),
            data: DataType::Random,
            cycles: 64,
            seed: 7,
            floor: None,
        });
        bad_data[5] = 99;
        assert!(decode_estimate_request(&bad_data)
            .unwrap_err()
            .contains("unknown data code 99"));
    }

    #[test]
    fn cluster_op_payloads_round_trip() {
        let spec = ModuleSpec::new(ModuleKind::BarrelShifter, ModuleWidth::Uniform(12));
        assert_eq!(
            decode_spec_request(&encode_spec_request(spec)).unwrap(),
            spec
        );
        assert!(decode_spec_request(&[0u8; 2])
            .unwrap_err()
            .contains("5 bytes"));
        for reply in [HaveModelReply::Absent, HaveModelReply::Present] {
            assert_eq!(
                decode_have_model_reply(&encode_have_model_reply(reply)).unwrap(),
                reply
            );
        }
        assert!(decode_have_model_reply(&[7]).is_err());
        assert!(decode_have_model_reply(&[]).is_err());

        let specs: Vec<ModuleSpec> = (4..9)
            .map(|w| ModuleSpec::new(ModuleKind::RippleAdder, ModuleWidth::Uniform(w)))
            .collect();
        let wire = encode_warm_keys(&specs);
        assert_eq!(wire.len(), 2 + specs.len() * SPEC_REQ_LEN);
        assert_eq!(decode_warm_keys(&wire).unwrap(), specs);
        assert_eq!(decode_warm_keys(&encode_warm_keys(&[])).unwrap(), vec![]);
        // Oversized lists truncate on encode and are rejected on decode.
        let many: Vec<ModuleSpec> = (0..WARM_KEYS_MAX + 40)
            .map(|i| ModuleSpec::new(ModuleKind::RippleAdder, ModuleWidth::Uniform(4 + i % 60)))
            .collect();
        assert_eq!(
            decode_warm_keys(&encode_warm_keys(&many)).unwrap().len(),
            WARM_KEYS_MAX
        );
        let mut forged = encode_warm_keys(&specs);
        forged[0..2].copy_from_slice(&(WARM_KEYS_MAX as u16 + 1).to_le_bytes());
        assert!(decode_warm_keys(&forged).unwrap_err().contains("cap"));
        let mut mismatched = encode_warm_keys(&specs);
        mismatched.pop();
        assert!(decode_warm_keys(&mismatched)
            .unwrap_err()
            .contains("does not match"));
    }

    #[test]
    fn every_error_kind_has_a_distinct_status() {
        let kinds = [
            ErrorKind::Malformed,
            ErrorKind::InvalidUtf8,
            ErrorKind::BadRequest,
            ErrorKind::Engine,
            ErrorKind::Overloaded,
            ErrorKind::Timeout,
        ];
        let mut seen = std::collections::HashSet::new();
        for kind in kinds {
            let status = status_of(kind);
            assert_ne!(status, STATUS_OK);
            assert!(seen.insert(status), "duplicate status for {kind:?}");
            assert_eq!(kind_of(status), Some(kind));
        }
        assert_eq!(kind_of(STATUS_OK), None);
    }

    #[test]
    fn every_module_and_data_code_round_trips() {
        for kind in ModuleKind::ALL {
            assert_eq!(module_from_code(module_code(kind)), Some(kind));
        }
        for data in ALL_DATA_TYPES {
            assert_eq!(data_from_code(data_code(data)), Some(data));
        }
    }
}
