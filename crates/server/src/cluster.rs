//! Cluster-mode glue on the server side: the blocking peer client for
//! the cluster opcodes, the per-key ensure gate that makes peer fetching
//! single-flight on this node, and the warm-key gossip loop.
//!
//! The design keeps every cluster interaction *advisory*: any peer
//! failure — connect refused, timeout, refused op, corrupt bytes —
//! degrades to the node's standalone behaviour (characterize locally),
//! never to an error surfaced to the requesting client. Corrupt bytes
//! are additionally quarantined so an operator can inspect what a peer
//! actually sent. The full failure-modes table is in `docs/cluster.md`.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hdpm_cluster::{ClusterConfig, ClusterState, Peer};
use hdpm_core::persist::{self, EnvelopeMeta};
use hdpm_core::{Characterization, ModelError, ModelKey, PowerEngine};
use hdpm_netlist::ModuleSpec;
use hdpm_telemetry as telemetry;

use crate::wire;

/// Everything the request path needs for cluster mode: the shared
/// [`ClusterState`] plus this node's ensure gate.
pub(crate) struct ClusterRuntime {
    /// The node's ring, counters, peer health and warm gate.
    pub(crate) state: Arc<ClusterState>,
    gate: EnsureGate,
}

impl ClusterRuntime {
    /// Validate `config` into a runtime.
    ///
    /// # Errors
    ///
    /// The [`ClusterState::new`] validation error, verbatim.
    pub(crate) fn new(config: ClusterConfig) -> Result<ClusterRuntime, String> {
        Ok(ClusterRuntime {
            state: Arc::new(ClusterState::new(config)?),
            gate: EnsureGate::default(),
        })
    }
}

/// Node-local single-flight for [`ensure_model`]: the first thread in
/// per key leads the peer interaction, every concurrent thread for the
/// same key blocks until the leader is done and then proceeds straight
/// to the engine (where the artifact now is, or the engine's own
/// single-flight coalesces the fallback characterization).
#[derive(Default)]
struct EnsureGate {
    inflight: Mutex<HashSet<String>>,
    done: Condvar,
}

impl EnsureGate {
    /// Returns `true` when the caller is the leader for `key` (and must
    /// call [`EnsureGate::release`]); `false` when it waited a leader
    /// out.
    fn lead(&self, key: &str) -> bool {
        let mut inflight = self.inflight.lock().expect("ensure gate lock");
        if inflight.insert(key.to_string()) {
            return true;
        }
        while inflight.contains(key) {
            inflight = self.done.wait(inflight).expect("ensure gate lock");
        }
        false
    }

    fn release(&self, key: &str) {
        let mut inflight = self.inflight.lock().expect("ensure gate lock");
        inflight.remove(key);
        drop(inflight);
        self.done.notify_all();
    }
}

// --- blocking peer client ----------------------------------------------

/// One blocking v2 exchange with a peer: connect, preamble, one request
/// frame, one reply frame. `timeout` bounds the connect and each
/// read/write syscall.
///
/// # Errors
///
/// A human-readable description of the transport failure; protocol-level
/// error replies are returned as `Ok((status, message))` for the callers
/// to classify.
fn call_peer(
    addr: SocketAddr,
    op: wire::Opcode,
    payload: &[u8],
    timeout: Duration,
) -> Result<(u8, Vec<u8>), String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, timeout).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let mut request = Vec::with_capacity(wire::MAGIC.len() + wire::HEADER_LEN + payload.len());
    request.extend_from_slice(&wire::MAGIC);
    wire::encode_frame(&mut request, 1, op as u8, 0, payload);
    stream
        .write_all(&request)
        .map_err(|e| format!("write to {addr}: {e}"))?;
    let mut header = [0u8; wire::HEADER_LEN];
    stream
        .read_exact(&mut header)
        .map_err(|e| format!("read from {addr}: {e}"))?;
    let header = wire::decode_header(&header);
    if header.len > wire::MAX_PAYLOAD {
        return Err(format!(
            "peer {addr} announced a {} byte reply (cap {})",
            header.len,
            wire::MAX_PAYLOAD
        ));
    }
    let mut reply = vec![0u8; header.len as usize];
    stream
        .read_exact(&mut reply)
        .map_err(|e| format!("read from {addr}: {e}"))?;
    Ok((header.op, reply))
}

/// Render a non-ok reply status into the error string the health table
/// shows.
fn status_err(op: &str, status: u8, payload: &[u8]) -> String {
    let kind = wire::kind_of(status).map_or("unknown", |k| k.as_str());
    let message = String::from_utf8_lossy(payload);
    format!("{op} refused ({kind}): {message}")
}

/// Probe whether a peer holds a model (memory or disk).
///
/// # Errors
///
/// Transport failure or a non-ok reply.
fn have_model(
    addr: SocketAddr,
    spec: ModuleSpec,
    timeout: Duration,
) -> Result<wire::HaveModelReply, String> {
    let payload = wire::encode_spec_request(spec);
    let (status, reply) = call_peer(addr, wire::Opcode::HaveModel, &payload, timeout)?;
    if status != wire::STATUS_OK {
        return Err(status_err("have-model", status, &reply));
    }
    wire::decode_have_model_reply(&reply)
}

/// Fetch a model's raw envelope bytes from a peer. `Ok(None)` means the
/// peer answered but has no artifact on disk (envelopes are never
/// empty, so an empty ok payload is unambiguous).
///
/// # Errors
///
/// Transport failure or a non-ok reply.
fn fetch_model(
    addr: SocketAddr,
    spec: ModuleSpec,
    timeout: Duration,
) -> Result<Option<Vec<u8>>, String> {
    let payload = wire::encode_spec_request(spec);
    let (status, reply) = call_peer(addr, wire::Opcode::FetchModel, &payload, timeout)?;
    if status != wire::STATUS_OK {
        return Err(status_err("fetch-model", status, &reply));
    }
    Ok((!reply.is_empty()).then_some(reply))
}

/// Ask a peer (the key's owner) to characterize a model into its own
/// store, so this node can fetch the artifact instead of duplicating
/// the work.
///
/// # Errors
///
/// Transport failure or a non-ok reply.
fn forward_characterize(
    addr: SocketAddr,
    spec: ModuleSpec,
    timeout: Duration,
) -> Result<(), String> {
    let payload = wire::encode_characterize_request(&wire::CharacterizeParams { spec });
    let (status, reply) = call_peer(addr, wire::Opcode::Characterize, &payload, timeout)?;
    if status != wire::STATUS_OK {
        return Err(status_err("characterize", status, &reply));
    }
    Ok(())
}

/// One warm-key gossip exchange: advertise `ours`, learn the peer's
/// hottest specs.
///
/// # Errors
///
/// Transport failure or a non-ok reply.
fn exchange_warm_keys(
    addr: SocketAddr,
    ours: &[ModuleSpec],
    timeout: Duration,
) -> Result<Vec<ModuleSpec>, String> {
    let payload = wire::encode_warm_keys(ours);
    let (status, reply) = call_peer(addr, wire::Opcode::WarmKeys, &payload, timeout)?;
    if status != wire::STATUS_OK {
        return Err(status_err("warm-keys", status, &reply));
    }
    wire::decode_warm_keys(&reply)
}

// --- admit / quarantine ------------------------------------------------

/// Verify peer bytes and admit them into the local store, or quarantine
/// them. Returns `true` when the artifact was admitted.
fn admit_or_quarantine(
    rt: &ClusterRuntime,
    store_root: &Path,
    key: &ModelKey,
    peer: &Peer,
    bytes: &[u8],
) -> bool {
    let dest = store_root.join(key.artifact_file_name());
    match persist::admit_envelope_bytes::<Characterization>(
        bytes,
        &EnvelopeMeta::for_key(key),
        &dest,
    ) {
        Ok(()) => {
            rt.state.stats().record_fetch_hit();
            rt.state.health().record_ok(&peer.id);
            true
        }
        Err(ModelError::Artifact { kind, detail, .. }) => {
            // Never admit, never serve: park the bytes for inspection
            // and let the caller fall back to a local characterization.
            let parked = quarantine_bytes(store_root, key, bytes);
            rt.state.stats().record_quarantine();
            rt.state.stats().record_fetch_error();
            rt.state.health().record_error(
                &peer.id,
                format!("sent unverifiable artifact ({kind}): {detail}"),
            );
            telemetry::event(
                telemetry::Level::Warn,
                "cluster.quarantine",
                &[
                    ("peer", peer.id.clone().into()),
                    ("key", key.to_string().into()),
                    ("fault", kind.to_string().into()),
                    (
                        "parked",
                        parked
                            .map_or_else(|| "unwritable".to_string(), |p| p.display().to_string())
                            .into(),
                    ),
                ],
            );
            false
        }
        Err(other) => {
            rt.state.stats().record_fetch_error();
            rt.state
                .health()
                .record_error(&peer.id, format!("admit failed: {other}"));
            false
        }
    }
}

/// Park unverifiable peer bytes under `<root>/quarantine/`, never
/// overwriting an earlier capture.
fn quarantine_bytes(store_root: &Path, key: &ModelKey, bytes: &[u8]) -> Option<PathBuf> {
    let dir = store_root.join("quarantine");
    std::fs::create_dir_all(&dir).ok()?;
    let base = format!("{}.wire", key.artifact_file_name());
    let mut path = dir.join(&base);
    let mut n = 1u32;
    while path.exists() {
        path = dir.join(format!("{base}.{n}"));
        n = n.checked_add(1)?;
    }
    std::fs::write(&path, bytes).ok()?;
    Some(path)
}

// --- ensure-model (the request-path hook) ------------------------------

/// Make sure `spec`'s model exists locally before the engine looks for
/// it, *without* characterizing here when another node owns the key:
///
/// 1. model already in memory or on disk → nothing to do;
/// 2. this node owns the key → fall through to the engine, whose
///    single-flight characterizes exactly once on this node;
/// 3. otherwise, the first thread in (per key) probes the remote
///    holders in ring order: a holder that has the artifact streams its
///    envelope bytes, which are checksum-verified before admission; a
///    holder that does not is asked to characterize (the cluster-wide
///    single-flight — every non-owner converges on the owner, whose
///    engine coalesces) and then fetched from.
///
/// Every failure path returns with nothing admitted, and the caller's
/// normal engine path characterizes locally — slower, never wrong.
pub(crate) fn ensure_model(
    rt: &ClusterRuntime,
    engine: &PowerEngine,
    store_root: &Path,
    spec: ModuleSpec,
) {
    if engine.has_model(spec) {
        return;
    }
    let key = engine.key_for(spec);
    let key_str = key.to_string();
    if rt.state.owns(&key_str) {
        return;
    }
    if !rt.gate.lead(&key_str) {
        // A leader just finished for this key; whatever it achieved
        // (artifact admitted, or nothing) the engine path takes over.
        return;
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if !engine.has_model(spec) {
            ensure_from_peers(rt, store_root, &key, spec);
        }
    }));
    rt.gate.release(&key_str);
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
}

fn ensure_from_peers(rt: &ClusterRuntime, store_root: &Path, key: &ModelKey, spec: ModuleSpec) {
    let config = rt.state.config();
    let key_str = key.to_string();
    for peer in rt.state.holder_peers(&key_str) {
        match have_model(peer.addr, spec, config.peer_timeout) {
            Ok(wire::HaveModelReply::Present) => {
                match fetch_model(peer.addr, spec, config.peer_timeout) {
                    Ok(Some(bytes)) => {
                        if admit_or_quarantine(rt, store_root, key, peer, &bytes) {
                            return;
                        }
                    }
                    Ok(None) => rt.state.stats().record_fetch_miss(),
                    Err(e) => {
                        rt.state.stats().record_fetch_error();
                        rt.state.health().record_error(&peer.id, e);
                    }
                }
            }
            Ok(wire::HaveModelReply::Absent) => {
                // The holder has not characterized yet: ask it to (the
                // cluster-wide single-flight), then fetch the artifact.
                rt.state.stats().record_forward();
                match forward_characterize(peer.addr, spec, config.forward_timeout) {
                    Ok(()) => match fetch_model(peer.addr, spec, config.peer_timeout) {
                        Ok(Some(bytes)) => {
                            if admit_or_quarantine(rt, store_root, key, peer, &bytes) {
                                return;
                            }
                            rt.state.stats().record_forward_fallback();
                        }
                        Ok(None) => {
                            rt.state.stats().record_fetch_miss();
                            rt.state.stats().record_forward_fallback();
                        }
                        Err(e) => {
                            rt.state.stats().record_fetch_error();
                            rt.state.stats().record_forward_fallback();
                            rt.state.health().record_error(&peer.id, e);
                        }
                    },
                    Err(e) => {
                        rt.state.stats().record_forward_fallback();
                        rt.state.health().record_error(&peer.id, e);
                    }
                }
            }
            Err(e) => {
                rt.state.stats().record_fetch_error();
                rt.state.health().record_error(&peer.id, e);
            }
        }
    }
    // Every holder failed us: the caller's engine path characterizes
    // locally. Correctness never depends on the fleet.
}

// --- warm-key gossip ---------------------------------------------------

/// How many of this node's hottest keys one gossip exchange advertises.
const GOSSIP_KEYS: usize = 32;

/// The gossip loop body, run on its own thread until `stop` returns
/// true: every `gossip_interval`, exchange warm keys with each peer and
/// pre-warm any learned model this node is missing — by fetching the
/// peer's artifact, never by characterizing (gossip must not burn CPU a
/// client did not ask for). The warm gate opens after the first round
/// that reached at least one peer (or immediately with no peers);
/// `/readyz` keeps answering `warming` until then or until the
/// configured warm timeout expires.
pub(crate) fn run_gossip(
    state: &ClusterState,
    engine: &PowerEngine,
    store_root: &Path,
    stop: &dyn Fn() -> bool,
) {
    let config = state.config();
    if config.peers.is_empty() {
        state.warm().mark_complete();
        return;
    }
    while !stop() {
        let ours: Vec<ModuleSpec> = engine
            .hottest_keys(GOSSIP_KEYS)
            .iter()
            .map(|key| key.spec)
            .collect();
        let mut reached_any = false;
        for peer in &config.peers {
            if stop() {
                return;
            }
            match exchange_warm_keys(peer.addr, &ours, config.peer_timeout) {
                Ok(learned) => {
                    reached_any = true;
                    state.health().record_ok(&peer.id);
                    state.stats().record_warm_keys_sent(ours.len() as u64);
                    let fresh: Vec<ModuleSpec> = learned
                        .into_iter()
                        .filter(|spec| !engine.has_model(*spec))
                        .collect();
                    state.stats().record_warm_keys_learned(fresh.len() as u64);
                    for spec in fresh {
                        if stop() {
                            return;
                        }
                        prewarm_one(state, engine, store_root, peer, spec);
                    }
                }
                Err(e) => state.health().record_error(&peer.id, e),
            }
        }
        state.stats().record_gossip_round();
        if reached_any {
            state.warm().mark_complete();
        }
        // Sleep in small slices so a drain is observed promptly.
        let wake = Instant::now() + config.gossip_interval;
        while Instant::now() < wake {
            if stop() {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

/// Pre-warm one learned key: fetch the peer's artifact, verify, admit,
/// then pull it through the engine so the LRU (not just the disk) is
/// warm before `/readyz` flips.
fn prewarm_one(
    state: &ClusterState,
    engine: &PowerEngine,
    store_root: &Path,
    peer: &Peer,
    spec: ModuleSpec,
) {
    let key = engine.key_for(spec);
    let dest = store_root.join(key.artifact_file_name());
    if !dest.exists() {
        match fetch_model(peer.addr, spec, state.config().peer_timeout) {
            Ok(Some(bytes)) => {
                match persist::admit_envelope_bytes::<Characterization>(
                    &bytes,
                    &EnvelopeMeta::for_key(&key),
                    &dest,
                ) {
                    Ok(()) => state.stats().record_fetch_hit(),
                    Err(_) => {
                        // Same never-admit rule as the request path, but
                        // without a requester waiting: park and move on.
                        let _ = quarantine_bytes(store_root, &key, &bytes);
                        state.stats().record_quarantine();
                        state
                            .health()
                            .record_error(&peer.id, "gossip fetch failed verification");
                        return;
                    }
                }
            }
            Ok(None) => {
                state.stats().record_fetch_miss();
                return;
            }
            Err(e) => {
                state.stats().record_fetch_error();
                state.health().record_error(&peer.id, e);
                return;
            }
        }
    }
    // Disk hit only: the artifact was just admitted (or already there),
    // so this load never characterizes.
    if engine.fetch(spec).is_ok() {
        state.warm().record_prewarmed(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_gate_serializes_leaders_per_key() {
        let gate = Arc::new(EnsureGate::default());
        assert!(gate.lead("k1"), "first thread in leads");
        assert!(gate.lead("k2"), "distinct keys do not contend");
        let contender = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.lead("k1"))
        };
        // The contender blocks on k1 until the leader releases, then
        // reports it waited instead of leading.
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            !contender.is_finished(),
            "contender parks behind the leader"
        );
        gate.release("k1");
        assert!(!contender.join().unwrap(), "waiter never becomes a leader");
        gate.release("k2");
        assert!(gate.lead("k1"), "a released key can be led again");
        gate.release("k1");
    }

    #[test]
    fn quarantine_never_overwrites_prior_captures() {
        let dir = tempdir();
        let key = ModelKey {
            spec: ModuleSpec::new(
                hdpm_netlist::ModuleKind::RippleAdder,
                hdpm_netlist::ModuleWidth::Uniform(4),
            ),
            config_hash: 0xDEAD_BEEF,
            shards: 8,
        };
        let first = quarantine_bytes(&dir, &key, b"bad-1").unwrap();
        let second = quarantine_bytes(&dir, &key, b"bad-2").unwrap();
        assert_ne!(first, second);
        assert_eq!(std::fs::read(&first).unwrap(), b"bad-1");
        assert_eq!(std::fs::read(&second).unwrap(), b"bad-2");
        assert!(first.starts_with(dir.join("quarantine")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_peer_calls_fail_fast_with_the_address_in_the_error() {
        // Port 1 on localhost refuses (or at worst times out) immediately.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let started = Instant::now();
        let err = call_peer(addr, wire::Opcode::Ping, &[], Duration::from_millis(300)).unwrap_err();
        assert!(err.contains("127.0.0.1:1"), "{err}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "bounded by the timeout"
        );
    }

    fn tempdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hdpm-cluster-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
