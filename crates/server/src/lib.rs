//! `hdpm-server` — the networked power-estimation service.
//!
//! Exposes the [`PowerEngine`](hdpm_core::PowerEngine) over TCP, speaking
//! two protocols on one port (negotiated from the first byte of each
//! connection, [`wire::MAGIC`]):
//!
//! * **v2** — length-prefixed binary frames with a request id, opcode
//!   and per-request deadline ([`wire`]); replies complete **out of
//!   order**, so one slow characterization no longer stalls the
//!   pipelined requests behind it;
//! * **v1** — the JSON-lines protocol of `hdpm serve`, byte-for-byte
//!   compatible with its transcripts ([`protocol`] is the single source
//!   of truth for both transports), replies in request order.
//!
//! The [`Server`] is built for sustained load:
//!
//! * a **fixed reactor pool** multiplexes every connection over epoll
//!   ([`poller`]), so 10k mostly-idle connections cost registered fds,
//!   not threads; framed requests feed a **bounded MPMC queue**
//!   ([`Bounded`]) drained by a **fixed worker pool** sharing one
//!   engine, so concurrent cache misses on the same model coalesce
//!   through the engine's single-flight path (N clients, one
//!   characterization);
//! * **load shedding**: a full queue answers `overloaded` immediately
//!   instead of growing an unbounded backlog;
//! * **deadlines**: v1 requests that out-wait their limit in the queue
//!   earn a structured `timeout` reply; v2 deadlines are in-band per
//!   frame and cover decode → write, with late completions labeled
//!   ([`wire::FLAG_LATE`]) instead of discarded;
//! * **connection hygiene**: idle reaping, write timeouts that
//!   disconnect slow readers, and malformed input that never tears the
//!   server down;
//! * **graceful drain** ([`Server::shutdown`]): stop accepting, finish
//!   everything in flight, flush, join every pool, report totals;
//! * **observability**: per-request traces with stage timings, a flight
//!   recorder of recent traces, a slow-request log, and an optional
//!   HTTP admin plane ([`ServerConfig::admin_addr`]) serving
//!   `/metrics`, `/healthz`, `/readyz` and `/tracez`.
//!
//! Configuration is a validated builder — invalid combinations
//! (zero queue depth, a deadline beyond the idle timeout) fail at
//! [`ServerConfigBuilder::build`] with a typed [`ConfigError`] instead
//! of misbehaving at runtime:
//!
//! ```no_run
//! use hdpm_server::{Server, ServerConfig};
//!
//! let config = ServerConfig::builder()
//!     .queue_depth(512)
//!     .build()
//!     .expect("valid config");
//! let server = Server::start(config)?;
//! println!("listening on {}", server.local_addr());
//! // ... serve traffic ...
//! let report = server.shutdown();
//! assert_eq!(report.shed, 0);
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! The [`client`] module speaks both protocol versions (sync and
//! pipelined modes). Protocol reference and failure semantics:
//! `docs/protocol.md` and `docs/server.md`.

#![forbid(unsafe_code)]

mod admin;
pub mod client;
mod cluster;
mod config;
pub mod protocol;
mod queue;
mod reactor;
mod server;
pub mod wire;

pub use admin::tracez_body as flight_recorder_json;
pub use config::{ConfigError, ServerConfig, ServerConfigBuilder};
pub use queue::{Bounded, PushError};
pub use server::{DrainReport, Server};
