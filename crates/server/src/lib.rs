//! `hdpm-server` — the networked power-estimation service.
//!
//! Exposes the [`PowerEngine`](hdpm_core::PowerEngine) over TCP with the
//! same JSON-lines protocol as `hdpm serve`, wire-compatible with its
//! transcripts ([`protocol`] is the single source of truth for both
//! transports). The [`Server`] is built for sustained load:
//!
//! * a `TcpListener` accept loop feeds a **bounded MPMC queue**
//!   ([`Bounded`]) drained by a **fixed worker pool** sharing one engine,
//!   so concurrent cache misses on the same model coalesce through the
//!   engine's single-flight path (N clients, one characterization);
//! * **load shedding**: a full queue answers
//!   `{"ok":false,"error":{"kind":"overloaded",...}}` immediately instead
//!   of growing an unbounded backlog;
//! * **deadlines**: requests that out-wait their limit in the queue earn
//!   a structured `timeout` reply instead of stale work;
//! * **connection hygiene**: idle reaping, write timeouts that disconnect
//!   slow readers, and malformed/non-UTF-8 input that never tears a
//!   connection down;
//! * **graceful drain** ([`Server::shutdown`]): stop accepting, finish
//!   everything in flight, join the pool, report totals;
//! * **observability**: per-request traces with stage timings echoed as
//!   `"trace"` ids in replies, a flight recorder of recent traces, a
//!   slow-request log, and an optional HTTP admin plane
//!   ([`ServerOptions::admin_addr`]) serving `/metrics`, `/healthz`,
//!   `/readyz` and `/tracez`.
//!
//! ```no_run
//! use hdpm_server::{Server, ServerOptions};
//!
//! let server = Server::start(ServerOptions::default())?;
//! println!("listening on {}", server.local_addr());
//! // ... serve traffic ...
//! let report = server.shutdown();
//! assert_eq!(report.shed, 0);
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! Protocol reference and failure semantics: `docs/server.md`.

#![forbid(unsafe_code)]

mod admin;
pub mod protocol;
mod queue;
mod server;

pub use admin::tracez_body as flight_recorder_json;
pub use queue::{Bounded, PushError};
pub use server::{DrainReport, Server, ServerOptions};
