//! A bounded multi-producer/multi-consumer queue built on one mutex and
//! one condvar — the admission control point of the server.
//!
//! The queue never blocks producers: [`Bounded::try_push`] fails
//! immediately when the queue is at capacity ([`PushError::Full`]) or
//! closed ([`PushError::Closed`]), handing the rejected item back so the
//! caller can shed load with a structured reply instead of growing an
//! unbounded backlog. Consumers block in [`Bounded::pop`] until an item
//! arrives; after [`Bounded::close`] they drain whatever is still queued
//! and then observe `None`, which is the worker-pool exit signal during a
//! graceful drain.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was rejected. Both variants return the item to the caller.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; shed the item.
    Full(T),
    /// The queue was closed; the server is draining.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded MPMC queue. See the [module docs](self).
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Bounded {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`Bounded::close`]; both carry `item` back.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Dequeue, blocking until an item is available. Returns `None` once
    /// the queue is closed *and* empty — remaining items are always
    /// drained first, which is what makes shutdown graceful.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    /// Close the queue: future pushes fail, consumers drain and exit.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_sheds_and_hands_the_item_back() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        match q.try_push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_remaining_items_then_signals_exit() {
        let q = Bounded::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        match q.try_push("c") {
            Err(PushError::Closed("c")) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed+empty stays terminal");
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(7).unwrap();
        assert!(matches!(q.try_push(8), Err(PushError::Full(8))));
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_on_close() {
        let q = Arc::new(Bounded::new(8));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut seen = 0usize;
                    while q.pop().is_some() {
                        seen += 1;
                    }
                    seen
                })
            })
            .collect();
        let mut pushed = 0usize;
        for i in 0..100 {
            if q.try_push(i).is_ok() {
                pushed += 1;
            } else {
                // Consumers are slow to wake under load; give them a beat.
                std::thread::yield_now();
            }
        }
        q.close();
        let drained: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(drained, pushed, "every admitted item is consumed");
    }
}
