//! The event-driven front end: a small fixed pool of reactor threads
//! multiplexing every connection over epoll ([`poller`]).
//!
//! Each reactor owns a [`poller::Poller`] plus the read-side state of
//! the connections assigned to it (round-robin by the accept thread).
//! A connection costs one registered fd and a few hundred bytes of
//! state — not two threads — so 10k+ mostly-idle connections are served
//! by `reactors + workers + 2` threads total.
//!
//! Responsibilities per reactor:
//!
//! * **negotiation** — the first byte of a connection picks the
//!   protocol: `0x00` opens the v2 preamble ([`crate::wire::MAGIC`]),
//!   anything else is a v1 JSON-lines client;
//! * **framing** — v1 lines become one queue job each (preserving the
//!   per-line shed/timeout semantics and the reply sequencer); v2
//!   frames are coalesced into batch jobs (up to [`MAX_BATCH`] frames,
//!   one allocation per batch) completed out of order by the workers;
//! * **write-side drainage** — workers write replies opportunistically
//!   from their own threads ([`ConnOut::send`]); only when the socket
//!   would block does the reactor take over via `EPOLLOUT`, enforcing
//!   the write timeout and the output-buffer cap;
//! * **hygiene** — idle reaping, peer-close detection, and the
//!   flush-then-close endgame after EOF or drain.
//!
//! Locking: a connection's v1 sequencer lock is always taken **before**
//! its output-buffer lock (workers hold `v1 → out` nested so reply
//! bytes hit the buffer in sequence order); nothing ever takes them in
//! the other order. Worker-side failures under the `out` lock mark the
//! connection dead in place and defer sequencer cleanup to the
//! reactor's teardown.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hdpm_telemetry as telemetry;
use poller::{Interest, Poller, Waker};

use crate::protocol::ErrorKind;
use crate::server::{FrameRef, Reply, Shared};
use crate::wire;

/// Token reserved for each reactor's waker.
const WAKER_TOKEN: u64 = u64::MAX;

/// Most frames coalesced into one v2 batch job.
pub(crate) const MAX_BATCH: usize = 1024;

/// Output-buffer cap per connection; a consumer this far behind is cut
/// instead of buffering without bound.
const OUT_CAP: usize = 4 << 20;

/// Bytes read per `read` call into the reactor's scratch buffer.
const READ_CHUNK: usize = 64 * 1024;

/// Cross-thread mailbox messages into a reactor.
pub(crate) enum Mail {
    /// A freshly accepted connection to adopt.
    Register {
        /// The nonblocking stream (shared with [`ConnOut`]).
        stream: Arc<TcpStream>,
        /// Its write side.
        out: Arc<ConnOut>,
    },
    /// A worker hit `WouldBlock`; arm `EPOLLOUT` for this token.
    WantWrite(u64),
    /// The last in-flight job of a read-closed connection finished;
    /// flush whatever is buffered and close.
    Close(u64),
}

/// The handle other threads use to reach a reactor: a mailbox plus the
/// eventfd waker that interrupts its `epoll_wait`.
pub(crate) struct ReactorHandle {
    mailbox: Mutex<Vec<Mail>>,
    waker: Waker,
}

impl ReactorHandle {
    pub(crate) fn new(poller: &Poller) -> io::Result<ReactorHandle> {
        Ok(ReactorHandle {
            mailbox: Mutex::new(Vec::new()),
            waker: Waker::new(poller, WAKER_TOKEN)?,
        })
    }

    /// Post mail and wake the reactor.
    pub(crate) fn post(&self, mail: Mail) {
        self.mailbox.lock().expect("reactor mailbox").push(mail);
        self.waker.wake();
    }

    /// Wake without mail (drain/finish phase changes).
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }

    fn take_mail(&self) -> Vec<Mail> {
        std::mem::take(&mut *self.mailbox.lock().expect("reactor mailbox"))
    }
}

/// How a flush attempt left the output buffer.
enum FlushState {
    /// Everything buffered is on the wire.
    Drained,
    /// The socket would block; `EPOLLOUT` is needed.
    Blocked,
    /// The write side failed; the connection is dead.
    Dead,
}

struct OutBuf {
    buf: Vec<u8>,
    /// Bytes of `buf` already written.
    pos: usize,
    /// When the socket first refused bytes still pending; cleared on a
    /// full drain. The reactor's scan turns this into the write timeout.
    blocked_since: Option<Instant>,
}

struct V1State {
    /// Sequence number the wire is waiting for next.
    next: u64,
    /// Completed replies with earlier gaps outstanding; `None` marks a
    /// sequence slot owing no output.
    pending: std::collections::BTreeMap<u64, Option<Reply>>,
}

/// The write side of a connection, shared between the owning reactor
/// and the worker pool. Workers append reply bytes and flush
/// opportunistically; the reactor finishes the job under `EPOLLOUT`
/// when a socket pushes back.
pub(crate) struct ConnOut {
    /// The epoll token (stable for the connection's lifetime).
    pub(crate) token: u64,
    stream: Arc<TcpStream>,
    reactor: Arc<ReactorHandle>,
    alive: AtomicBool,
    /// The peer half-closed (or the reactor stopped reading for good);
    /// the connection closes once `inflight` jobs drain and the buffer
    /// flushes.
    read_closed: AtomicBool,
    /// Queue jobs (v1 lines / v2 batches) not yet fully answered.
    inflight: AtomicUsize,
    out: Mutex<OutBuf>,
    v1: Mutex<V1State>,
}

impl ConnOut {
    pub(crate) fn new(token: u64, stream: Arc<TcpStream>, reactor: Arc<ReactorHandle>) -> ConnOut {
        ConnOut {
            token,
            stream,
            reactor,
            alive: AtomicBool::new(true),
            read_closed: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            out: Mutex::new(OutBuf {
                buf: Vec::new(),
                pos: 0,
                blocked_since: None,
            }),
            v1: Mutex::new(V1State {
                next: 0,
                pending: std::collections::BTreeMap::new(),
            }),
        }
    }

    pub(crate) fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Account one queue job against this connection.
    pub(crate) fn begin_job(&self) {
        self.inflight.fetch_add(1, Ordering::SeqCst);
    }

    /// Retire one queue job; the last job of a read-closed connection
    /// asks the reactor to flush-and-close.
    pub(crate) fn finish_job(&self) {
        if self.inflight.fetch_sub(1, Ordering::SeqCst) == 1
            && self.read_closed.load(Ordering::SeqCst)
            && self.is_alive()
        {
            self.reactor.post(Mail::Close(self.token));
        }
    }

    /// Tear the write side down: refuse future bytes, wake blocked peer
    /// I/O, drop everything buffered. Idempotent; callable from any
    /// thread. The reactor also deregisters the fd when it observes the
    /// death (HUP or scan).
    pub(crate) fn kill(&self) {
        self.alive.store(false, Ordering::SeqCst);
        let _ = self.stream.shutdown(Shutdown::Both);
        let mut st = self.out.lock().expect("conn out lock");
        st.buf.clear();
        st.pos = 0;
        st.blocked_since = None;
    }

    /// Like [`ConnOut::kill`] for a caller already holding the `out`
    /// lock (flush failures).
    fn mark_dead(&self, st: &mut OutBuf) {
        self.alive.store(false, Ordering::SeqCst);
        let _ = self.stream.shutdown(Shutdown::Both);
        st.buf.clear();
        st.pos = 0;
        st.blocked_since = None;
    }

    /// Drop the v1 sequencer state (reactor teardown). Any replies
    /// still held for reordering are abandoned with their traces —
    /// the connection is gone; nobody would read them.
    fn clear_v1(&self) {
        self.v1.lock().expect("conn v1 lock").pending.clear();
    }

    /// Whether nothing remains to write (or ever will).
    fn flushed_or_dead(&self) -> bool {
        if !self.is_alive() {
            return true;
        }
        let st = self.out.lock().expect("conn out lock");
        st.pos >= st.buf.len()
    }

    fn try_flush(&self, st: &mut OutBuf) -> FlushState {
        while st.pos < st.buf.len() {
            match (&*self.stream).write(&st.buf[st.pos..]) {
                Ok(0) => {
                    self.mark_dead(st);
                    return FlushState::Dead;
                }
                Ok(n) => st.pos += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if st.blocked_since.is_none() {
                        st.blocked_since = Some(Instant::now());
                    }
                    // Reclaim the written prefix so a long-blocked
                    // buffer does not grow by its own history.
                    if st.pos > READ_CHUNK {
                        st.buf.drain(..st.pos);
                        st.pos = 0;
                    }
                    return FlushState::Blocked;
                }
                Err(e) => {
                    telemetry::counter_add("server.conn.write_failed", 1);
                    telemetry::event(
                        telemetry::Level::Warn,
                        "server.conn.write_failed",
                        &[("error", e.to_string().into())],
                    );
                    self.mark_dead(st);
                    return FlushState::Dead;
                }
            }
        }
        st.buf.clear();
        st.pos = 0;
        st.blocked_since = None;
        FlushState::Drained
    }

    /// Append reply bytes and flush as far as the socket allows without
    /// blocking. Called from worker threads; when the socket pushes
    /// back, the owning reactor takes over via [`Mail::WantWrite`].
    pub(crate) fn send(&self, bytes: &[u8]) {
        if bytes.is_empty() || !self.is_alive() {
            return;
        }
        let mut st = self.out.lock().expect("conn out lock");
        if !self.is_alive() {
            return;
        }
        st.buf.extend_from_slice(bytes);
        if st.buf.len() - st.pos > OUT_CAP {
            telemetry::counter_add("server.conn.write_failed", 1);
            telemetry::event(
                telemetry::Level::Warn,
                "server.conn.write_failed",
                &[("error", "output buffer cap exceeded".into())],
            );
            self.mark_dead(&mut st);
            return;
        }
        match self.try_flush(&mut st) {
            FlushState::Drained | FlushState::Dead => {}
            FlushState::Blocked => {
                drop(st);
                self.reactor.post(Mail::WantWrite(self.token));
            }
        }
    }

    /// Hand in the v1 reply for sequence `seq` (`None` = no output
    /// owed) and put every consecutively-ready reply on the wire, in
    /// order, exactly as the historical per-connection sequencer did.
    /// Trace bookkeeping runs after both locks are released.
    pub(crate) fn submit_v1(&self, seq: u64, reply: Option<Reply>) {
        let mut finishes: Vec<Box<crate::server::TraceFinish>> = Vec::new();
        let mut wrote_any = false;
        {
            let mut v1 = self.v1.lock().expect("conn v1 lock");
            if !self.is_alive() {
                // Dead connection: advance the sequencer for form's sake
                // and let the trace go unrecorded as a socket write.
                if let Some(reply) = reply {
                    if let Some(finish) = reply.finish {
                        finishes.push(finish);
                    }
                }
                v1.next = v1.next.max(seq + 1);
                drop(v1);
                for finish in finishes {
                    finish.complete(false);
                }
                return;
            }
            v1.pending.insert(seq, reply);
            let mut bytes: Vec<u8> = Vec::new();
            loop {
                let next = v1.next;
                let Some(ready) = v1.pending.remove(&next) else {
                    break;
                };
                v1.next += 1;
                let Some(reply) = ready else { continue };
                bytes.extend_from_slice(reply.line.as_bytes());
                bytes.push(b'\n');
                if let Some(finish) = reply.finish {
                    finishes.push(finish);
                }
            }
            if !bytes.is_empty() {
                wrote_any = true;
                // v1 → out nested (the crate-wide lock order): the bytes
                // of consecutive sequences reach the buffer in order even
                // with workers racing on different sequences.
                self.send(&bytes);
            }
        }
        for finish in finishes {
            finish.complete(wrote_any);
        }
    }
}

/// Which protocol a connection speaks, decided by its first byte.
enum Proto {
    /// No bytes seen yet.
    Negotiating,
    /// JSON lines (the historical protocol).
    V1,
    /// Binary frames ([`crate::wire`]).
    V2,
}

/// Read-side state of one connection, owned by its reactor.
struct Conn {
    stream: Arc<TcpStream>,
    out: Arc<ConnOut>,
    proto: Proto,
    /// Unconsumed input: a partial v1 line or v2 frame.
    rbuf: Vec<u8>,
    /// Bytes of `rbuf` already scanned for a v1 newline.
    scanned: usize,
    /// v1 sequence allocator.
    next_seq: u64,
    last_activity: Instant,
    /// Currently registered epoll interest.
    interest: Interest,
    /// EOF seen (or drain): close once in-flight jobs and the output
    /// buffer drain.
    closing: bool,
}

enum ReadOutcome {
    Open,
    /// Peer half-closed; no more requests will arrive.
    Eof,
    /// Protocol violation or transport error; tear down now.
    Dead,
}

/// One reactor thread: `epoll_wait` → mailbox → readiness events →
/// timeout scans, until the server finishes draining.
pub(crate) fn run_reactor(shared: &Arc<Shared>, handle: &Arc<ReactorHandle>, poller: &Poller) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut events: Vec<poller::Event> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut drain_acked = false;
    // The poll tick bounds how late the idle/write-timeout scans and the
    // drain handshake can run.
    let tick = shared
        .idle_timeout()
        .checked_div(4)
        .unwrap_or(Duration::from_millis(100))
        .min(Duration::from_millis(100))
        .max(Duration::from_millis(1));
    loop {
        let _ = poller.wait(&mut events, Some(tick));
        for mail in handle.take_mail() {
            match mail {
                Mail::Register { stream, out } => {
                    let token = out.token;
                    // Connections arriving after the drain ack are never
                    // read; they close in the finish phase.
                    let interest = if drain_acked {
                        Interest::NONE
                    } else {
                        Interest::READ
                    };
                    if poller.add(stream.as_raw_fd(), token, interest).is_err() {
                        out.kill();
                        shared.release_connection();
                        continue;
                    }
                    conns.insert(
                        token,
                        Conn {
                            stream,
                            out,
                            proto: Proto::Negotiating,
                            rbuf: Vec::new(),
                            scanned: 0,
                            next_seq: 0,
                            last_activity: Instant::now(),
                            interest,
                            closing: false,
                        },
                    );
                }
                Mail::WantWrite(token) => {
                    if let Some(conn) = conns.get_mut(&token) {
                        let readable = conn.interest.readable;
                        set_interest(poller, conn, readable, true);
                    }
                }
                Mail::Close(token) => {
                    let flushed = match conns.get_mut(&token) {
                        Some(conn) => {
                            conn.closing = true;
                            // Make sure the flush completes even if the
                            // last worker write hit WouldBlock.
                            let readable = conn.interest.readable;
                            set_interest(poller, conn, readable, true);
                            conn.out.flushed_or_dead()
                        }
                        None => continue,
                    };
                    if flushed {
                        teardown(shared, poller, &mut conns, token);
                    }
                }
            }
        }
        // `events` is only refilled by `wait`; the body mutates `conns`,
        // never the event list.
        for &event in events.iter() {
            if event.token == WAKER_TOKEN {
                handle.waker.drain();
                continue;
            }
            let Some(conn) = conns.get_mut(&event.token) else {
                continue;
            };
            if event.error {
                teardown(shared, poller, &mut conns, event.token);
                continue;
            }
            if event.writable {
                let state = {
                    let mut st = conn.out.out.lock().expect("conn out lock");
                    conn.out.try_flush(&mut st)
                };
                match state {
                    FlushState::Dead => {
                        teardown(shared, poller, &mut conns, event.token);
                        continue;
                    }
                    FlushState::Drained => {
                        let conn = conns.get_mut(&event.token).expect("still present");
                        let readable = conn.interest.readable;
                        set_interest(poller, conn, readable, false);
                        if conn.closing && conn.out.inflight.load(Ordering::SeqCst) == 0 {
                            teardown(shared, poller, &mut conns, event.token);
                            continue;
                        }
                    }
                    FlushState::Blocked => {}
                }
            }
            let Some(conn) = conns.get_mut(&event.token) else {
                continue;
            };
            if event.readable || event.closed {
                match handle_read(shared, conn, &mut scratch) {
                    ReadOutcome::Open => {}
                    ReadOutcome::Eof => {
                        conn.out.read_closed.store(true, Ordering::SeqCst);
                        conn.closing = true;
                        let writable = conn.interest.writable;
                        set_interest(poller, conn, false, writable);
                        if conn.out.inflight.load(Ordering::SeqCst) == 0
                            && conn.out.flushed_or_dead()
                        {
                            teardown(shared, poller, &mut conns, event.token);
                        }
                    }
                    ReadOutcome::Dead => {
                        teardown(shared, poller, &mut conns, event.token);
                    }
                }
            }
        }
        events.clear();
        // Idle and write-timeout scans. Cheap even at 10k connections:
        // two loads and an Instant comparison per connection per tick.
        let now = Instant::now();
        let idle = shared.idle_timeout();
        let write_timeout = shared.write_timeout();
        let reap: Vec<u64> = conns
            .iter()
            .filter_map(|(&token, conn)| {
                if !conn.out.is_alive() {
                    return Some(token);
                }
                if !conn.closing && now.duration_since(conn.last_activity) >= idle {
                    telemetry::counter_add("server.conn.reaped", 1);
                    return Some(token);
                }
                let st = conn.out.out.lock().expect("conn out lock");
                if let Some(blocked) = st.blocked_since {
                    if now.duration_since(blocked) >= write_timeout {
                        telemetry::counter_add("server.conn.write_failed", 1);
                        telemetry::event(
                            telemetry::Level::Warn,
                            "server.conn.write_failed",
                            &[("error", "write timeout".into())],
                        );
                        return Some(token);
                    }
                }
                None
            })
            .collect();
        for token in reap {
            teardown(shared, poller, &mut conns, token);
        }
        if shared.draining() && !drain_acked {
            // Stop reading (and with it, enqueuing) on every connection,
            // then tell the drain orchestrator this reactor is quiet.
            // Interest must drop before the ack: level-triggered
            // readiness on ignored sockets would spin the loop.
            let tokens: Vec<u64> = conns.keys().copied().collect();
            for token in tokens {
                if let Some(conn) = conns.get_mut(&token) {
                    let writable = conn.interest.writable;
                    set_interest(poller, conn, false, writable);
                }
            }
            drain_acked = true;
            shared.ack_drain();
        }
        if shared.finished() {
            // Workers are gone; flush what remains (bounded by the
            // write-timeout scan above) and leave.
            let done: Vec<u64> = conns
                .iter()
                .filter(|(_, conn)| conn.out.flushed_or_dead())
                .map(|(&token, _)| token)
                .collect();
            for token in done {
                teardown(shared, poller, &mut conns, token);
            }
            if conns.is_empty() {
                break;
            }
        }
    }
}

fn set_interest(poller: &Poller, conn: &mut Conn, readable: bool, writable: bool) {
    let interest = Interest { readable, writable };
    if interest == conn.interest {
        return;
    }
    if poller
        .modify(conn.stream.as_raw_fd(), conn.out.token, interest)
        .is_ok()
    {
        conn.interest = interest;
    }
}

fn teardown(shared: &Arc<Shared>, poller: &Poller, conns: &mut HashMap<u64, Conn>, token: u64) {
    let Some(conn) = conns.remove(&token) else {
        return;
    };
    let _ = poller.delete(conn.stream.as_raw_fd());
    conn.out.kill();
    conn.out.clear_v1();
    shared.release_connection();
}

/// Drain the socket into `conn.rbuf`, parsing as bytes arrive so the
/// buffer only ever holds one partial line or frame.
fn handle_read(shared: &Arc<Shared>, conn: &mut Conn, scratch: &mut [u8]) -> ReadOutcome {
    loop {
        match (&*conn.stream).read(scratch) {
            Ok(0) => {
                // EOF. A final unterminated v1 line still gets a reply,
                // matching the historical reader.
                if matches!(conn.proto, Proto::V1 | Proto::Negotiating) && !conn.rbuf.is_empty() {
                    let line = std::mem::take(&mut conn.rbuf);
                    conn.scanned = 0;
                    shared.enqueue_v1(&conn.out, &mut conn.next_seq, line);
                }
                return ReadOutcome::Eof;
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                conn.rbuf.extend_from_slice(&scratch[..n]);
                if !parse_available(shared, conn) {
                    return ReadOutcome::Dead;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadOutcome::Open,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Dead,
        }
    }
}

/// Consume every complete line/frame in `conn.rbuf`. Returns `false`
/// when the connection violated the protocol and must die.
fn parse_available(shared: &Arc<Shared>, conn: &mut Conn) -> bool {
    if matches!(conn.proto, Proto::Negotiating) {
        let Some(&first) = conn.rbuf.first() else {
            return true;
        };
        if first == 0 {
            if conn.rbuf.len() < wire::MAGIC.len() {
                return true; // preamble still arriving
            }
            if conn.rbuf[..wire::MAGIC.len()] != wire::MAGIC {
                telemetry::counter_add("server.conn.bad_magic", 1);
                return false;
            }
            conn.rbuf.drain(..wire::MAGIC.len());
            conn.proto = Proto::V2;
        } else {
            conn.proto = Proto::V1;
        }
    }
    match conn.proto {
        Proto::V1 => {
            parse_v1(shared, conn);
            true
        }
        Proto::V2 => parse_v2(shared, conn),
        Proto::Negotiating => unreachable!("resolved above"),
    }
}

fn parse_v1(shared: &Arc<Shared>, conn: &mut Conn) {
    let mut start = 0usize;
    loop {
        let from = start.max(conn.scanned);
        let Some(rel) = conn.rbuf[from..].iter().position(|&b| b == b'\n') else {
            break;
        };
        let nl = from + rel;
        shared.enqueue_v1(
            &conn.out,
            &mut conn.next_seq,
            conn.rbuf[start..=nl].to_vec(),
        );
        start = nl + 1;
    }
    conn.rbuf.drain(..start);
    conn.scanned = conn.rbuf.len();
}

fn parse_v2(shared: &Arc<Shared>, conn: &mut Conn) -> bool {
    let mut consumed = 0usize;
    let ok = loop {
        let base = consumed;
        let mut frames: Vec<FrameRef> = Vec::new();
        let mut poison: Option<(u64, String)> = None;
        while frames.len() < MAX_BATCH {
            let avail = conn.rbuf.len() - consumed;
            if avail < wire::HEADER_LEN {
                break;
            }
            let header = wire::decode_header(
                conn.rbuf[consumed..consumed + wire::HEADER_LEN]
                    .try_into()
                    .expect("HEADER_LEN bytes"),
            );
            if header.len > wire::MAX_PAYLOAD {
                poison = Some((
                    header.id,
                    format!(
                        "frame payload {} exceeds the {} byte cap",
                        header.len,
                        wire::MAX_PAYLOAD
                    ),
                ));
                break;
            }
            let total = wire::HEADER_LEN + header.len as usize;
            if avail < total {
                break;
            }
            frames.push(FrameRef {
                id: header.id,
                op: header.op,
                deadline_ms: header.extra,
                payload: (consumed + wire::HEADER_LEN - base, consumed + total - base),
            });
            consumed += total;
        }
        if !frames.is_empty() {
            let data = conn.rbuf[base..consumed].to_vec();
            shared.enqueue_v2(&conn.out, data, frames);
        }
        if let Some((id, message)) = poison {
            // The stream cannot be trusted past an oversized frame:
            // answer it, then cut the connection.
            let mut reject = Vec::new();
            wire::encode_frame(
                &mut reject,
                id,
                wire::status_of(ErrorKind::Malformed),
                0,
                message.as_bytes(),
            );
            conn.out.send(&reject);
            break false;
        }
        if consumed == base {
            break true; // nothing more complete in the buffer
        }
    };
    conn.rbuf.drain(..consumed);
    ok
}
