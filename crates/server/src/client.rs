//! Typed client for the hdpm TCP service, speaking both protocol
//! versions over one API.
//!
//! A [`Client`] owns one connection and runs in either of two modes:
//!
//! * **sync** — [`Client::call`] sends one request and blocks for its
//!   reply (no other requests may be outstanding);
//! * **pipelined** — [`Client::send`] buffers requests and returns
//!   their ids, [`Client::flush`] pushes them out, [`Client::recv`]
//!   returns replies as they arrive. Under v2 replies arrive **out of
//!   order**; the returned [`Reply::id`] says which request each one
//!   answers. Under v1 the server replies strictly in request order and
//!   the client assigns ids FIFO, so the same loop works unchanged.
//!
//! Ids are allocated by the client, monotonically from 1 per
//! connection. The v1 wire has no id field — the id is client-side
//! bookkeeping that makes the two protocols interchangeable behind this
//! API (the load generator's `--proto` flag is one `match` at connect
//! time).
//!
//! ```no_run
//! use hdpm_netlist::{ModuleKind, ModuleSpec};
//! use hdpm_server::client::{Client, Proto, Request, Response};
//!
//! let mut client = Client::connect("127.0.0.1:7070", Proto::V2)?;
//! let reply = client.call(
//!     &Request::Characterize { spec: ModuleSpec::new(ModuleKind::RippleAdder, 8) },
//!     None,
//! )?;
//! match reply.response {
//!     Response::Characterize(c) => println!("{} transitions", c.transitions),
//!     other => panic!("unexpected reply {other:?}"),
//! }
//! # Ok::<(), hdpm_server::client::ClientError>(())
//! ```

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use hdpm_core::Fidelity;
use hdpm_netlist::{ModuleSpec, ModuleWidth};
use hdpm_streams::DataType;

use crate::wire;

/// Which protocol to speak on a connection. Negotiated by the client:
/// the server follows the first byte it receives ([`wire::MAGIC`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// JSON lines, replies in request order.
    V1,
    /// Binary frames, replies out of order, in-band deadlines.
    V2,
}

impl Proto {
    /// The flag spelling (`v1` / `v2`), as accepted by the load
    /// generator's `--proto`.
    pub fn as_str(self) -> &'static str {
        match self {
            Proto::V1 => "v1",
            Proto::V2 => "v2",
        }
    }

    /// Parse the flag spelling.
    pub fn parse(text: &str) -> Option<Proto> {
        match text {
            "v1" => Some(Proto::V1),
            "v2" => Some(Proto::V2),
            _ => None,
        }
    }
}

/// One request, protocol-agnostic. The client encodes it as a JSON line
/// (v1) or a binary frame (v2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Request {
    /// Analytic power estimate for a module under a named input
    /// distribution.
    Estimate {
        /// Module kind and operand widths.
        spec: ModuleSpec,
        /// Input data class (paper table I–V).
        data: DataType,
        /// Stream length used for the distribution fit.
        cycles: u32,
        /// Stream generator seed.
        seed: u64,
        /// Minimum fidelity tier accepted; `None` defers to the
        /// server's configured floor.
        floor: Option<Fidelity>,
    },
    /// Force a model into the cache (characterize if absent).
    Characterize {
        /// Module kind and operand widths.
        spec: ModuleSpec,
    },
    /// Engine counter snapshot.
    Stats,
    /// Liveness no-op (v2 only — v1 has no ping op).
    Ping,
}

impl Request {
    fn opcode(&self) -> wire::Opcode {
        match self {
            Request::Estimate { .. } => wire::Opcode::Estimate,
            Request::Characterize { .. } => wire::Opcode::Characterize,
            Request::Stats => wire::Opcode::Stats,
            Request::Ping => wire::Opcode::Ping,
        }
    }
}

/// An estimate answer (v1 `estimate` reply / v2 ok frame).
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateAnswer {
    /// Expected charge dissipated per cycle (µC, paper Eq. 9).
    pub charge_per_cycle: f64,
    /// The same quantity via the average-HD shortcut (Eq. 10).
    pub via_average: f64,
    /// Mean input Hamming distance of the fitted distribution.
    pub average_hd: f64,
    /// Where the model came from: `memory`, `disk`, `fresh`,
    /// `coalesced`, `memo` (v2 reply-memo hit), `analytic` or
    /// `regressed` (fidelity-ladder tiers).
    pub source: String,
    /// Fidelity tier of the answer.
    pub fidelity: Fidelity,
    /// Confidence in `[0, 1]` (1.0 for full fidelity).
    pub confidence: f64,
}

/// A characterize answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharacterizeAnswer {
    /// Total input bits of the characterized module.
    pub input_bits: u32,
    /// Transitions simulated during characterization.
    pub transitions: u64,
    /// Patterns applied when the charge tables converged, if they did.
    pub converged_after: Option<u64>,
    /// Where the model came from.
    pub source: String,
}

/// An engine stats snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsAnswer {
    /// Models resident in the memory tier.
    pub entries: u64,
    /// Memory-tier capacity.
    pub capacity: u64,
    /// Memory-tier hits.
    pub hits: u64,
    /// Memory-tier misses.
    pub misses: u64,
    /// Models evicted from the memory tier.
    pub evictions: u64,
    /// Disk-tier hits.
    pub disk_hits: u64,
    /// Characterizations run.
    pub characterizations: u64,
    /// Requests that coalesced onto another request's characterization.
    pub coalesced: u64,
    /// Characterizations in flight.
    pub inflight: u64,
    /// Estimates answered by the tier-A analytic model.
    pub analytic_served: u64,
    /// Estimates answered by a tier-B sibling regression.
    pub regressed_served: u64,
    /// Background fidelity upgrades completed.
    pub upgrades_done: u64,
}

/// One decoded reply body.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful estimate.
    Estimate(EstimateAnswer),
    /// Successful characterize.
    Characterize(CharacterizeAnswer),
    /// Successful stats snapshot.
    Stats(StatsAnswer),
    /// Successful ping (v2).
    Pong,
    /// A structured server-side error (`timeout`, `overloaded`, …) —
    /// part of normal operation, not a transport failure.
    Error {
        /// The error kind string (`ErrorKind::as_str` spelling).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

/// One reply, correlated to the request it answers.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Id returned by [`Client::send`] for the request this answers.
    pub id: u64,
    /// The request's deadline expired while it executed; this is the
    /// full (late) answer. v2 only — v1 never sets it.
    pub late: bool,
    /// The decoded reply body.
    pub response: Response,
}

/// A client-side failure: transport error, or a reply the client could
/// not make sense of. Server-side errors are [`Response::Error`], not
/// this.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (includes EOF with replies outstanding).
    Io(io::Error),
    /// A reply that violates the protocol (bad frame, bogus JSON,
    /// unknown source code, …).
    Protocol(String),
    /// The request cannot be expressed on the negotiated protocol.
    Unsupported(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClientError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A connection to the server, in the mode fixed at
/// [`Client::connect`].
pub struct Client {
    proto: Proto,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    /// v1: ids in send order (replies are FIFO).
    fifo: VecDeque<(u64, wire::Opcode)>,
    /// v2: outstanding ids → the opcode sent, for reply decoding.
    pending: HashMap<u64, wire::Opcode>,
}

impl Client {
    /// Connect and negotiate `proto` (for v2: write the [`wire::MAGIC`]
    /// preamble).
    ///
    /// # Errors
    ///
    /// Connection or preamble-write failure.
    pub fn connect(addr: impl ToSocketAddrs, proto: Proto) -> io::Result<Client> {
        Client::from_stream(TcpStream::connect(addr)?, proto)
    }

    /// Wrap an existing stream (so callers can set timeouts first) and
    /// negotiate `proto`.
    ///
    /// # Errors
    ///
    /// Stream duplication or preamble-write failure.
    pub fn from_stream(stream: TcpStream, proto: Proto) -> io::Result<Client> {
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone()?;
        let mut client = Client {
            proto,
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            next_id: 1,
            fifo: VecDeque::new(),
            pending: HashMap::new(),
        };
        if proto == Proto::V2 {
            client.writer.write_all(&wire::MAGIC)?;
        }
        Ok(client)
    }

    /// The negotiated protocol.
    pub fn proto(&self) -> Proto {
        self.proto
    }

    /// Outstanding requests (sent or buffered, reply not yet received).
    pub fn outstanding(&self) -> usize {
        self.fifo.len() + self.pending.len()
    }

    /// Buffer one request and return its id. Nothing hits the wire
    /// until [`Client::flush`] (or the buffer fills); pipelined callers
    /// send a window of requests and then drain replies with
    /// [`Client::recv`].
    ///
    /// `deadline_ms` sets the per-request deadline (v2: in band,
    /// covering decode → write on the server; v1: the `deadline_ms`
    /// field, covering queue wait).
    ///
    /// # Errors
    ///
    /// Transport failure, or [`Request::Ping`] on a v1 connection.
    pub fn send(
        &mut self,
        request: &Request,
        deadline_ms: Option<u32>,
    ) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        match self.proto {
            Proto::V1 => {
                let line = encode_v1(request, deadline_ms)?;
                self.writer.write_all(line.as_bytes())?;
                self.writer.write_all(b"\n")?;
                self.fifo.push_back((id, request.opcode()));
            }
            Proto::V2 => {
                let mut frame = Vec::with_capacity(wire::HEADER_LEN + wire::ESTIMATE_REQ_LEN);
                let payload: Vec<u8> = match request {
                    Request::Estimate {
                        spec,
                        data,
                        cycles,
                        seed,
                        floor,
                    } => wire::encode_estimate_request(&wire::EstimateParams {
                        spec: *spec,
                        data: *data,
                        cycles: *cycles,
                        seed: *seed,
                        floor: *floor,
                    })
                    .to_vec(),
                    Request::Characterize { spec } => {
                        wire::encode_characterize_request(&wire::CharacterizeParams { spec: *spec })
                            .to_vec()
                    }
                    Request::Stats | Request::Ping => Vec::new(),
                };
                wire::encode_frame(
                    &mut frame,
                    id,
                    request.opcode() as u8,
                    deadline_ms.unwrap_or(0),
                    &payload,
                );
                self.writer.write_all(&frame)?;
                self.pending.insert(id, request.opcode());
            }
        }
        Ok(id)
    }

    /// Push buffered requests to the socket.
    ///
    /// # Errors
    ///
    /// Transport failure.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Block for the next reply. Under v2 this is whichever request the
    /// server finished first; correlate with [`Reply::id`].
    ///
    /// # Errors
    ///
    /// Transport failure (including EOF), a reply violating the
    /// protocol, or no requests outstanding.
    pub fn recv(&mut self) -> Result<Reply, ClientError> {
        if self.outstanding() == 0 {
            return Err(ClientError::Protocol(
                "recv with nothing outstanding".into(),
            ));
        }
        match self.proto {
            Proto::V1 => self.recv_v1(),
            Proto::V2 => self.recv_v2(),
        }
    }

    /// Sync mode: send one request, flush, and block for its reply.
    ///
    /// # Errors
    ///
    /// As [`Client::send`] / [`Client::recv`]; also refuses when
    /// pipelined requests are outstanding (their replies would
    /// interleave).
    pub fn call(
        &mut self,
        request: &Request,
        deadline_ms: Option<u32>,
    ) -> Result<Reply, ClientError> {
        if self.outstanding() > 0 {
            return Err(ClientError::Protocol(
                "call() with pipelined requests outstanding".into(),
            ));
        }
        let id = self.send(request, deadline_ms)?;
        self.flush()?;
        let reply = self.recv()?;
        if reply.id != id {
            return Err(ClientError::Protocol(format!(
                "reply id {} does not match request id {id}",
                reply.id
            )));
        }
        Ok(reply)
    }

    fn recv_v1(&mut self) -> Result<Reply, ClientError> {
        let (id, _op) = self.fifo.pop_front().expect("outstanding checked");
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed with replies outstanding",
            )));
        }
        let response = decode_v1(line.trim_end())?;
        Ok(Reply {
            id,
            late: false,
            response,
        })
    }

    fn recv_v2(&mut self) -> Result<Reply, ClientError> {
        // A pre-negotiation rejection (connection limit) is the one case
        // where a v2 client sees v1 bytes: a JSON error line. Its first
        // byte `{` can never begin a frame ≤ MAX_PAYLOAD.
        let mut first = [0u8; 1];
        self.reader.read_exact(&mut first)?;
        if first[0] == b'{' {
            let mut rest = String::new();
            self.reader.read_line(&mut rest)?;
            let response = decode_v1(&format!("{{{}", rest.trim_end()))?;
            let id = *self.pending.keys().min().expect("outstanding checked");
            self.pending.remove(&id);
            return Ok(Reply {
                id,
                late: false,
                response,
            });
        }
        let mut raw = [0u8; wire::HEADER_LEN];
        raw[0] = first[0];
        self.reader.read_exact(&mut raw[1..])?;
        let header = wire::decode_header(&raw);
        if header.len > wire::MAX_PAYLOAD {
            return Err(ClientError::Protocol(format!(
                "reply frame announces {} bytes (max {})",
                header.len,
                wire::MAX_PAYLOAD
            )));
        }
        let mut payload = vec![0u8; header.len as usize];
        self.reader.read_exact(&mut payload)?;
        let Some(op) = self.pending.remove(&header.id) else {
            return Err(ClientError::Protocol(format!(
                "reply for unknown request id {}",
                header.id
            )));
        };
        let late = header.extra & wire::FLAG_LATE != 0;
        let response = if header.op == wire::STATUS_OK {
            decode_v2_ok(op, &payload)?
        } else {
            let kind = wire::kind_of(header.op).map_or_else(
                || format!("status_{}", header.op),
                |k| k.as_str().to_string(),
            );
            Response::Error {
                kind,
                message: String::from_utf8_lossy(&payload).into_owned(),
            }
        };
        Ok(Reply {
            id: header.id,
            late,
            response,
        })
    }
}

fn encode_v1(request: &Request, deadline_ms: Option<u32>) -> Result<String, ClientError> {
    use std::fmt::Write as _;
    let mut line = String::with_capacity(96);
    match request {
        Request::Estimate {
            spec,
            data,
            cycles,
            seed,
            floor,
        } => {
            write!(
                line,
                "{{\"op\":\"estimate\",\"module\":\"{}\"{},\"data\":\"{}\",\"cycles\":{cycles},\"seed\":{seed}",
                spec.kind,
                width_fields(spec.width),
                data.name(),
            )
            .expect("write to string");
            if let Some(floor) = floor {
                write!(line, ",\"fidelity_floor\":\"{floor}\"").expect("write to string");
            }
        }
        Request::Characterize { spec } => {
            write!(
                line,
                "{{\"op\":\"characterize\",\"module\":\"{}\"{}",
                spec.kind,
                width_fields(spec.width),
            )
            .expect("write to string");
        }
        Request::Stats => line.push_str("{\"op\":\"stats\""),
        Request::Ping => return Err(ClientError::Unsupported("ping is v2-only")),
    }
    if let Some(ms) = deadline_ms {
        write!(line, ",\"deadline_ms\":{ms}").expect("write to string");
    }
    line.push('}');
    Ok(line)
}

fn width_fields(width: ModuleWidth) -> String {
    match width {
        ModuleWidth::Uniform(w) => format!(",\"width\":{w}"),
        ModuleWidth::Rect(m1, m2) => format!(",\"width\":{m1},\"width2\":{m2}"),
    }
}

fn decode_v1(line: &str) -> Result<Response, ClientError> {
    let value: serde_json::Value = serde_json::from_str(line)
        .map_err(|e| ClientError::Protocol(format!("bad v1 reply JSON: {e}")))?;
    let ok = value
        .get("ok")
        .and_then(serde_json::Value::as_bool)
        .ok_or_else(|| ClientError::Protocol("v1 reply without `ok`".into()))?;
    if !ok {
        let error = value
            .get("error")
            .cloned()
            .unwrap_or(serde_json::Value::Null);
        return Ok(Response::Error {
            kind: str_field(&error, "kind").unwrap_or_else(|_| "unknown".into()),
            message: str_field(&error, "message").unwrap_or_default(),
        });
    }
    match value.get("op").and_then(serde_json::Value::as_str) {
        Some("estimate") => {
            let fidelity_str = str_field(&value, "fidelity")?;
            Ok(Response::Estimate(EstimateAnswer {
                charge_per_cycle: f64_field(&value, "charge_per_cycle")?,
                via_average: f64_field(&value, "via_average")?,
                average_hd: f64_field(&value, "average_hd")?,
                source: str_field(&value, "source")?,
                fidelity: Fidelity::parse(&fidelity_str).ok_or_else(|| {
                    ClientError::Protocol(format!("unknown fidelity `{fidelity_str}`"))
                })?,
                confidence: f64_field(&value, "confidence")?,
            }))
        }
        Some("characterize") => {
            Ok(Response::Characterize(CharacterizeAnswer {
                input_bits: u64_field(&value, "input_bits")? as u32,
                transitions: u64_field(&value, "transitions")?,
                converged_after: match value.get("converged_after") {
                    None | Some(serde_json::Value::Null) => None,
                    Some(v) => Some(v.as_u64().ok_or_else(|| {
                        ClientError::Protocol("non-integer converged_after".into())
                    })?),
                },
                source: str_field(&value, "source")?,
            }))
        }
        Some("stats") => Ok(Response::Stats(StatsAnswer {
            entries: u64_field(&value, "entries")?,
            capacity: u64_field(&value, "capacity")?,
            hits: u64_field(&value, "hits")?,
            misses: u64_field(&value, "misses")?,
            evictions: u64_field(&value, "evictions")?,
            disk_hits: u64_field(&value, "disk_hits")?,
            characterizations: u64_field(&value, "characterizations")?,
            coalesced: u64_field(&value, "coalesced")?,
            inflight: u64_field(&value, "inflight")?,
            analytic_served: u64_field(&value, "analytic_served")?,
            regressed_served: u64_field(&value, "regressed_served")?,
            upgrades_done: u64_field(&value, "upgrades_done")?,
        })),
        other => Err(ClientError::Protocol(format!(
            "v1 reply with unexpected op {other:?}"
        ))),
    }
}

fn decode_v2_ok(op: wire::Opcode, payload: &[u8]) -> Result<Response, ClientError> {
    match op {
        wire::Opcode::Estimate => {
            let reply = wire::decode_estimate_reply(payload).map_err(ClientError::Protocol)?;
            Ok(Response::Estimate(EstimateAnswer {
                charge_per_cycle: reply.charge_per_cycle,
                via_average: reply.via_average,
                average_hd: reply.average_hd,
                source: wire::source_str(reply.source)
                    .ok_or_else(|| {
                        ClientError::Protocol(format!("unknown source code {}", reply.source))
                    })?
                    .to_string(),
                fidelity: reply.fidelity,
                confidence: reply.confidence,
            }))
        }
        wire::Opcode::Characterize => {
            let reply = wire::decode_characterize_reply(payload).map_err(ClientError::Protocol)?;
            Ok(Response::Characterize(CharacterizeAnswer {
                input_bits: reply.input_bits,
                transitions: reply.transitions,
                converged_after: reply.converged_after,
                source: wire::source_str(reply.source)
                    .ok_or_else(|| {
                        ClientError::Protocol(format!("unknown source code {}", reply.source))
                    })?
                    .to_string(),
            }))
        }
        wire::Opcode::Stats => {
            let reply = wire::decode_stats_reply(payload).map_err(ClientError::Protocol)?;
            Ok(Response::Stats(StatsAnswer {
                entries: reply.entries,
                capacity: reply.capacity,
                hits: reply.hits,
                misses: reply.misses,
                evictions: reply.evictions,
                disk_hits: reply.disk_hits,
                characterizations: reply.characterizations,
                coalesced: reply.coalesced,
                inflight: reply.inflight,
                analytic_served: reply.analytic_served,
                regressed_served: reply.regressed_served,
                upgrades_done: reply.upgrades_done,
            }))
        }
        wire::Opcode::Ping => {
            if payload.is_empty() {
                Ok(Response::Pong)
            } else {
                Err(ClientError::Protocol("non-empty pong payload".into()))
            }
        }
        // The cluster ops are node-to-node; this client never sends
        // them, so a reply under one of their ids is a peer bug.
        wire::Opcode::FetchModel | wire::Opcode::HaveModel | wire::Opcode::WarmKeys => {
            Err(ClientError::Protocol(format!(
                "unexpected {} reply (cluster ops are not client ops)",
                op.as_str()
            )))
        }
    }
}

fn f64_field(value: &serde_json::Value, key: &str) -> Result<f64, ClientError> {
    value
        .get(key)
        .and_then(serde_json::Value::as_f64)
        .ok_or_else(|| ClientError::Protocol(format!("v1 reply missing number `{key}`")))
}

fn u64_field(value: &serde_json::Value, key: &str) -> Result<u64, ClientError> {
    value
        .get(key)
        .and_then(serde_json::Value::as_u64)
        .ok_or_else(|| ClientError::Protocol(format!("v1 reply missing integer `{key}`")))
}

fn str_field(value: &serde_json::Value, key: &str) -> Result<String, ClientError> {
    value
        .get(key)
        .and_then(serde_json::Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| ClientError::Protocol(format!("v1 reply missing string `{key}`")))
}

#[cfg(test)]
mod tests {
    use hdpm_netlist::{ModuleKind, ModuleSpec, ModuleWidth};

    use super::*;

    #[test]
    fn v1_estimate_line_decodes_as_a_protocol_request() {
        let line = encode_v1(
            &Request::Estimate {
                spec: ModuleSpec::new(ModuleKind::CsaMultiplier, ModuleWidth::Rect(6, 4)),
                data: crate::protocol::data_type("speech").expect("known type"),
                cycles: 1500,
                seed: 11,
                floor: Some(Fidelity::Analytic),
            },
            Some(250),
        )
        .expect("encodable");
        let request = crate::protocol::decode(line.as_bytes())
            .expect("decodes")
            .expect("not blank");
        assert_eq!(request.op, "estimate");
        assert_eq!(request.module.as_deref(), Some("csa_multiplier"));
        assert_eq!(request.width, Some(6));
        assert_eq!(request.width2, Some(4));
        assert_eq!(request.data.as_deref(), Some("speech"));
        assert_eq!(request.cycles, Some(1500));
        assert_eq!(request.seed, Some(11));
        assert_eq!(request.deadline_ms, Some(250));
        assert_eq!(request.fidelity_floor.as_deref(), Some("analytic"));

        // No floor named → no field on the wire (server default applies).
        let line = encode_v1(
            &Request::Estimate {
                spec: ModuleSpec::new(ModuleKind::RippleAdder, 8),
                data: crate::protocol::data_type("random").expect("known type"),
                cycles: 500,
                seed: 1,
                floor: None,
            },
            None,
        )
        .expect("encodable");
        assert!(!line.contains("fidelity_floor"), "{line}");
    }

    #[test]
    fn v1_characterize_and_stats_lines_decode() {
        let line = encode_v1(
            &Request::Characterize {
                spec: ModuleSpec::new(ModuleKind::RippleAdder, 8),
            },
            None,
        )
        .expect("encodable");
        let request = crate::protocol::decode(line.as_bytes())
            .expect("decodes")
            .expect("not blank");
        assert_eq!(request.op, "characterize");
        assert_eq!(request.width, Some(8));
        assert_eq!(request.width2, None);

        let line = encode_v1(&Request::Stats, None).expect("encodable");
        let request = crate::protocol::decode(line.as_bytes())
            .expect("decodes")
            .expect("not blank");
        assert_eq!(request.op, "stats");
    }

    #[test]
    fn ping_is_rejected_on_v1() {
        assert!(matches!(
            encode_v1(&Request::Ping, None),
            Err(ClientError::Unsupported(_))
        ));
    }

    #[test]
    fn v1_replies_decode_to_typed_responses() {
        let estimate = decode_v1(
            "{\"ok\":true,\"op\":\"estimate\",\"module\":\"ripple_adder_4\",\"data\":\"V (counter)\",\"charge_per_cycle\":67.77,\"via_average\":70.92,\"average_hd\":3.2,\"source\":\"memory\",\"fidelity\":\"full\",\"confidence\":1.0}",
        )
        .expect("decodes");
        assert!(matches!(
            estimate,
            Response::Estimate(EstimateAnswer { ref source, fidelity: Fidelity::Full, .. })
                if source == "memory"
        ));

        let tiered = decode_v1(
            "{\"ok\":true,\"op\":\"estimate\",\"module\":\"ripple_adder_4\",\"data\":\"random\",\"charge_per_cycle\":60.0,\"via_average\":61.0,\"average_hd\":3.1,\"source\":\"analytic\",\"fidelity\":\"analytic\",\"confidence\":0.25}",
        )
        .expect("decodes");
        assert!(matches!(
            tiered,
            Response::Estimate(EstimateAnswer { fidelity: Fidelity::Analytic, confidence, .. })
                if confidence == 0.25
        ));

        let characterize = decode_v1(
            "{\"ok\":true,\"op\":\"characterize\",\"module\":\"ripple_adder_4\",\"input_bits\":8,\"transitions\":1496,\"converged_after\":null,\"source\":\"fresh\"}",
        )
        .expect("decodes");
        assert_eq!(
            characterize,
            Response::Characterize(CharacterizeAnswer {
                input_bits: 8,
                transitions: 1496,
                converged_after: None,
                source: "fresh".into(),
            })
        );

        let error = decode_v1(
            "{\"ok\":false,\"error\":{\"kind\":\"timeout\",\"message\":\"deadline exceeded\"}}",
        )
        .expect("decodes");
        assert_eq!(
            error,
            Response::Error {
                kind: "timeout".into(),
                message: "deadline exceeded".into(),
            }
        );
    }
}
