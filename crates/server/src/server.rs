//! The TCP service: reactor pool → bounded queue → worker pool, wrapped
//! around one shared [`PowerEngine`].
//!
//! Threading model (fixed thread count, independent of connection
//! count):
//!
//! * one **accept** thread admits connections (up to
//!   [`ServerConfig::max_connections`]; beyond that, an `overloaded`
//!   reply and an immediate close) and assigns them round-robin to the
//!   reactors;
//! * a **fixed reactor pool** ([`crate::reactor`]) multiplexes every
//!   connection over epoll: protocol negotiation (v1 JSON lines / v2
//!   binary frames), framing into the bounded queue, write-side
//!   drainage, idle reaping and write timeouts. An idle connection
//!   costs one registered fd, not a thread;
//! * a **fixed worker pool** drains the queue and executes requests
//!   against the shared engine, so concurrent misses on one model still
//!   coalesce through the engine's single-flight path.
//!
//! v1 replies on one connection are written in request order even
//! though workers complete out of order (the per-connection sequencer
//! lives in [`crate::reactor::ConnOut`]); v2 replies carry request ids
//! and complete **out of order** — one slow characterization no longer
//! stalls the pipelined requests behind it.
//!
//! Robustness: per-request deadlines (v1: queue wait; v2: in-band,
//! covering decode → write, with late completions labeled
//! [`crate::wire::FLAG_LATE`]), idle reaping, write timeouts that cut
//! slow readers instead of blocking a worker, and tolerance of
//! malformed input. [`Server::shutdown`] drains gracefully: stop
//! accepting, stop reading, finish every queued request, flush, join
//! every pool, report totals.
//!
//! # Observability
//!
//! When [`ServerConfig::tracing`] is on (the default), every v1 request
//! (and every v2 batch) gets a [`TraceCtx`] riding the [`Job`] through
//! the pipeline, accumulating per-stage timings. v1 replies echo the
//! trace id as `"trace":"t…"`; completed traces land in the flight
//! recorder (`/tracez`, dumped on drain) and the
//! `server.stage_ns{stage=…}` histograms; requests slower than
//! [`ServerConfig::slow_threshold`] emit one `{"type":"slow_request",…}`
//! line on stderr. The optional admin plane
//! ([`ServerConfig::admin_addr`], `crate::admin`) serves `/metrics`,
//! `/healthz`, `/readyz` and `/tracez`. v2 traces are **per batch** (a
//! read burst of frames shares one trace): ids are already in band, and
//! per-frame contexts would cost more than the requests they measure.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hdpm_core::persist::{self, EnvelopeMeta};
use hdpm_core::{resolve_threads, Characterization, Fidelity, PowerEngine};
use hdpm_telemetry as telemetry;
use hdpm_telemetry::{trace as trace_mod, Stage, TraceCtx};
use poller::Poller;
use serde::{Serialize, Value};

use crate::admin::AdminServer;
use crate::cluster::{self, ClusterRuntime};
use crate::config::ServerConfig;
use crate::protocol::{self, ErrorKind};
use crate::queue::{Bounded, PushError};
use crate::reactor::{self, ConnOut, Mail, ReactorHandle};
use crate::wire;

/// Totals accumulated over a server's lifetime, returned by
/// [`Server::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct DrainReport {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered ok (v1 `ok:true` lines and v2 ok frames).
    pub ok: u64,
    /// Requests answered with a structured error (malformed, bad
    /// request, engine failure).
    pub errors: u64,
    /// Requests shed with `overloaded` (queue full, draining, or the
    /// connection limit).
    pub shed: u64,
    /// Requests answered with `timeout` (v1: expired in the queue; v2:
    /// in-band deadline expired before execution).
    pub timeouts: u64,
}

#[derive(Default)]
struct Totals {
    connections: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    timeouts: AtomicU64,
}

impl Totals {
    fn report(&self) -> DrainReport {
        DrainReport {
            connections: self.connections.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }
}

/// One reference into a [`V2Batch`]'s data: a single frame.
pub(crate) struct FrameRef {
    /// Request id, echoed in the reply.
    pub(crate) id: u64,
    /// Raw opcode byte (validated at execution).
    pub(crate) op: u8,
    /// In-band deadline in ms (0 = none).
    pub(crate) deadline_ms: u32,
    /// Payload byte range within the batch data.
    pub(crate) payload: (usize, usize),
}

/// One framed v1 request line awaiting a worker.
pub(crate) struct V1Job {
    seq: u64,
    raw: Vec<u8>,
    out: Arc<ConnOut>,
    enqueued: Instant,
    trace: TraceCtx,
}

/// One read burst of v2 frames awaiting a worker. Batching amortizes
/// the queue handoff and the reply write across every frame the socket
/// delivered together — the main lever behind the v2 throughput bar.
pub(crate) struct V2Batch {
    data: Vec<u8>,
    frames: Vec<FrameRef>,
    out: Arc<ConnOut>,
    enqueued: Instant,
    trace: TraceCtx,
}

/// A unit of queued work.
pub(crate) enum Job {
    V1(V1Job),
    V2(V2Batch),
}

/// Everything needed to close out a request's trace once its reply is
/// on the wire (or abandoned): the completed context, what the request
/// was, and how it ended. Created by the worker, consumed by the writer
/// side so the socket-write stage covers sequencer hold + the actual
/// write.
pub(crate) struct TraceFinish {
    pub(crate) trace: TraceCtx,
    pub(crate) op: String,
    pub(crate) detail: String,
    pub(crate) status: String,
    pub(crate) slow_threshold: Duration,
    /// [`telemetry::clock::now_ns`] when the worker handed the reply to
    /// the write side.
    pub(crate) submitted_ns: u64,
}

/// Canonical metric keys of the `server.stage_ns{stage=…}` series,
/// pre-rendered (and verified against [`telemetry::metric_key`] by a
/// test) so the per-request stage flush allocates nothing.
const STAGE_KEYS: [&str; trace_mod::STAGE_COUNT] = [
    "server.stage_ns{stage=\"decode\"}",
    "server.stage_ns{stage=\"queue_wait\"}",
    "server.stage_ns{stage=\"cache_lookup\"}",
    "server.stage_ns{stage=\"single_flight_wait\"}",
    "server.stage_ns{stage=\"characterize\"}",
    "server.stage_ns{stage=\"estimate\"}",
    "server.stage_ns{stage=\"serialize\"}",
    "server.stage_ns{stage=\"socket_write\"}",
];

impl TraceFinish {
    /// Record the socket-write stage, file the trace with the flight
    /// recorder and the stage histograms, and emit the slow-request log
    /// line if the end-to-end time crossed the threshold.
    pub(crate) fn complete(mut self, wrote: bool) {
        if wrote {
            self.trace.add(
                Stage::SocketWrite,
                telemetry::clock::now_ns().saturating_sub(self.submitted_ns),
            );
        }
        let record = self.trace.finish_owned(self.op, self.detail, self.status);
        // Flush every nonzero stage under one registry lock, with keys
        // resolved at compile time: the warm path allocates nothing here.
        let mut pairs = [("", 0u64); trace_mod::STAGE_COUNT];
        let mut nonzero = 0;
        for stage in trace_mod::STAGES {
            let ns = record.stages[stage as usize];
            if ns > 0 {
                pairs[nonzero] = (STAGE_KEYS[stage as usize], ns);
                nonzero += 1;
            }
        }
        telemetry::record_durations_ns(&pairs[..nonzero]);
        let slow =
            record.total_ns > u64::try_from(self.slow_threshold.as_nanos()).unwrap_or(u64::MAX);
        if slow {
            telemetry::counter_add("server.request.slow", 1);
            // One self-contained JSON line on stderr, greppable by trace
            // id, regardless of the telemetry output mode.
            let record_json = record.to_json();
            eprintln!("{{\"type\":\"slow_request\",{}", &record_json[1..]);
        }
        trace_mod::recorder().push(record);
    }
}

/// A v1 reply line plus the trace bookkeeping owed once it is written.
pub(crate) struct Reply {
    pub(crate) line: String,
    pub(crate) finish: Option<Box<TraceFinish>>,
}

/// Outcome of processing one v1 job, before the reply reaches the wire.
struct Outcome {
    line: String,
    op: String,
    detail: String,
    status: String,
}

pub(crate) struct Shared {
    engine: Arc<PowerEngine>,
    /// Fidelity floor applied to estimate requests that don't name one
    /// ([`ServerConfig::fidelity_floor`]).
    default_floor: Fidelity,
    queue: Bounded<Job>,
    draining: AtomicBool,
    /// Workers joined; reactors flush what remains and exit.
    finished: AtomicBool,
    /// Reactors that muted their read interests for the drain.
    drain_acks: AtomicUsize,
    connections: AtomicUsize,
    totals: Totals,
    deadline: Option<Duration>,
    idle_timeout: Duration,
    write_timeout: Duration,
    max_connections: usize,
    tracing: bool,
    slow_threshold: Duration,
    /// The engine's disk tier root, probed by `/readyz`.
    store_root: Option<PathBuf>,
    /// Cluster mode, when configured: the ring, peer health, counters
    /// and this node's ensure gate.
    cluster: Option<ClusterRuntime>,
}

impl Shared {
    pub(crate) fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    pub(crate) fn finished(&self) -> bool {
        self.finished.load(Ordering::Relaxed)
    }

    pub(crate) fn ack_drain(&self) {
        self.drain_acks.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn idle_timeout(&self) -> Duration {
        self.idle_timeout
    }

    pub(crate) fn write_timeout(&self) -> Duration {
        self.write_timeout
    }

    pub(crate) fn release_connection(&self) {
        self.connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// A fresh trace context when tracing is on, an inert one otherwise.
    fn new_trace(&self) -> TraceCtx {
        if self.tracing {
            TraceCtx::new()
        } else {
            TraceCtx::disabled()
        }
    }

    /// Attach the trace id to a pre-rendered error line and build its
    /// [`Reply`] (with trace bookkeeping when tracing is on).
    fn error_reply(
        &self,
        trace: TraceCtx,
        kind: ErrorKind,
        message: &str,
        detail: String,
    ) -> Reply {
        let mut value = protocol::error_value(kind, message);
        let finish = if trace.is_enabled() {
            protocol::attach_trace(&mut value, &trace.id_string());
            Some(Box::new(TraceFinish {
                trace,
                op: String::new(),
                detail,
                status: kind.as_str().to_string(),
                slow_threshold: self.slow_threshold,
                submitted_ns: telemetry::clock::now_ns(),
            }))
        } else {
            None
        };
        Reply {
            line: protocol::render(&value),
            finish,
        }
    }

    /// Frame one raw v1 line into the queue, shedding with a structured
    /// reply when the queue refuses it. Blank lines are skipped without
    /// consuming a sequence number (no reply is owed for them).
    pub(crate) fn enqueue_v1(&self, out: &Arc<ConnOut>, next_seq: &mut u64, raw: Vec<u8>) {
        if protocol::trim_line(&raw)
            .iter()
            .all(u8::is_ascii_whitespace)
        {
            return;
        }
        let seq = *next_seq;
        *next_seq += 1;
        out.begin_job();
        let job = V1Job {
            seq,
            raw,
            out: Arc::clone(out),
            enqueued: Instant::now(),
            trace: self.new_trace(),
        };
        match self.queue.try_push(Job::V1(job)) {
            Ok(depth) => telemetry::gauge_set("server.queue.depth", depth as f64),
            Err(PushError::Full(Job::V1(job))) => {
                self.totals.shed.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.queue.shed_full", 1);
                let reply = self.error_reply(
                    job.trace,
                    ErrorKind::Overloaded,
                    &format!(
                        "queue full ({} requests queued): request shed",
                        self.queue.capacity()
                    ),
                    String::new(),
                );
                job.out.submit_v1(job.seq, Some(reply));
                job.out.finish_job();
            }
            Err(PushError::Closed(Job::V1(job))) => {
                self.totals.shed.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.queue.shed_draining", 1);
                let reply = self.error_reply(
                    job.trace,
                    ErrorKind::Overloaded,
                    "server draining: request shed",
                    String::new(),
                );
                job.out.submit_v1(job.seq, Some(reply));
                job.out.finish_job();
            }
            Err(_) => unreachable!("push errors return the pushed job"),
        }
    }

    /// Frame one batch of v2 frames into the queue, answering every
    /// frame with an `overloaded` error frame when the queue refuses
    /// the batch.
    pub(crate) fn enqueue_v2(&self, out: &Arc<ConnOut>, data: Vec<u8>, frames: Vec<FrameRef>) {
        out.begin_job();
        let batch = V2Batch {
            data,
            frames,
            out: Arc::clone(out),
            enqueued: Instant::now(),
            trace: self.new_trace(),
        };
        match self.queue.try_push(Job::V2(batch)) {
            Ok(depth) => telemetry::gauge_set("server.queue.depth", depth as f64),
            Err(PushError::Full(Job::V2(batch))) => {
                telemetry::counter_add("server.queue.shed_full", 1);
                self.shed_batch(
                    &batch,
                    &format!(
                        "queue full ({} batches queued): request shed",
                        self.queue.capacity()
                    ),
                );
            }
            Err(PushError::Closed(Job::V2(batch))) => {
                telemetry::counter_add("server.queue.shed_draining", 1);
                self.shed_batch(&batch, "server draining: request shed");
            }
            Err(_) => unreachable!("push errors return the pushed job"),
        }
    }

    fn shed_batch(&self, batch: &V2Batch, message: &str) {
        self.totals
            .shed
            .fetch_add(batch.frames.len() as u64, Ordering::Relaxed);
        let mut replies =
            Vec::with_capacity(batch.frames.len() * (wire::HEADER_LEN + message.len()));
        for frame in &batch.frames {
            wire::encode_frame(
                &mut replies,
                frame.id,
                wire::status_of(ErrorKind::Overloaded),
                0,
                message.as_bytes(),
            );
        }
        batch.out.send(&replies);
        batch.out.finish_job();
    }

    /// Execute one v1 job: decode, enforce the deadline, run the op,
    /// render the reply (trace id attached when tracing). Returns `None`
    /// when no output is owed (blank line). Per-stage timings accumulate
    /// into the job's trace; `server.request_ns` keeps measuring
    /// processing time only (decode → render), as before.
    fn process_v1(&self, job: &mut V1Job, waited: Duration) -> Option<Outcome> {
        let started = Instant::now();
        let trace = &mut job.trace;
        let decoded = trace.time(Stage::Decode, || {
            protocol::decode(protocol::trim_line(&job.raw))
        });
        let request = match decoded {
            Ok(Some(request)) => request,
            Ok(None) => return None,
            Err((kind, message)) => {
                self.totals.errors.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.request.error", 1);
                return Some(self.render_error(trace, started, kind, &message, String::new()));
            }
        };
        let op = request.op.clone();
        let detail = protocol::request_detail(&request);
        let requested = request.deadline_ms.map(Duration::from_millis);
        let limit = match (self.deadline, requested) {
            (Some(server), Some(request)) => Some(server.min(request)),
            (Some(server), None) => Some(server),
            (None, request) => request,
        };
        if let Some(limit) = limit {
            if waited > limit {
                self.totals.timeouts.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.queue.timeout", 1);
                let message = format!(
                    "deadline exceeded: queued {} ms, limit {} ms",
                    waited.as_millis(),
                    limit.as_millis()
                );
                let mut outcome =
                    self.render_error(trace, started, ErrorKind::Timeout, &message, detail);
                outcome.op = op;
                return Some(outcome);
            }
        }
        // Below-full estimate floors are served instantly from the
        // local fidelity ladder even on non-owner nodes — the background
        // upgrade hook routes ownership afterwards. Full-fidelity
        // estimates and every other spec-bearing op still block on
        // cluster ensure as before.
        let floor =
            protocol::effective_floor(&request, self.default_floor).unwrap_or(Fidelity::Full);
        if let (Some(rt), Some(root)) = (&self.cluster, &self.store_root) {
            if let Some(spec) = protocol::request_spec(&request) {
                if request.op != "estimate" || floor == Fidelity::Full {
                    cluster::ensure_model(rt, &self.engine, root, spec);
                }
            }
        }
        let (value, status) = match protocol::handle_traced_with_floor(
            &self.engine,
            &request,
            self.default_floor,
            trace,
        ) {
            Ok(reply) => {
                self.totals.ok.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.request.ok", 1);
                (reply, "ok".to_string())
            }
            Err((kind, message)) => {
                self.totals.errors.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.request.error", 1);
                (
                    protocol::error_value(kind, &message),
                    kind.as_str().to_string(),
                )
            }
        };
        let trace_id = trace.is_enabled().then(|| trace.id());
        let line = trace.time(Stage::Serialize, || {
            let mut line = protocol::render(&value);
            if let Some(id) = trace_id {
                protocol::append_trace_id(&mut line, id);
            }
            line
        });
        telemetry::record_duration_ns("server.request_ns", started.elapsed().as_nanos() as u64);
        Some(Outcome {
            line,
            op,
            detail,
            status,
        })
    }

    /// Render a structured v1 error outcome (trace id attached when
    /// tracing), accounting its render time to the serialize stage and
    /// closing out `server.request_ns`.
    fn render_error(
        &self,
        trace: &mut TraceCtx,
        started: Instant,
        kind: ErrorKind,
        message: &str,
        detail: String,
    ) -> Outcome {
        let trace_id = trace.is_enabled().then(|| trace.id());
        let line = trace.time(Stage::Serialize, || {
            let mut line = protocol::error_line(kind, message);
            if let Some(id) = trace_id {
                protocol::append_trace_id(&mut line, id);
            }
            line
        });
        telemetry::record_duration_ns("server.request_ns", started.elapsed().as_nanos() as u64);
        Outcome {
            line,
            op: String::new(),
            detail,
            status: kind.as_str().to_string(),
        }
    }

    // --- admin-plane probes (crate::admin) ------------------------------

    /// Whether the server should report ready: not draining, the
    /// engine's disk tier (when configured) still present, and — in
    /// cluster mode — the gossip pre-warm either complete or out of
    /// budget. The engine stats probe doubles as a health check of the
    /// engine lock.
    pub(crate) fn readiness(&self) -> Result<(), String> {
        if self.draining() {
            return Err("draining".to_string());
        }
        if let Some(root) = &self.store_root {
            if !root.is_dir() {
                return Err(format!("store root missing: {}", root.display()));
            }
        }
        if let Some(rt) = &self.cluster {
            let state = &rt.state;
            if !state.warm().ready(state.config().warm_timeout) {
                return Err(format!(
                    "warming: gossip pre-warm in progress ({} models pre-warmed)",
                    state.warm().prewarmed()
                ));
            }
        }
        let _ = self.engine.stats();
        Ok(())
    }

    /// The `/clusterz` body: one JSON object with this node's ring view,
    /// warm-gate status, cluster counters and per-peer health. `None`
    /// when the server is not in cluster mode.
    pub(crate) fn clusterz_text(&self) -> Option<String> {
        let rt = self.cluster.as_ref()?;
        let state = &rt.state;
        let config = state.config();
        let stats = state.stats().snapshot();
        let ring = Value::Object(vec![
            (
                "members".into(),
                Value::Array(
                    state
                        .ring()
                        .members()
                        .iter()
                        .map(|m| Value::Str(m.clone()))
                        .collect(),
                ),
            ),
            ("replicas".into(), Value::Int(config.replicas as i64)),
        ]);
        let warm = Value::Object(vec![
            ("complete".into(), Value::Bool(state.warm().is_complete())),
            (
                "ready".into(),
                Value::Bool(state.warm().ready(config.warm_timeout)),
            ),
            (
                "prewarmed".into(),
                Value::Int(state.warm().prewarmed() as i64),
            ),
        ]);
        let counters = Value::Object(vec![
            ("fetch_hits".into(), Value::Int(stats.fetch_hits as i64)),
            ("fetch_misses".into(), Value::Int(stats.fetch_misses as i64)),
            ("fetch_errors".into(), Value::Int(stats.fetch_errors as i64)),
            ("forwards".into(), Value::Int(stats.forwards as i64)),
            (
                "forward_fallbacks".into(),
                Value::Int(stats.forward_fallbacks as i64),
            ),
            (
                "gossip_rounds".into(),
                Value::Int(stats.gossip_rounds as i64),
            ),
            (
                "warm_keys_sent".into(),
                Value::Int(stats.warm_keys_sent as i64),
            ),
            (
                "warm_keys_learned".into(),
                Value::Int(stats.warm_keys_learned as i64),
            ),
            ("quarantined".into(), Value::Int(stats.quarantined as i64)),
        ]);
        let peers = Value::Array(
            state
                .health()
                .snapshot()
                .into_iter()
                .map(|(id, status)| {
                    Value::Object(vec![
                        ("id".into(), Value::Str(id)),
                        ("reachable".into(), Value::Bool(status.reachable)),
                        ("ok".into(), Value::Int(status.ok as i64)),
                        ("errors".into(), Value::Int(status.errors as i64)),
                        (
                            "last_error".into(),
                            status.last_error.map_or(Value::Null, Value::Str),
                        ),
                    ])
                })
                .collect(),
        );
        let body = Value::Object(vec![
            ("node_id".into(), Value::Str(config.node_id.clone())),
            ("ring".into(), ring),
            ("warm".into(), warm),
            ("counters".into(), counters),
            ("peers".into(), peers),
        ]);
        let mut text = protocol::render(&body);
        text.push('\n');
        Some(text)
    }

    /// The `/metrics` exposition: live engine/server gauges rendered
    /// directly (names chosen not to collide with registry series),
    /// followed by the full metrics registry in Prometheus text format.
    pub(crate) fn metrics_text(&self) -> String {
        let stats = self.engine.stats();
        let mut out = String::with_capacity(8192);
        for (name, value) in [
            ("engine_cache_entries", stats.entries as f64),
            ("engine_cache_capacity", stats.capacity as f64),
            ("engine_inflight", stats.inflight as f64),
            (
                "server_connections_active",
                self.connections.load(Ordering::Relaxed) as f64,
            ),
            ("server_queue_len", self.queue.len() as f64),
            ("server_draining", f64::from(u8::from(self.draining()))),
            (
                "server_traces_recorded",
                trace_mod::recorder().pushed() as f64,
            ),
        ] {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        out.push_str(&telemetry::prometheus::render(&telemetry::snapshot()));
        out
    }
}

/// A running TCP power-estimation service. Construct with
/// [`Server::start`], stop with [`Server::shutdown`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    reactors: Vec<JoinHandle<()>>,
    reactor_handles: Vec<Arc<ReactorHandle>>,
    admin: Option<AdminServer>,
    gossip: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the accept loop, the reactor pool, the worker pool
    /// and (when configured) the admin-plane listener, and return the
    /// running server. Turns on background metric recording
    /// ([`telemetry::set_recording`]) so the admin plane scrapes live
    /// data regardless of the output mode.
    ///
    /// # Errors
    ///
    /// Binding or thread spawning failures (either listener), or an
    /// unsupported platform (the reactor needs epoll; Linux only).
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        telemetry::set_recording(true);
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        let worker_count = resolve_threads(config.workers);
        let reactor_count = if config.reactors == 0 {
            resolve_threads(0).clamp(1, 4)
        } else {
            config.reactors
        };
        let store_root = config.engine.disk_root.clone();
        let cluster = config
            .cluster
            .clone()
            .map(ClusterRuntime::new)
            .transpose()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let shared = Arc::new(Shared {
            engine: Arc::new(PowerEngine::new(config.engine)),
            default_floor: config.fidelity_floor,
            queue: Bounded::new(config.queue_depth),
            draining: AtomicBool::new(false),
            finished: AtomicBool::new(false),
            drain_acks: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            totals: Totals::default(),
            deadline: config.deadline,
            idle_timeout: config.idle_timeout,
            write_timeout: config.write_timeout,
            max_connections: config.max_connections,
            tracing: config.tracing,
            slow_threshold: config.slow_threshold.max(Duration::from_nanos(1)),
            store_root,
            cluster,
        });
        if shared.cluster.is_some() {
            // Background fidelity upgrades must respect cluster
            // ownership: route through ensure_model (peer fetch /
            // forward to the owner) and only then make the model
            // locally resident. `Weak` so the hook never keeps a
            // dropped server's Shared alive through the engine.
            let weak = Arc::downgrade(&shared);
            shared.engine.set_upgrade_hook(move |engine, spec| {
                if let Some(shared) = weak.upgrade() {
                    if let (Some(rt), Some(root)) = (&shared.cluster, &shared.store_root) {
                        cluster::ensure_model(rt, engine, root, spec);
                    }
                }
                let _ = engine.fetch(spec);
            });
        }
        let gossip = if shared.cluster.is_some() {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("hdpm-gossip".into())
                    .spawn(move || {
                        let rt = shared.cluster.as_ref().expect("cluster configured");
                        let root = shared
                            .store_root
                            .as_ref()
                            .expect("cluster mode requires a disk store");
                        cluster::run_gossip(&rt.state, &shared.engine, root, &|| shared.draining());
                    })?,
            )
        } else {
            None
        };
        let admin = config
            .admin_addr
            .map(|admin_addr| AdminServer::start(admin_addr, Arc::clone(&shared)))
            .transpose()?;
        let mut reactor_handles = Vec::with_capacity(reactor_count);
        let mut reactors = Vec::with_capacity(reactor_count);
        for i in 0..reactor_count {
            let poller = Poller::new()?;
            let handle = Arc::new(ReactorHandle::new(&poller)?);
            reactor_handles.push(Arc::clone(&handle));
            let shared = Arc::clone(&shared);
            reactors.push(
                std::thread::Builder::new()
                    .name(format!("hdpm-reactor-{i}"))
                    .spawn(move || reactor::run_reactor(&shared, &handle, &poller))?,
            );
        }
        let accept = {
            let shared = Arc::clone(&shared);
            let handles = reactor_handles.clone();
            std::thread::Builder::new()
                .name("hdpm-accept".into())
                .spawn(move || run_accept(&shared, &listener, &handles))?
        };
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hdpm-worker-{i}"))
                    .spawn(move || run_worker(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        telemetry::event(
            telemetry::Level::Info,
            "server.listening",
            &[
                ("addr", addr.to_string().into()),
                (
                    "admin_addr",
                    admin
                        .as_ref()
                        .map_or_else(|| "off".to_string(), |a| a.local_addr().to_string())
                        .into(),
                ),
                ("workers", workers.len().into()),
                ("reactors", reactors.len().into()),
                ("queue_depth", shared.queue.capacity().into()),
                ("tracing", shared.tracing.into()),
            ],
        );
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
            reactors,
            reactor_handles,
            admin,
            gossip,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound admin-plane address, when one was configured.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin.as_ref().map(AdminServer::local_addr)
    }

    /// The engine shared by the worker pool (e.g. for pre-warming).
    pub fn engine(&self) -> &PowerEngine {
        &self.shared.engine
    }

    /// Gracefully drain: stop accepting, stop reading, answer
    /// everything already queued, flush, join every pool, and report
    /// lifetime totals. In-flight characterizations run to completion —
    /// their replies are on the wire before this returns. The admin
    /// plane keeps serving through the drain (`/readyz` reports 503)
    /// and stops last.
    pub fn shutdown(mut self) -> DrainReport {
        self.begin_drain();
        // Reactors ack the drain (reads muted) within one poll tick;
        // only then may the queue close, or late-parsed requests would
        // shed instead of being answered.
        let patience = Instant::now() + Duration::from_secs(5);
        while self.shared.drain_acks.load(Ordering::SeqCst) < self.reactor_handles.len()
            && Instant::now() < patience
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.shared.queue.close();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // The gossip loop observes `draining` within one sleep slice.
        if let Some(gossip) = self.gossip.take() {
            let _ = gossip.join();
        }
        // Workers are done writing; let the reactors flush the last
        // buffered bytes (bounded by the write timeout) and exit.
        self.shared.finished.store(true, Ordering::SeqCst);
        for handle in &self.reactor_handles {
            handle.wake();
        }
        for reactor in self.reactors.drain(..) {
            let _ = reactor.join();
        }
        if let Some(admin) = self.admin.take() {
            admin.stop();
        }
        let report = self.shared.totals.report();
        telemetry::event(
            telemetry::Level::Info,
            "server.drained",
            &[
                ("connections", report.connections.into()),
                ("ok", report.ok.into()),
                ("errors", report.errors.into()),
                ("shed", report.shed.into()),
                ("timeouts", report.timeouts.into()),
            ],
        );
        report
    }

    fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        for handle in &self.reactor_handles {
            handle.wake();
        }
    }
}

impl Drop for Server {
    /// A dropped (not shut down) server still releases its threads:
    /// accept, reactors, workers and the admin plane are told to exit,
    /// but nothing is joined and no drain guarantee is made — call
    /// [`Server::shutdown`] for that.
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.begin_drain();
            self.shared.queue.close();
            self.shared.finished.store(true, Ordering::SeqCst);
            for handle in &self.reactor_handles {
                handle.wake();
            }
        }
        if let Some(admin) = self.admin.take() {
            admin.stop();
        }
    }
}

/// Global connection-token allocator (tokens are epoll registration
/// keys; `u64::MAX` is reserved for the reactor wakers).
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(0);

fn run_accept(shared: &Arc<Shared>, listener: &TcpListener, reactors: &[Arc<ReactorHandle>]) {
    let mut next_reactor = 0usize;
    for incoming in listener.incoming() {
        if shared.draining() {
            break;
        }
        let Ok(stream) = incoming else { continue };
        if shared.connections.load(Ordering::Relaxed) >= shared.max_connections {
            telemetry::counter_add("server.conn.rejected", 1);
            shared.totals.shed.fetch_add(1, Ordering::Relaxed);
            // The reject races protocol negotiation, so it is always the
            // v1 JSON line; v2 clients recognize the non-NUL first byte
            // as a pre-negotiation rejection (docs/protocol.md).
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(shared.write_timeout));
            let reject = protocol::error_line(
                ErrorKind::Overloaded,
                &format!(
                    "connection limit reached ({} active)",
                    shared.max_connections
                ),
            );
            let _ = stream.write_all(reject.as_bytes());
            let _ = stream.write_all(b"\n");
            continue; // dropped: closed
        }
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        shared.connections.fetch_add(1, Ordering::Relaxed);
        shared.totals.connections.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("server.conn.accepted", 1);
        let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        let stream = Arc::new(stream);
        let handle = Arc::clone(&reactors[next_reactor % reactors.len()]);
        next_reactor = next_reactor.wrapping_add(1);
        let out = Arc::new(ConnOut::new(
            token,
            Arc::clone(&stream),
            Arc::clone(&handle),
        ));
        handle.post(Mail::Register { stream, out });
    }
}

fn run_worker(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        telemetry::gauge_set("server.queue.depth", shared.queue.len() as f64);
        match job {
            Job::V1(mut job) => {
                let waited = job.enqueued.elapsed();
                let waited_ns = waited.as_nanos() as u64;
                telemetry::record_duration_ns("server.queue.wait_ns", waited_ns);
                job.trace.add(Stage::QueueWait, waited_ns);
                if job.out.is_alive() {
                    let outcome = shared.process_v1(&mut job, waited);
                    let reply = outcome.map(|outcome| Reply {
                        finish: job.trace.is_enabled().then(|| {
                            Box::new(TraceFinish {
                                trace: job.trace.clone(),
                                op: outcome.op,
                                detail: outcome.detail,
                                status: outcome.status,
                                slow_threshold: shared.slow_threshold,
                                submitted_ns: telemetry::clock::now_ns(),
                            })
                        }),
                        line: outcome.line,
                    });
                    job.out.submit_v1(job.seq, reply);
                } else {
                    // Dead connection: advance the sequencer, write
                    // nothing, but still file the trace so the flight
                    // recorder sees the drop.
                    if job.trace.is_enabled() {
                        TraceFinish {
                            trace: job.trace.clone(),
                            op: String::new(),
                            detail: String::new(),
                            status: "dropped".to_string(),
                            slow_threshold: shared.slow_threshold,
                            submitted_ns: telemetry::clock::now_ns(),
                        }
                        .complete(false);
                    }
                    job.out.submit_v1(job.seq, None);
                }
                job.out.finish_job();
            }
            Job::V2(mut batch) => {
                run_batch(shared, &mut batch);
                batch.out.finish_job();
            }
        }
    }
}

/// Execute one v2 batch: every frame in arrival order, replies encoded
/// into one buffer and written with one send. Frames across batches
/// (and connections) complete out of order; the ids sort it out client
/// side.
fn run_batch(shared: &Arc<Shared>, batch: &mut V2Batch) {
    let waited = batch.enqueued.elapsed();
    let waited_ns = waited.as_nanos() as u64;
    telemetry::record_duration_ns("server.queue.wait_ns", waited_ns);
    batch.trace.add(Stage::QueueWait, waited_ns);
    if !batch.out.is_alive() {
        if batch.trace.is_enabled() {
            TraceFinish {
                trace: batch.trace.clone(),
                op: "batch".to_string(),
                detail: format!("frames/{}", batch.frames.len()),
                status: "dropped".to_string(),
                slow_threshold: shared.slow_threshold,
                submitted_ns: telemetry::clock::now_ns(),
            }
            .complete(false);
        }
        return;
    }
    let started = Instant::now();
    let mut replies: Vec<u8> =
        Vec::with_capacity(batch.frames.len() * (wire::HEADER_LEN + wire::ESTIMATE_REPLY_LEN));
    for frame in &batch.frames {
        execute_frame(
            shared,
            frame,
            &batch.data,
            batch.enqueued,
            &mut batch.trace,
            &mut replies,
        );
    }
    telemetry::record_duration_ns("server.request_ns", started.elapsed().as_nanos() as u64);
    let submitted_ns = telemetry::clock::now_ns();
    batch.out.send(&replies);
    if batch.trace.is_enabled() {
        TraceFinish {
            trace: batch.trace.clone(),
            op: "batch".to_string(),
            detail: format!("frames/{}", batch.frames.len()),
            status: "ok".to_string(),
            slow_threshold: shared.slow_threshold,
            submitted_ns,
        }
        .complete(true);
    }
}

/// Execute one v2 frame and append its reply frame to `replies`.
///
/// Deadline semantics (documented in docs/protocol.md): the effective
/// limit is the tighter of the in-band `deadline_ms` and the server
/// deadline, measured from the moment the frame was read off the
/// socket. A frame already past its limit is answered with a `timeout`
/// status without executing; a frame whose limit expires **during**
/// execution is still answered in full, late-but-labeled with
/// [`wire::FLAG_LATE`] — the work is done, discarding it helps nobody,
/// and the flag lets the client decide.
fn execute_frame(
    shared: &Arc<Shared>,
    frame: &FrameRef,
    data: &[u8],
    enqueued: Instant,
    trace: &mut TraceCtx,
    replies: &mut Vec<u8>,
) {
    let payload = &data[frame.payload.0..frame.payload.1];
    let requested =
        (frame.deadline_ms > 0).then(|| Duration::from_millis(u64::from(frame.deadline_ms)));
    let limit = match (shared.deadline, requested) {
        (Some(server), Some(frame)) => Some(server.min(frame)),
        (Some(server), None) => Some(server),
        (None, frame) => frame,
    };
    if let Some(limit) = limit {
        let waited = enqueued.elapsed();
        if waited > limit {
            shared.totals.timeouts.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("server.queue.timeout", 1);
            let message = format!(
                "deadline exceeded: {} ms since arrival, limit {} ms",
                waited.as_millis(),
                limit.as_millis()
            );
            wire::encode_frame(
                replies,
                frame.id,
                wire::status_of(ErrorKind::Timeout),
                0,
                message.as_bytes(),
            );
            return;
        }
    }
    let result = match wire::Opcode::from_u8(frame.op) {
        Some(wire::Opcode::Estimate) => exec_estimate(shared, payload, trace),
        Some(wire::Opcode::Characterize) => exec_characterize(shared, payload, trace),
        Some(wire::Opcode::Stats) => Ok(wire::encode_stats_reply(&shared.engine.stats()).to_vec()),
        Some(wire::Opcode::Ping) => Ok(Vec::new()),
        Some(wire::Opcode::FetchModel) => exec_fetch_model(shared, payload),
        Some(wire::Opcode::HaveModel) => exec_have_model(shared, payload),
        Some(wire::Opcode::WarmKeys) => exec_warm_keys(shared, payload),
        None => Err((
            ErrorKind::BadRequest,
            format!("unknown opcode {}", frame.op),
        )),
    };
    // Late-but-labeled: re-check the limit after execution and set the
    // flag instead of discarding finished work.
    let flags = match limit {
        Some(limit) if enqueued.elapsed() > limit => wire::FLAG_LATE,
        _ => 0,
    };
    match result {
        Ok(payload) => {
            shared.totals.ok.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("server.request.ok", 1);
            wire::encode_frame(replies, frame.id, wire::STATUS_OK, flags, &payload);
        }
        Err((kind, message)) => {
            shared.totals.errors.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("server.request.error", 1);
            wire::encode_frame(
                replies,
                frame.id,
                wire::status_of(kind),
                flags,
                message.as_bytes(),
            );
        }
    }
}

fn exec_estimate(
    shared: &Arc<Shared>,
    payload: &[u8],
    trace: &mut TraceCtx,
) -> Result<Vec<u8>, (ErrorKind, String)> {
    // Per-thread reply memo: a warm v2 estimate is dominated by
    // re-rendering an identical answer, so identical request payloads
    // (the monitoring / design-sweep steady state) short-circuit to the
    // cached reply bytes with the source rewritten to `memo`. Safe
    // because estimates are pure functions of the request payload —
    // characterization is deterministic, so even a re-characterized
    // model yields the same numbers.
    thread_local! {
        static MEMO: RefCell<HashMap<[u8; wire::ESTIMATE_REQ_LEN], [u8; wire::ESTIMATE_REPLY_LEN]>> =
            RefCell::new(HashMap::new());
    }
    // Legacy 18-byte payloads key as their 19-byte form with floor 0
    // ("server default") — the memo must not fork on encoding.
    let key: Option<[u8; wire::ESTIMATE_REQ_LEN]> = match payload.len() {
        wire::ESTIMATE_REQ_LEN => payload.try_into().ok(),
        wire::LEGACY_ESTIMATE_REQ_LEN => {
            let mut padded = [0u8; wire::ESTIMATE_REQ_LEN];
            padded[..wire::LEGACY_ESTIMATE_REQ_LEN].copy_from_slice(payload);
            Some(padded)
        }
        _ => None,
    };
    if let Some(key) = key {
        if let Some(hit) = MEMO.with(|memo| memo.borrow().get(&key).copied()) {
            telemetry::counter_add("server.memo.hit", 1);
            return Ok(hit.to_vec());
        }
    }
    let params = wire::decode_estimate_request(payload).map_err(|m| (ErrorKind::BadRequest, m))?;
    let floor = params.floor.unwrap_or(shared.default_floor);
    // Below-full floors answer from the local ladder immediately; the
    // upgrade hook routes cluster ownership in the background.
    if floor == Fidelity::Full {
        if let (Some(rt), Some(root)) = (&shared.cluster, &shared.store_root) {
            cluster::ensure_model(rt, &shared.engine, root, params.spec);
        }
    }
    let (m1, _) = params.spec.width.operand_widths();
    let dist = trace.time(Stage::Estimate, || {
        protocol::input_distribution(
            params.data,
            params.spec.kind.operand_count(),
            m1,
            params.cycles as usize,
            params.seed,
        )
    });
    let estimate = shared
        .engine
        .estimate_with_floor_traced(params.spec, &dist, floor, trace)
        .map_err(|e| (ErrorKind::Engine, e.to_string()))?;
    let reply = wire::encode_estimate_reply(&estimate, wire::source_code(estimate.source));
    telemetry::counter_add("server.memo.miss", 1);
    // Only full-fidelity replies are memoizable: a tier-A/B answer for
    // this key is expected to improve once the background upgrade
    // lands, and a memo hit would pin the stale tier forever.
    if estimate.fidelity == Fidelity::Full {
        if let Some(key) = key {
            MEMO.with(|memo| {
                let mut memo = memo.borrow_mut();
                // Blunt bound, like the distribution memo: distinct estimate
                // payloads are rare (catalogue × widths × data types).
                if memo.len() >= 4096 {
                    memo.clear();
                }
                let mut memoized = reply;
                memoized[wire::ESTIMATE_REPLY_SOURCE_OFFSET] = wire::SOURCE_MEMO;
                memo.insert(key, memoized);
            });
        }
    }
    Ok(reply.to_vec())
}

fn exec_characterize(
    shared: &Arc<Shared>,
    payload: &[u8],
    trace: &mut TraceCtx,
) -> Result<Vec<u8>, (ErrorKind, String)> {
    let params =
        wire::decode_characterize_request(payload).map_err(|m| (ErrorKind::BadRequest, m))?;
    if let (Some(rt), Some(root)) = (&shared.cluster, &shared.store_root) {
        cluster::ensure_model(rt, &shared.engine, root, params.spec);
    }
    let (characterization, source) = shared
        .engine
        .fetch_traced(params.spec, trace)
        .map_err(|e| (ErrorKind::Engine, e.to_string()))?;
    let reply = wire::CharacterizeReply {
        input_bits: characterization.model.input_bits() as u32,
        transitions: characterization.transitions as u64,
        converged_after: characterization.converged_after.map(|p| p as u64),
        source: wire::source_code(source),
    };
    Ok(wire::encode_characterize_reply(&reply).to_vec())
}

/// Serve a peer's fetch-model request: stream the stored artifact's
/// envelope bytes verbatim, so the peer can re-verify the checksum
/// independently. An empty ok payload means "not on disk" — envelope
/// files are never empty, so the encoding is unambiguous.
fn exec_fetch_model(shared: &Arc<Shared>, payload: &[u8]) -> Result<Vec<u8>, (ErrorKind, String)> {
    let spec = wire::decode_spec_request(payload).map_err(|m| (ErrorKind::BadRequest, m))?;
    let Some(root) = &shared.store_root else {
        return Err((
            ErrorKind::BadRequest,
            "this node has no disk store to fetch from".to_string(),
        ));
    };
    let key = shared.engine.key_for(spec);
    let path = root.join(key.artifact_file_name());
    if !path.exists() {
        return Ok(Vec::new());
    }
    match persist::read_envelope_bytes::<Characterization>(&path, &EnvelopeMeta::for_key(&key)) {
        Ok(bytes) if bytes.len() > wire::MAX_PAYLOAD as usize => Err((
            ErrorKind::Engine,
            format!(
                "artifact {} is {} bytes, over the {} byte frame cap",
                path.display(),
                bytes.len(),
                wire::MAX_PAYLOAD
            ),
        )),
        Ok(bytes) => Ok(bytes),
        // A racing delete between the exists() probe and the read is the
        // same "not on disk" answer.
        Err(hdpm_core::ModelError::Io(e)) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err((ErrorKind::Engine, e.to_string())),
    }
}

/// Serve a peer's have-model probe: one byte, present in either tier or
/// absent.
fn exec_have_model(shared: &Arc<Shared>, payload: &[u8]) -> Result<Vec<u8>, (ErrorKind, String)> {
    let spec = wire::decode_spec_request(payload).map_err(|m| (ErrorKind::BadRequest, m))?;
    let reply = if shared.engine.has_model(spec) {
        wire::HaveModelReply::Present
    } else {
        wire::HaveModelReply::Absent
    };
    Ok(wire::encode_have_model_reply(reply).to_vec())
}

/// Serve a peer's warm-keys exchange: validate the advertised list (the
/// sender's side of the gossip does the learning), reply with this
/// node's hottest keys.
fn exec_warm_keys(shared: &Arc<Shared>, payload: &[u8]) -> Result<Vec<u8>, (ErrorKind, String)> {
    let _theirs = wire::decode_warm_keys(payload).map_err(|m| (ErrorKind::BadRequest, m))?;
    let specs: Vec<hdpm_netlist::ModuleSpec> = shared
        .engine
        .hottest_keys(wire::WARM_KEYS_MAX)
        .iter()
        .map(|key| key.spec)
        .collect();
    if let Some(rt) = &shared.cluster {
        rt.state.stats().record_warm_keys_sent(specs.len() as u64);
    }
    Ok(wire::encode_warm_keys(&specs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_keys_match_the_canonical_metric_key() {
        for stage in trace_mod::STAGES {
            assert_eq!(
                STAGE_KEYS[stage as usize],
                telemetry::metric_key("server.stage_ns", &[("stage", stage.as_str())]),
            );
        }
    }
}
