//! The TCP service: accept loop → bounded queue → worker pool, wrapped
//! around one shared [`PowerEngine`].
//!
//! Threading model:
//!
//! * one **accept** thread admits connections (up to
//!   [`ServerOptions::max_connections`]; beyond that, an `overloaded`
//!   reply and an immediate close);
//! * one cheap **reader** thread per connection frames raw lines and
//!   pushes them into the bounded queue without ever blocking — a full
//!   queue sheds the request with a structured `overloaded` reply;
//! * a **fixed worker pool** drains the queue and executes requests
//!   against the shared engine, so concurrent misses on one model still
//!   coalesce through the engine's single-flight path.
//!
//! Replies on one connection are written in request order even though
//! workers complete out of order: every framed line takes a sequence
//! number and [`Conn::submit`] holds completed replies until their
//! predecessors are on the wire.
//!
//! Robustness: per-request deadlines (queue wait beyond the limit earns a
//! `timeout` reply instead of stale work), per-connection idle reaping,
//! write timeouts that tear down slow readers instead of blocking a
//! worker forever, and tolerance of malformed or non-UTF-8 lines.
//! [`Server::shutdown`] drains gracefully: stop accepting, stop reading,
//! finish every queued request, join the pool, report totals.
//!
//! # Observability
//!
//! When [`ServerOptions::tracing`] is on (the default), every framed
//! request gets a [`TraceCtx`] at enqueue time that rides the [`Job`]
//! through the pipeline, accumulating per-stage timings (decode,
//! queue-wait, cache-lookup, single-flight-wait, characterize, estimate,
//! serialize, socket-write). The trace id is echoed in the reply as
//! `"trace":"t…"`; the completed trace lands in the global flight
//! recorder (served by `/tracez`, dumped on drain) and in the
//! `server.stage_ns{stage=…}` latency histograms; requests slower than
//! [`ServerOptions::slow_threshold`] additionally emit one
//! `{"type":"slow_request",…}` JSON line on stderr. The optional admin
//! plane ([`ServerOptions::admin_addr`], `crate::admin`) exposes
//! `/metrics`, `/healthz`, `/readyz` and `/tracez` over HTTP.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hdpm_core::{resolve_threads, EngineOptions, PowerEngine};
use hdpm_telemetry as telemetry;
use hdpm_telemetry::{trace as trace_mod, Stage, TraceCtx};
use serde::Serialize;

use crate::admin::AdminServer;
use crate::protocol::{self, ErrorKind};
use crate::queue::{Bounded, PushError};

/// Construction options of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: SocketAddr,
    /// Worker pool size; 0 resolves to the available parallelism.
    pub workers: usize,
    /// Bound of the request queue; pushes beyond it shed with an
    /// `overloaded` reply.
    pub queue_depth: usize,
    /// Per-request deadline measured from enqueue; a request popped after
    /// its deadline earns a `timeout` reply instead of execution. `None`
    /// disables the check. Requests may tighten (never extend) this with
    /// their `deadline_ms` field.
    pub deadline: Option<Duration>,
    /// Idle reaping: a connection with no traffic for this long is shut.
    pub idle_timeout: Duration,
    /// Write timeout per reply; a slower consumer is disconnected rather
    /// than allowed to block a worker.
    pub write_timeout: Duration,
    /// Connection admission bound.
    pub max_connections: usize,
    /// Engine shared by the worker pool.
    pub engine: EngineOptions,
    /// Admin-plane bind address (`/metrics`, `/healthz`, `/readyz`,
    /// `/tracez`); `None` runs without one.
    pub admin_addr: Option<SocketAddr>,
    /// Per-request tracing: trace ids echoed in replies, per-stage
    /// timings, the flight recorder and the slow-request log. Off turns
    /// replies byte-identical to the stdin transport.
    pub tracing: bool,
    /// End-to-end latency above which a completed request emits one
    /// structured `slow_request` JSON line on stderr (tracing only).
    pub slow_threshold: Duration,
}

impl Default for ServerOptions {
    /// Defaults: loopback ephemeral port, all-cores workers, queue depth
    /// 256, 30 s deadline, 60 s idle reap, 5 s write timeout, 256
    /// connections, default engine, no admin plane, tracing on with a
    /// 250 ms slow-request threshold.
    fn default() -> Self {
        ServerOptions {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: 0,
            queue_depth: 256,
            deadline: Some(Duration::from_secs(30)),
            idle_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(5),
            max_connections: 256,
            engine: EngineOptions::default(),
            admin_addr: None,
            tracing: true,
            slow_threshold: Duration::from_millis(250),
        }
    }
}

/// Totals accumulated over a server's lifetime, returned by
/// [`Server::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct DrainReport {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered `ok:true`.
    pub ok: u64,
    /// Requests answered with a structured error (malformed, bad
    /// request, engine failure).
    pub errors: u64,
    /// Requests shed with `overloaded` (queue full, draining, or the
    /// connection limit).
    pub shed: u64,
    /// Requests expired in the queue and answered with `timeout`.
    pub timeouts: u64,
}

#[derive(Default)]
struct Totals {
    connections: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    timeouts: AtomicU64,
}

impl Totals {
    fn report(&self) -> DrainReport {
        DrainReport {
            connections: self.connections.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }
}

/// One framed request line awaiting a worker.
struct Job {
    seq: u64,
    raw: Vec<u8>,
    conn: Arc<Conn>,
    enqueued: Instant,
    trace: TraceCtx,
}

/// Everything needed to close out a request's trace once its reply is on
/// the wire (or abandoned): the completed context, what the request was,
/// and how it ended. Created by the worker, consumed by the writer side
/// so the socket-write stage covers sequencer hold + the actual write.
struct TraceFinish {
    trace: TraceCtx,
    op: String,
    detail: String,
    status: String,
    slow_threshold: Duration,
    /// [`telemetry::clock::now_ns`] when the worker handed the reply to
    /// the sequencer.
    submitted_ns: u64,
}

/// Canonical metric keys of the `server.stage_ns{stage=…}` series,
/// pre-rendered (and verified against [`telemetry::metric_key`] by a
/// test) so the per-request stage flush allocates nothing.
const STAGE_KEYS: [&str; trace_mod::STAGE_COUNT] = [
    "server.stage_ns{stage=\"decode\"}",
    "server.stage_ns{stage=\"queue_wait\"}",
    "server.stage_ns{stage=\"cache_lookup\"}",
    "server.stage_ns{stage=\"single_flight_wait\"}",
    "server.stage_ns{stage=\"characterize\"}",
    "server.stage_ns{stage=\"estimate\"}",
    "server.stage_ns{stage=\"serialize\"}",
    "server.stage_ns{stage=\"socket_write\"}",
];

impl TraceFinish {
    /// Record the socket-write stage, file the trace with the flight
    /// recorder and the stage histograms, and emit the slow-request log
    /// line if the end-to-end time crossed the threshold.
    fn complete(mut self, wrote: bool) {
        if wrote {
            self.trace.add(
                Stage::SocketWrite,
                telemetry::clock::now_ns().saturating_sub(self.submitted_ns),
            );
        }
        let record = self.trace.finish_owned(self.op, self.detail, self.status);
        // Flush every nonzero stage under one registry lock, with keys
        // resolved at compile time: the warm path allocates nothing here.
        let mut pairs = [("", 0u64); trace_mod::STAGE_COUNT];
        let mut nonzero = 0;
        for stage in trace_mod::STAGES {
            let ns = record.stages[stage as usize];
            if ns > 0 {
                pairs[nonzero] = (STAGE_KEYS[stage as usize], ns);
                nonzero += 1;
            }
        }
        telemetry::record_durations_ns(&pairs[..nonzero]);
        let slow =
            record.total_ns > u64::try_from(self.slow_threshold.as_nanos()).unwrap_or(u64::MAX);
        if slow {
            telemetry::counter_add("server.request.slow", 1);
            // One self-contained JSON line on stderr, greppable by trace
            // id, regardless of the telemetry output mode.
            let record_json = record.to_json();
            eprintln!("{{\"type\":\"slow_request\",{}", &record_json[1..]);
        }
        trace_mod::recorder().push(record);
    }
}

/// A reply line plus the trace bookkeeping owed once it is written.
struct Reply {
    line: String,
    finish: Option<Box<TraceFinish>>,
}

/// The write side of a connection plus the reply sequencer. Workers
/// complete jobs out of order; `submit` reorders replies by sequence
/// number before they reach the socket.
struct Conn {
    alive: AtomicBool,
    out: Mutex<OutState>,
}

struct OutState {
    stream: Option<TcpStream>,
    /// Sequence number the wire is waiting for next.
    next: u64,
    /// Completed replies with earlier gaps still outstanding. `None`
    /// marks a sequence slot that produces no output.
    pending: BTreeMap<u64, Option<Reply>>,
}

impl Conn {
    fn new(write_half: TcpStream) -> Self {
        Conn {
            alive: AtomicBool::new(true),
            out: Mutex::new(OutState {
                stream: Some(write_half),
                next: 0,
                pending: BTreeMap::new(),
            }),
        }
    }

    fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Relaxed)
    }

    /// Tear the connection down: wake any blocked peer I/O and drop the
    /// write half so queued work for it becomes a no-op.
    fn kill(&self) {
        self.alive.store(false, Ordering::Relaxed);
        let mut out = self.out.lock().expect("conn lock");
        if let Some(stream) = out.stream.take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        out.pending.clear();
    }

    /// Hand in the reply for sequence `seq` (`None` = no output owed) and
    /// flush every consecutively-ready reply to the wire. A write failure
    /// (timeout included) kills the connection. Trace bookkeeping for
    /// flushed replies runs after the connection lock is released.
    fn submit(&self, seq: u64, reply: Option<Reply>) {
        // One reply flushes per submit in the common case; the spill Vec
        // only allocates when out-of-order completions batch up.
        let mut first: Option<Box<TraceFinish>> = None;
        let mut rest: Vec<Box<TraceFinish>> = Vec::new();
        let mut finish_later = |finish: Box<TraceFinish>| {
            if first.is_none() {
                first = Some(finish);
            } else {
                rest.push(finish);
            }
        };
        let mut out = self.out.lock().expect("conn lock");
        out.pending.insert(seq, reply);
        loop {
            let next = out.next;
            let Some(ready) = out.pending.remove(&next) else {
                break;
            };
            out.next += 1;
            let Some(reply) = ready else { continue };
            let Some(stream) = out.stream.as_mut() else {
                if let Some(finish) = reply.finish {
                    finish_later(finish);
                }
                continue;
            };
            let wrote = stream
                .write_all(reply.line.as_bytes())
                .and_then(|()| stream.write_all(b"\n"));
            match wrote {
                Ok(()) => {
                    if let Some(finish) = reply.finish {
                        finish_later(finish);
                    }
                }
                Err(e) => {
                    telemetry::counter_add("server.conn.write_failed", 1);
                    telemetry::event(
                        telemetry::Level::Warn,
                        "server.conn.write_failed",
                        &[("error", e.to_string().into())],
                    );
                    self.alive.store(false, Ordering::Relaxed);
                    if let Some(stream) = out.stream.take() {
                        let _ = stream.shutdown(Shutdown::Both);
                    }
                    out.pending.clear();
                    if let Some(mut finish) = reply.finish {
                        finish.status = "write_failed".into();
                        finish_later(finish);
                    }
                    break;
                }
            }
        }
        drop(out);
        if let Some(finish) = first {
            finish.complete(true);
        }
        for finish in rest {
            finish.complete(true);
        }
    }
}

/// Outcome of processing one job, before the reply reaches the wire.
struct Outcome {
    line: String,
    op: String,
    detail: String,
    status: String,
}

pub(crate) struct Shared {
    engine: PowerEngine,
    queue: Bounded<Job>,
    draining: AtomicBool,
    connections: AtomicUsize,
    totals: Totals,
    deadline: Option<Duration>,
    idle_timeout: Duration,
    /// Socket read timeout: the reader's poll interval for the draining
    /// flag and the idle clock, capped well below `idle_timeout`.
    read_poll: Duration,
    write_timeout: Duration,
    max_connections: usize,
    tracing: bool,
    slow_threshold: Duration,
    /// The engine's disk tier root, probed by `/readyz`.
    store_root: Option<PathBuf>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// A fresh trace context when tracing is on, an inert one otherwise.
    fn new_trace(&self) -> TraceCtx {
        if self.tracing {
            TraceCtx::new()
        } else {
            TraceCtx::disabled()
        }
    }

    /// Attach the trace id to a pre-rendered error line and build its
    /// [`Reply`] (with trace bookkeeping when tracing is on).
    fn error_reply(
        &self,
        trace: TraceCtx,
        kind: ErrorKind,
        message: &str,
        detail: String,
    ) -> Reply {
        let mut value = protocol::error_value(kind, message);
        let finish = if trace.is_enabled() {
            protocol::attach_trace(&mut value, &trace.id_string());
            Some(Box::new(TraceFinish {
                trace,
                op: String::new(),
                detail,
                status: kind.as_str().to_string(),
                slow_threshold: self.slow_threshold,
                submitted_ns: telemetry::clock::now_ns(),
            }))
        } else {
            None
        };
        Reply {
            line: protocol::render(&value),
            finish,
        }
    }

    /// Frame one raw line into the queue, shedding with a structured
    /// reply when the queue refuses it. Blank lines are skipped without
    /// consuming a sequence number (no reply is owed for them).
    fn enqueue(&self, conn: &Arc<Conn>, next_seq: &mut u64, raw: Vec<u8>) {
        if protocol::trim_line(&raw)
            .iter()
            .all(u8::is_ascii_whitespace)
        {
            return;
        }
        let seq = *next_seq;
        *next_seq += 1;
        let job = Job {
            seq,
            raw,
            conn: Arc::clone(conn),
            enqueued: Instant::now(),
            trace: self.new_trace(),
        };
        match self.queue.try_push(job) {
            Ok(depth) => telemetry::gauge_set("server.queue.depth", depth as f64),
            Err(PushError::Full(job)) => {
                self.totals.shed.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.queue.shed_full", 1);
                let reply = self.error_reply(
                    job.trace,
                    ErrorKind::Overloaded,
                    &format!(
                        "queue full ({} requests queued): request shed",
                        self.queue.capacity()
                    ),
                    String::new(),
                );
                job.conn.submit(job.seq, Some(reply));
            }
            Err(PushError::Closed(job)) => {
                self.totals.shed.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.queue.shed_draining", 1);
                let reply = self.error_reply(
                    job.trace,
                    ErrorKind::Overloaded,
                    "server draining: request shed",
                    String::new(),
                );
                job.conn.submit(job.seq, Some(reply));
            }
        }
    }

    /// Execute one job: decode, enforce the deadline, run the op, render
    /// the reply (trace id attached when tracing). Returns `None` when no
    /// output is owed (blank line). Per-stage timings accumulate into the
    /// job's trace; `server.request_ns` keeps measuring processing time
    /// only (decode → render), as before.
    fn process(&self, job: &mut Job, waited: Duration) -> Option<Outcome> {
        let started = Instant::now();
        let trace = &mut job.trace;
        let decoded = trace.time(Stage::Decode, || {
            protocol::decode(protocol::trim_line(&job.raw))
        });
        let request = match decoded {
            Ok(Some(request)) => request,
            Ok(None) => return None,
            Err((kind, message)) => {
                self.totals.errors.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.request.error", 1);
                return Some(self.render_error(trace, started, kind, &message, String::new()));
            }
        };
        let op = request.op.clone();
        let detail = protocol::request_detail(&request);
        let requested = request.deadline_ms.map(Duration::from_millis);
        let limit = match (self.deadline, requested) {
            (Some(server), Some(request)) => Some(server.min(request)),
            (Some(server), None) => Some(server),
            (None, request) => request,
        };
        if let Some(limit) = limit {
            if waited > limit {
                self.totals.timeouts.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.queue.timeout", 1);
                let message = format!(
                    "deadline exceeded: queued {} ms, limit {} ms",
                    waited.as_millis(),
                    limit.as_millis()
                );
                let mut outcome =
                    self.render_error(trace, started, ErrorKind::Timeout, &message, detail);
                outcome.op = op;
                return Some(outcome);
            }
        }
        let (value, status) = match protocol::handle_traced(&self.engine, &request, trace) {
            Ok(reply) => {
                self.totals.ok.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.request.ok", 1);
                (reply, "ok".to_string())
            }
            Err((kind, message)) => {
                self.totals.errors.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.request.error", 1);
                (
                    protocol::error_value(kind, &message),
                    kind.as_str().to_string(),
                )
            }
        };
        let trace_id = trace.is_enabled().then(|| trace.id());
        let line = trace.time(Stage::Serialize, || {
            let mut line = protocol::render(&value);
            if let Some(id) = trace_id {
                protocol::append_trace_id(&mut line, id);
            }
            line
        });
        telemetry::record_duration_ns("server.request_ns", started.elapsed().as_nanos() as u64);
        Some(Outcome {
            line,
            op,
            detail,
            status,
        })
    }

    /// Render a structured error outcome (trace id attached when
    /// tracing), accounting its render time to the serialize stage and
    /// closing out `server.request_ns`.
    fn render_error(
        &self,
        trace: &mut TraceCtx,
        started: Instant,
        kind: ErrorKind,
        message: &str,
        detail: String,
    ) -> Outcome {
        let trace_id = trace.is_enabled().then(|| trace.id());
        let line = trace.time(Stage::Serialize, || {
            let mut line = protocol::error_line(kind, message);
            if let Some(id) = trace_id {
                protocol::append_trace_id(&mut line, id);
            }
            line
        });
        telemetry::record_duration_ns("server.request_ns", started.elapsed().as_nanos() as u64);
        Outcome {
            line,
            op: String::new(),
            detail,
            status: kind.as_str().to_string(),
        }
    }

    // --- admin-plane probes (crate::admin) ------------------------------

    /// Whether the server should report ready: not draining, and the
    /// engine's disk tier (when configured) still present. The engine
    /// stats probe doubles as a health check of the engine lock.
    pub(crate) fn readiness(&self) -> Result<(), String> {
        if self.draining() {
            return Err("draining".to_string());
        }
        if let Some(root) = &self.store_root {
            if !root.is_dir() {
                return Err(format!("store root missing: {}", root.display()));
            }
        }
        let _ = self.engine.stats();
        Ok(())
    }

    /// The `/metrics` exposition: live engine/server gauges rendered
    /// directly (names chosen not to collide with registry series),
    /// followed by the full metrics registry in Prometheus text format.
    pub(crate) fn metrics_text(&self) -> String {
        let stats = self.engine.stats();
        let mut out = String::with_capacity(8192);
        for (name, value) in [
            ("engine_cache_entries", stats.entries as f64),
            ("engine_cache_capacity", stats.capacity as f64),
            ("engine_inflight", stats.inflight as f64),
            (
                "server_connections_active",
                self.connections.load(Ordering::Relaxed) as f64,
            ),
            ("server_queue_len", self.queue.len() as f64),
            ("server_draining", f64::from(u8::from(self.draining()))),
            (
                "server_traces_recorded",
                trace_mod::recorder().pushed() as f64,
            ),
        ] {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        out.push_str(&telemetry::prometheus::render(&telemetry::snapshot()));
        out
    }
}

/// A running TCP power-estimation service. Construct with
/// [`Server::start`], stop with [`Server::shutdown`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    admin: Option<AdminServer>,
}

impl Server {
    /// Bind, spawn the accept loop, the worker pool and (when configured)
    /// the admin-plane listener, and return the running server. Turns on
    /// background metric recording ([`telemetry::set_recording`]) so the
    /// admin plane scrapes live data regardless of the output mode.
    ///
    /// # Errors
    ///
    /// Binding or thread spawning failures (either listener).
    pub fn start(options: ServerOptions) -> io::Result<Server> {
        telemetry::set_recording(true);
        let listener = TcpListener::bind(options.addr)?;
        let addr = listener.local_addr()?;
        let workers = resolve_threads(options.workers);
        let store_root = options.engine.disk_root.clone();
        let shared = Arc::new(Shared {
            engine: PowerEngine::new(options.engine),
            queue: Bounded::new(options.queue_depth),
            draining: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            totals: Totals::default(),
            deadline: options.deadline,
            idle_timeout: options.idle_timeout.max(Duration::from_millis(1)),
            read_poll: options
                .idle_timeout
                .max(Duration::from_millis(1))
                .min(Duration::from_millis(250)),
            write_timeout: options.write_timeout.max(Duration::from_millis(1)),
            max_connections: options.max_connections.max(1),
            tracing: options.tracing,
            slow_threshold: options.slow_threshold.max(Duration::from_nanos(1)),
            store_root,
        });
        let admin = options
            .admin_addr
            .map(|admin_addr| AdminServer::start(admin_addr, Arc::clone(&shared)))
            .transpose()?;
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hdpm-accept".into())
                .spawn(move || run_accept(&shared, &listener))?
        };
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hdpm-worker-{i}"))
                    .spawn(move || run_worker(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        telemetry::event(
            telemetry::Level::Info,
            "server.listening",
            &[
                ("addr", addr.to_string().into()),
                (
                    "admin_addr",
                    admin
                        .as_ref()
                        .map_or_else(|| "off".to_string(), |a| a.local_addr().to_string())
                        .into(),
                ),
                ("workers", workers.len().into()),
                ("queue_depth", shared.queue.capacity().into()),
                ("tracing", shared.tracing.into()),
            ],
        );
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
            admin,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound admin-plane address, when one was configured.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin.as_ref().map(AdminServer::local_addr)
    }

    /// The engine shared by the worker pool (e.g. for pre-warming).
    pub fn engine(&self) -> &PowerEngine {
        &self.shared.engine
    }

    /// Gracefully drain: stop accepting, stop reading, answer everything
    /// already queued, join the worker pool, and report lifetime totals.
    /// In-flight characterizations run to completion — their replies are
    /// on the wire before this returns. The admin plane keeps serving
    /// through the drain (`/readyz` reports 503) and stops last.
    pub fn shutdown(mut self) -> DrainReport {
        self.begin_drain();
        // Readers poll the draining flag at `read_poll` granularity; give
        // them a generous window to stop framing before the queue closes.
        let patience = Instant::now() + Duration::from_secs(5);
        while self.shared.connections.load(Ordering::Relaxed) > 0 && Instant::now() < patience {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.shared.queue.close();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(admin) = self.admin.take() {
            admin.stop();
        }
        let report = self.shared.totals.report();
        telemetry::event(
            telemetry::Level::Info,
            "server.drained",
            &[
                ("connections", report.connections.into()),
                ("ok", report.ok.into()),
                ("errors", report.errors.into()),
                ("shed", report.shed.into()),
                ("timeouts", report.timeouts.into()),
            ],
        );
        report
    }

    fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::Relaxed);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for Server {
    /// A dropped (not shut down) server still releases its threads:
    /// accept, workers and the admin plane are told to exit, but nothing
    /// is joined and no drain guarantee is made — call
    /// [`Server::shutdown`] for that.
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.begin_drain();
            self.shared.queue.close();
        }
        if let Some(admin) = self.admin.take() {
            admin.stop();
        }
    }
}

fn run_accept(shared: &Arc<Shared>, listener: &TcpListener) {
    for incoming in listener.incoming() {
        if shared.draining() {
            break;
        }
        let Ok(stream) = incoming else { continue };
        if shared.connections.load(Ordering::Relaxed) >= shared.max_connections {
            telemetry::counter_add("server.conn.rejected", 1);
            shared.totals.shed.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(shared.write_timeout));
            let reject = protocol::error_line(
                ErrorKind::Overloaded,
                &format!(
                    "connection limit reached ({} active)",
                    shared.max_connections
                ),
            );
            let _ = stream.write_all(reject.as_bytes());
            let _ = stream.write_all(b"\n");
            continue; // dropped: closed
        }
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(shared.read_poll));
        let _ = write_half.set_write_timeout(Some(shared.write_timeout));
        shared.connections.fetch_add(1, Ordering::Relaxed);
        shared.totals.connections.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("server.conn.accepted", 1);
        let conn = Arc::new(Conn::new(write_half));
        let reader_shared = Arc::clone(shared);
        let reader_conn = Arc::clone(&conn);
        let spawned = std::thread::Builder::new()
            .name("hdpm-conn".into())
            .spawn(move || run_reader(&reader_shared, &reader_conn, stream));
        if spawned.is_err() {
            // Reader never ran: release the slot it reserved.
            shared.connections.fetch_sub(1, Ordering::Relaxed);
            conn.kill();
        }
    }
}

/// Frame lines off one connection into the queue until EOF, error, idle
/// expiry, teardown or drain.
fn run_reader(shared: &Arc<Shared>, conn: &Arc<Conn>, stream: TcpStream) {
    let mut reader = BufReader::new(stream);
    let mut raw: Vec<u8> = Vec::new();
    let mut last_activity = Instant::now();
    let mut next_seq = 0u64;
    loop {
        if shared.draining() || !conn.is_alive() {
            break;
        }
        match reader.read_until(b'\n', &mut raw) {
            Ok(0) => {
                // EOF; a final unterminated line still deserves a reply.
                if !raw.is_empty() {
                    shared.enqueue(conn, &mut next_seq, std::mem::take(&mut raw));
                }
                break;
            }
            Ok(_) => {
                if raw.last() == Some(&b'\n') {
                    shared.enqueue(conn, &mut next_seq, std::mem::take(&mut raw));
                    last_activity = Instant::now();
                }
                // else: delimiter-less read = EOF; the next iteration
                // returns Ok(0) and flushes `raw`.
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Poll tick: partial bytes (if any) stay in `raw`.
                if last_activity.elapsed() >= shared.idle_timeout {
                    telemetry::counter_add("server.conn.reaped", 1);
                    conn.kill();
                    break;
                }
            }
            Err(_) => break,
        }
    }
    shared.connections.fetch_sub(1, Ordering::Relaxed);
}

fn run_worker(shared: &Arc<Shared>) {
    while let Some(mut job) = shared.queue.pop() {
        telemetry::gauge_set("server.queue.depth", shared.queue.len() as f64);
        let waited = job.enqueued.elapsed();
        let waited_ns = waited.as_nanos() as u64;
        telemetry::record_duration_ns("server.queue.wait_ns", waited_ns);
        job.trace.add(Stage::QueueWait, waited_ns);
        if job.conn.is_alive() {
            let outcome = shared.process(&mut job, waited);
            let reply = outcome.map(|outcome| Reply {
                finish: job.trace.is_enabled().then(|| {
                    Box::new(TraceFinish {
                        trace: job.trace.clone(),
                        op: outcome.op,
                        detail: outcome.detail,
                        status: outcome.status,
                        slow_threshold: shared.slow_threshold,
                        submitted_ns: telemetry::clock::now_ns(),
                    })
                }),
                line: outcome.line,
            });
            job.conn.submit(job.seq, reply);
        } else {
            // Dead connection: advance the sequencer, write nothing, but
            // still file the trace so the flight recorder sees the drop.
            if job.trace.is_enabled() {
                TraceFinish {
                    trace: job.trace.clone(),
                    op: String::new(),
                    detail: String::new(),
                    status: "dropped".to_string(),
                    slow_threshold: shared.slow_threshold,
                    submitted_ns: telemetry::clock::now_ns(),
                }
                .complete(false);
            }
            job.conn.submit(job.seq, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_keys_match_the_canonical_metric_key() {
        for stage in trace_mod::STAGES {
            assert_eq!(
                STAGE_KEYS[stage as usize],
                telemetry::metric_key("server.stage_ns", &[("stage", stage.as_str())]),
            );
        }
    }
}
