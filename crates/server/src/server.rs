//! The TCP service: accept loop → bounded queue → worker pool, wrapped
//! around one shared [`PowerEngine`].
//!
//! Threading model:
//!
//! * one **accept** thread admits connections (up to
//!   [`ServerOptions::max_connections`]; beyond that, an `overloaded`
//!   reply and an immediate close);
//! * one cheap **reader** thread per connection frames raw lines and
//!   pushes them into the bounded queue without ever blocking — a full
//!   queue sheds the request with a structured `overloaded` reply;
//! * a **fixed worker pool** drains the queue and executes requests
//!   against the shared engine, so concurrent misses on one model still
//!   coalesce through the engine's single-flight path.
//!
//! Replies on one connection are written in request order even though
//! workers complete out of order: every framed line takes a sequence
//! number and [`Conn::submit`] holds completed replies until their
//! predecessors are on the wire.
//!
//! Robustness: per-request deadlines (queue wait beyond the limit earns a
//! `timeout` reply instead of stale work), per-connection idle reaping,
//! write timeouts that tear down slow readers instead of blocking a
//! worker forever, and tolerance of malformed or non-UTF-8 lines.
//! [`Server::shutdown`] drains gracefully: stop accepting, stop reading,
//! finish every queued request, join the pool, report totals.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hdpm_core::{resolve_threads, EngineOptions, PowerEngine};
use hdpm_telemetry as telemetry;
use serde::Serialize;

use crate::protocol::{self, ErrorKind};
use crate::queue::{Bounded, PushError};

/// Construction options of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: SocketAddr,
    /// Worker pool size; 0 resolves to the available parallelism.
    pub workers: usize,
    /// Bound of the request queue; pushes beyond it shed with an
    /// `overloaded` reply.
    pub queue_depth: usize,
    /// Per-request deadline measured from enqueue; a request popped after
    /// its deadline earns a `timeout` reply instead of execution. `None`
    /// disables the check. Requests may tighten (never extend) this with
    /// their `deadline_ms` field.
    pub deadline: Option<Duration>,
    /// Idle reaping: a connection with no traffic for this long is shut.
    pub idle_timeout: Duration,
    /// Write timeout per reply; a slower consumer is disconnected rather
    /// than allowed to block a worker.
    pub write_timeout: Duration,
    /// Connection admission bound.
    pub max_connections: usize,
    /// Engine shared by the worker pool.
    pub engine: EngineOptions,
}

impl Default for ServerOptions {
    /// Defaults: loopback ephemeral port, all-cores workers, queue depth
    /// 256, 30 s deadline, 60 s idle reap, 5 s write timeout, 256
    /// connections, default engine.
    fn default() -> Self {
        ServerOptions {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: 0,
            queue_depth: 256,
            deadline: Some(Duration::from_secs(30)),
            idle_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(5),
            max_connections: 256,
            engine: EngineOptions::default(),
        }
    }
}

/// Totals accumulated over a server's lifetime, returned by
/// [`Server::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct DrainReport {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered `ok:true`.
    pub ok: u64,
    /// Requests answered with a structured error (malformed, bad
    /// request, engine failure).
    pub errors: u64,
    /// Requests shed with `overloaded` (queue full, draining, or the
    /// connection limit).
    pub shed: u64,
    /// Requests expired in the queue and answered with `timeout`.
    pub timeouts: u64,
}

#[derive(Default)]
struct Totals {
    connections: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    timeouts: AtomicU64,
}

impl Totals {
    fn report(&self) -> DrainReport {
        DrainReport {
            connections: self.connections.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }
}

/// One framed request line awaiting a worker.
struct Job {
    seq: u64,
    raw: Vec<u8>,
    conn: Arc<Conn>,
    enqueued: Instant,
}

/// The write side of a connection plus the reply sequencer. Workers
/// complete jobs out of order; `submit` reorders replies by sequence
/// number before they reach the socket.
struct Conn {
    alive: AtomicBool,
    out: Mutex<OutState>,
}

struct OutState {
    stream: Option<TcpStream>,
    /// Sequence number the wire is waiting for next.
    next: u64,
    /// Completed replies with earlier gaps still outstanding. `None`
    /// marks a sequence slot that produces no output.
    pending: BTreeMap<u64, Option<String>>,
}

impl Conn {
    fn new(write_half: TcpStream) -> Self {
        Conn {
            alive: AtomicBool::new(true),
            out: Mutex::new(OutState {
                stream: Some(write_half),
                next: 0,
                pending: BTreeMap::new(),
            }),
        }
    }

    fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Relaxed)
    }

    /// Tear the connection down: wake any blocked peer I/O and drop the
    /// write half so queued work for it becomes a no-op.
    fn kill(&self) {
        self.alive.store(false, Ordering::Relaxed);
        let mut out = self.out.lock().expect("conn lock");
        if let Some(stream) = out.stream.take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        out.pending.clear();
    }

    /// Hand in the reply for sequence `seq` (`None` = no output owed) and
    /// flush every consecutively-ready reply to the wire. A write failure
    /// (timeout included) kills the connection.
    fn submit(&self, seq: u64, reply: Option<String>) {
        let mut out = self.out.lock().expect("conn lock");
        out.pending.insert(seq, reply);
        loop {
            let next = out.next;
            let Some(ready) = out.pending.remove(&next) else {
                break;
            };
            out.next += 1;
            let Some(line) = ready else { continue };
            let Some(stream) = out.stream.as_mut() else {
                continue;
            };
            let wrote = stream
                .write_all(line.as_bytes())
                .and_then(|()| stream.write_all(b"\n"));
            if let Err(e) = wrote {
                telemetry::counter_add("server.conn.write_failed", 1);
                telemetry::event(
                    telemetry::Level::Warn,
                    "server.conn.write_failed",
                    &[("error", e.to_string().into())],
                );
                self.alive.store(false, Ordering::Relaxed);
                if let Some(stream) = out.stream.take() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
                out.pending.clear();
                return;
            }
        }
    }
}

struct Shared {
    engine: PowerEngine,
    queue: Bounded<Job>,
    draining: AtomicBool,
    connections: AtomicUsize,
    totals: Totals,
    deadline: Option<Duration>,
    idle_timeout: Duration,
    /// Socket read timeout: the reader's poll interval for the draining
    /// flag and the idle clock, capped well below `idle_timeout`.
    read_poll: Duration,
    write_timeout: Duration,
    max_connections: usize,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Frame one raw line into the queue, shedding with a structured
    /// reply when the queue refuses it. Blank lines are skipped without
    /// consuming a sequence number (no reply is owed for them).
    fn enqueue(&self, conn: &Arc<Conn>, next_seq: &mut u64, raw: Vec<u8>) {
        if protocol::trim_line(&raw)
            .iter()
            .all(u8::is_ascii_whitespace)
        {
            return;
        }
        let seq = *next_seq;
        *next_seq += 1;
        let job = Job {
            seq,
            raw,
            conn: Arc::clone(conn),
            enqueued: Instant::now(),
        };
        match self.queue.try_push(job) {
            Ok(depth) => telemetry::gauge_set("server.queue.depth", depth as f64),
            Err(PushError::Full(job)) => {
                self.totals.shed.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.shed.overloaded", 1);
                job.conn.submit(
                    job.seq,
                    Some(protocol::error_line(
                        ErrorKind::Overloaded,
                        &format!(
                            "queue full ({} requests queued): request shed",
                            self.queue.capacity()
                        ),
                    )),
                );
            }
            Err(PushError::Closed(job)) => {
                self.totals.shed.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.shed.draining", 1);
                job.conn.submit(
                    job.seq,
                    Some(protocol::error_line(
                        ErrorKind::Overloaded,
                        "server draining: request shed",
                    )),
                );
            }
        }
    }

    /// Execute one job: decode, enforce the deadline, run the op.
    /// Returns the reply line, or `None` when no output is owed.
    fn process(&self, job: &Job, waited: Duration) -> Option<String> {
        let _span = telemetry::span("server.request");
        let started = Instant::now();
        let request = match protocol::decode(protocol::trim_line(&job.raw)) {
            Ok(Some(request)) => request,
            Ok(None) => return None,
            Err((kind, message)) => {
                self.totals.errors.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.request.error", 1);
                return Some(protocol::error_line(kind, &message));
            }
        };
        let requested = request.deadline_ms.map(Duration::from_millis);
        let limit = match (self.deadline, requested) {
            (Some(server), Some(request)) => Some(server.min(request)),
            (Some(server), None) => Some(server),
            (None, request) => request,
        };
        if let Some(limit) = limit {
            if waited > limit {
                self.totals.timeouts.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.shed.timeout", 1);
                return Some(protocol::error_line(
                    ErrorKind::Timeout,
                    &format!(
                        "deadline exceeded: queued {} ms, limit {} ms",
                        waited.as_millis(),
                        limit.as_millis()
                    ),
                ));
            }
        }
        let line = match protocol::handle(&self.engine, &request) {
            Ok(reply) => {
                self.totals.ok.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.request.ok", 1);
                protocol::render(&reply)
            }
            Err((kind, message)) => {
                self.totals.errors.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.request.error", 1);
                protocol::error_line(kind, &message)
            }
        };
        telemetry::record_duration_ns("server.request_ns", started.elapsed().as_nanos() as u64);
        Some(line)
    }
}

/// A running TCP power-estimation service. Construct with
/// [`Server::start`], stop with [`Server::shutdown`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the accept loop and the worker pool, and return the
    /// running server.
    ///
    /// # Errors
    ///
    /// Binding or thread spawning failures.
    pub fn start(options: ServerOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(options.addr)?;
        let addr = listener.local_addr()?;
        let workers = resolve_threads(options.workers);
        let shared = Arc::new(Shared {
            engine: PowerEngine::new(options.engine),
            queue: Bounded::new(options.queue_depth),
            draining: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            totals: Totals::default(),
            deadline: options.deadline,
            idle_timeout: options.idle_timeout.max(Duration::from_millis(1)),
            read_poll: options
                .idle_timeout
                .max(Duration::from_millis(1))
                .min(Duration::from_millis(250)),
            write_timeout: options.write_timeout.max(Duration::from_millis(1)),
            max_connections: options.max_connections.max(1),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hdpm-accept".into())
                .spawn(move || run_accept(&shared, &listener))?
        };
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hdpm-worker-{i}"))
                    .spawn(move || run_worker(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        telemetry::event(
            telemetry::Level::Info,
            "server.listening",
            &[
                ("addr", addr.to_string().into()),
                ("workers", workers.len().into()),
                ("queue_depth", shared.queue.capacity().into()),
            ],
        );
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine shared by the worker pool (e.g. for pre-warming).
    pub fn engine(&self) -> &PowerEngine {
        &self.shared.engine
    }

    /// Gracefully drain: stop accepting, stop reading, answer everything
    /// already queued, join the worker pool, and report lifetime totals.
    /// In-flight characterizations run to completion — their replies are
    /// on the wire before this returns.
    pub fn shutdown(mut self) -> DrainReport {
        self.begin_drain();
        // Readers poll the draining flag at `read_poll` granularity; give
        // them a generous window to stop framing before the queue closes.
        let patience = Instant::now() + Duration::from_secs(5);
        while self.shared.connections.load(Ordering::Relaxed) > 0 && Instant::now() < patience {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.shared.queue.close();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let report = self.shared.totals.report();
        telemetry::event(
            telemetry::Level::Info,
            "server.drained",
            &[
                ("connections", report.connections.into()),
                ("ok", report.ok.into()),
                ("errors", report.errors.into()),
                ("shed", report.shed.into()),
                ("timeouts", report.timeouts.into()),
            ],
        );
        report
    }

    fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::Relaxed);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for Server {
    /// A dropped (not shut down) server still releases its threads:
    /// accept and workers are told to exit, but nothing is joined and no
    /// drain guarantee is made — call [`Server::shutdown`] for that.
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.begin_drain();
            self.shared.queue.close();
        }
    }
}

fn run_accept(shared: &Arc<Shared>, listener: &TcpListener) {
    for incoming in listener.incoming() {
        if shared.draining() {
            break;
        }
        let Ok(stream) = incoming else { continue };
        if shared.connections.load(Ordering::Relaxed) >= shared.max_connections {
            telemetry::counter_add("server.conn.rejected", 1);
            shared.totals.shed.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(shared.write_timeout));
            let reject = protocol::error_line(
                ErrorKind::Overloaded,
                &format!(
                    "connection limit reached ({} active)",
                    shared.max_connections
                ),
            );
            let _ = stream.write_all(reject.as_bytes());
            let _ = stream.write_all(b"\n");
            continue; // dropped: closed
        }
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(shared.read_poll));
        let _ = write_half.set_write_timeout(Some(shared.write_timeout));
        shared.connections.fetch_add(1, Ordering::Relaxed);
        shared.totals.connections.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("server.conn.accepted", 1);
        let conn = Arc::new(Conn::new(write_half));
        let reader_shared = Arc::clone(shared);
        let reader_conn = Arc::clone(&conn);
        let spawned = std::thread::Builder::new()
            .name("hdpm-conn".into())
            .spawn(move || run_reader(&reader_shared, &reader_conn, stream));
        if spawned.is_err() {
            // Reader never ran: release the slot it reserved.
            shared.connections.fetch_sub(1, Ordering::Relaxed);
            conn.kill();
        }
    }
}

/// Frame lines off one connection into the queue until EOF, error, idle
/// expiry, teardown or drain.
fn run_reader(shared: &Arc<Shared>, conn: &Arc<Conn>, stream: TcpStream) {
    let mut reader = BufReader::new(stream);
    let mut raw: Vec<u8> = Vec::new();
    let mut last_activity = Instant::now();
    let mut next_seq = 0u64;
    loop {
        if shared.draining() || !conn.is_alive() {
            break;
        }
        match reader.read_until(b'\n', &mut raw) {
            Ok(0) => {
                // EOF; a final unterminated line still deserves a reply.
                if !raw.is_empty() {
                    shared.enqueue(conn, &mut next_seq, std::mem::take(&mut raw));
                }
                break;
            }
            Ok(_) => {
                if raw.last() == Some(&b'\n') {
                    shared.enqueue(conn, &mut next_seq, std::mem::take(&mut raw));
                    last_activity = Instant::now();
                }
                // else: delimiter-less read = EOF; the next iteration
                // returns Ok(0) and flushes `raw`.
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Poll tick: partial bytes (if any) stay in `raw`.
                if last_activity.elapsed() >= shared.idle_timeout {
                    telemetry::counter_add("server.conn.reaped", 1);
                    conn.kill();
                    break;
                }
            }
            Err(_) => break,
        }
    }
    shared.connections.fetch_sub(1, Ordering::Relaxed);
}

fn run_worker(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        telemetry::gauge_set("server.queue.depth", shared.queue.len() as f64);
        let waited = job.enqueued.elapsed();
        telemetry::record_duration_ns("server.queue_wait_ns", waited.as_nanos() as u64);
        let reply = if job.conn.is_alive() {
            shared.process(&job, waited)
        } else {
            None // dead connection: advance the sequencer, write nothing
        };
        job.conn.submit(job.seq, reply);
    }
}
