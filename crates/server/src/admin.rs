//! The admin plane: a minimal HTTP listener serving operational
//! endpoints next to (never on) the protocol port.
//!
//! | path       | purpose                                                  |
//! |------------|----------------------------------------------------------|
//! | `/metrics` | Prometheus text exposition of the metrics registry plus live engine/queue gauges |
//! | `/healthz` | liveness: `200 ok` while the process serves HTTP         |
//! | `/readyz`  | readiness: `200` only when not draining and the store probe passes; `503` otherwise |
//! | `/tracez`  | JSON dump of the flight recorder (most recent traces last) |
//! | `/clusterz`| cluster mode: ring view, warm-gate status, counters and peer health (404 when off) |
//!
//! The implementation is deliberately small: HTTP/1.0-style one request
//! per connection, GET only, `Connection: close`, one short-lived thread
//! per request. An ops scrape every few seconds is far below any load
//! this could possibly matter for, and it keeps the server free of an
//! HTTP dependency.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hdpm_telemetry::trace as trace_mod;

use crate::server::Shared;

/// The running admin listener; stop with [`AdminServer::stop`].
pub(crate) struct AdminServer {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Bind `addr` and start serving the admin endpoints.
    pub(crate) fn start(addr: SocketAddr, shared: Arc<Shared>) -> io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stopping = Arc::new(AtomicBool::new(false));
        let accept = {
            let stopping = Arc::clone(&stopping);
            std::thread::Builder::new()
                .name("hdpm-admin".into())
                .spawn(move || run_accept(&listener, &stopping, &shared))?
        };
        Ok(AdminServer {
            addr,
            stopping,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread. In-flight request
    /// threads finish on their own (each is one short write).
    pub(crate) fn stop(mut self) {
        self.stopping.store(true, Ordering::Relaxed);
        // Wake the blocking accept so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stopping.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
    }
}

fn run_accept(listener: &TcpListener, stopping: &Arc<AtomicBool>, shared: &Arc<Shared>) {
    for incoming in listener.incoming() {
        if stopping.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = incoming else { continue };
        let shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("hdpm-admin-conn".into())
            .spawn(move || serve_one(stream, &shared));
        if spawned.is_err() {
            // Spawn failure: drop the connection; the scraper retries.
        }
    }
}

/// Parse the request line of one HTTP request and write one response.
fn serve_one(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(read_half) => read_half,
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the header block so well-behaved clients see a clean close.
    let mut header = String::new();
    while reader.read_line(&mut header).is_ok() {
        if header.trim().is_empty() {
            break;
        }
        header.clear();
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Strip any query string: /tracez?n=5 routes like /tracez.
    let path = path.split('?').next().unwrap_or(path);
    let response = if method != "GET" {
        respond(
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is served\n",
        )
    } else {
        match path {
            "/metrics" => respond(
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &shared.metrics_text(),
            ),
            "/healthz" => respond("200 OK", "text/plain; charset=utf-8", "ok\n"),
            "/readyz" => match shared.readiness() {
                Ok(()) => respond("200 OK", "text/plain; charset=utf-8", "ready\n"),
                Err(reason) => respond(
                    "503 Service Unavailable",
                    "text/plain; charset=utf-8",
                    &format!("not ready: {reason}\n"),
                ),
            },
            "/tracez" => respond("200 OK", "application/json", &tracez_body()),
            "/clusterz" => match shared.clusterz_text() {
                Some(body) => respond("200 OK", "application/json", &body),
                None => respond(
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    "cluster mode is off (start with --node-id/--peers)\n",
                ),
            },
            _ => respond(
                "404 Not Found",
                "text/plain; charset=utf-8",
                "unknown path (try /metrics /healthz /readyz /tracez /clusterz)\n",
            ),
        }
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
    // Half-close the write side so clients that read to EOF (HTTP/1.0
    // without Content-Length handling) finish immediately, then wait for
    // the peer's close — bounded by the read timeout — so the kernel
    // doesn't RST the response out from under a slow reader.
    let _ = stream.shutdown(Shutdown::Write);
    let mut sink = [0u8; 64];
    let _ = reader.read(&mut sink);
}

/// The `/tracez` body: one JSON object with the recorder capacity, the
/// lifetime trace count, and the stored traces oldest-first. Also
/// exported as [`crate::flight_recorder_json`] so the CLI can dump the
/// recorder on drain or crash without an HTTP round trip.
pub fn tracez_body() -> String {
    let recorder = trace_mod::recorder();
    let traces = recorder.snapshot();
    let mut out = String::with_capacity(256 + traces.len() * 256);
    out.push_str(&format!(
        "{{\"capacity\":{},\"recorded\":{},\"traces\":[",
        recorder.capacity(),
        recorder.pushed()
    ));
    for (i, record) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&record.to_json());
    }
    out.push_str("]}\n");
    out
}

fn respond(status: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_carry_length_and_close() {
        let r = respond("200 OK", "text/plain", "hello\n");
        assert!(r.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(r.contains("Content-Length: 6\r\n"));
        assert!(r.contains("Connection: close\r\n"));
        assert!(r.ends_with("\r\n\r\nhello\n"));
    }

    #[test]
    fn tracez_body_is_json_shaped() {
        let body = tracez_body();
        assert!(body.starts_with("{\"capacity\":"));
        assert!(body.contains("\"traces\":["));
        assert!(body.trim_end().ends_with("]}"));
    }
}
