//! Cross-version compatibility matrix: one server, both protocols.
//!
//! The golden byte-for-byte v1 fixture replay lives in `golden.rs`
//! (fresh server, serialized execution — the fixtures embed stateful
//! cache counters). This file covers what golden replay cannot: v1 and
//! v2 negotiated side by side on one listener, answer agreement across
//! the op × protocol matrix, and v1 ordering guarantees holding while
//! v2 traffic shares the worker pool.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use hdpm_core::{CharacterizationConfig, EngineOptions, ShardingConfig};
use hdpm_netlist::{ModuleKind, ModuleSpec, ModuleWidth};
use hdpm_server::client::{Client, Proto, Request, Response};
use hdpm_server::{Server, ServerConfig};

fn quick_config() -> ServerConfig {
    ServerConfig::builder()
        .workers(4)
        .no_deadline()
        .engine(EngineOptions {
            config: CharacterizationConfig::builder()
                .max_patterns(1500)
                .build()
                .unwrap(),
            sharding: Some(ShardingConfig {
                shards: 4,
                threads: 1,
            }),
            disk_root: None,
            capacity: 64,
        })
        .build()
        .unwrap()
}

/// The op × protocol matrix: every request shape answered on both
/// protocols by one server, with identical numbers. Estimates and
/// characterizations are deterministic, so the answers must agree
/// bit-for-bit (modulo the v2 reply memo relabeling the source).
#[test]
fn every_op_agrees_across_protocol_versions() {
    let server = Server::start(quick_config()).expect("start");
    let mut v1 = Client::connect(server.local_addr(), Proto::V1).expect("v1");
    let mut v2 = Client::connect(server.local_addr(), Proto::V2).expect("v2");
    let specs = [
        ModuleSpec::new(ModuleKind::RippleAdder, 6usize),
        ModuleSpec::new(ModuleKind::CsaMultiplier, ModuleWidth::Rect(4, 6)),
        ModuleSpec::new(ModuleKind::Subtractor, 8usize),
    ];
    for spec in specs {
        // Characterize first on v1 (populates the cache), re-characterize
        // on v2 (hits it): sources differ by design, payloads must not.
        let c1 = match v1
            .call(&Request::Characterize { spec }, None)
            .expect("v1 characterize")
            .response
        {
            Response::Characterize(c) => c,
            other => panic!("v1: {other:?}"),
        };
        let c2 = match v2
            .call(&Request::Characterize { spec }, None)
            .expect("v2 characterize")
            .response
        {
            Response::Characterize(c) => c,
            other => panic!("v2: {other:?}"),
        };
        assert_eq!(c1.input_bits, c2.input_bits, "{spec}");
        assert_eq!(c1.transitions, c2.transitions, "{spec}");
        assert_eq!(c1.converged_after, c2.converged_after, "{spec}");
        assert_eq!(c1.source, "fresh", "{spec}");
        assert_eq!(c2.source, "memory", "{spec}");

        // Estimates need the analytic input distribution, which (on both
        // protocols alike) fits m1-wide operands only — rectangular
        // specs are characterize-only on the wire today.
        let (m1, m2) = spec.width.operand_widths();
        if m1 != m2 {
            continue;
        }
        for data in ["counter", "speech"] {
            let request = Request::Estimate {
                spec,
                data: hdpm_server::protocol::data_type(data).expect("known type"),
                cycles: 256,
                seed: 11,
                floor: None,
            };
            let e1 = match v1.call(&request, None).expect("v1 estimate").response {
                Response::Estimate(e) => e,
                other => panic!("v1: {other:?}"),
            };
            let e2 = match v2.call(&request, None).expect("v2 estimate").response {
                Response::Estimate(e) => e,
                other => panic!("v2: {other:?}"),
            };
            assert_eq!(e1.charge_per_cycle, e2.charge_per_cycle, "{spec} {data}");
            assert_eq!(e1.via_average, e2.via_average, "{spec} {data}");
            assert_eq!(e1.average_hd, e2.average_hd, "{spec} {data}");
        }
    }
    // Stats agree on the engine-lifetime counters (snapshot drift aside:
    // the two calls are adjacent, nothing else is running).
    let s1 = match v1.call(&Request::Stats, None).expect("v1 stats").response {
        Response::Stats(s) => s,
        other => panic!("v1: {other:?}"),
    };
    let s2 = match v2.call(&Request::Stats, None).expect("v2 stats").response {
        Response::Stats(s) => s,
        other => panic!("v2: {other:?}"),
    };
    assert_eq!(s1.characterizations, s2.characterizations);
    assert_eq!(s1.entries, s2.entries);
    server.shutdown();
}

/// Raw v1 bytes on the wire are untouched by the v2 path sharing the
/// listener: a JSON-lines exchange next to a framing v2 client gets
/// byte-identical replies to the same exchange on a v1-only server.
#[test]
fn v1_wire_bytes_are_unchanged_next_to_v2_traffic() {
    let exchange = |server: &Server, with_v2_neighbour: bool| -> Vec<String> {
        let neighbour = with_v2_neighbour.then(|| {
            let mut c = Client::connect(server.local_addr(), Proto::V2).expect("v2");
            c.call(&Request::Ping, None).expect("ping");
            c
        });
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        let requests = [
            "{\"op\":\"characterize\",\"module\":\"ripple_adder\",\"width\":4}",
            "{\"op\":\"estimate\",\"module\":\"ripple_adder\",\"width\":4,\"data\":\"counter\",\"cycles\":64}",
            "{\"op\":\"bogus\"}",
        ];
        for request in requests {
            stream.write_all(request.as_bytes()).expect("send");
            stream.write_all(b"\n").expect("send");
        }
        let mut reader = BufReader::new(stream);
        let replies = (0..requests.len())
            .map(|_| {
                let mut line = String::new();
                reader.read_line(&mut line).expect("reply");
                line
            })
            .collect();
        drop(neighbour);
        replies
    };
    // Tracing off: trace ids are per-request nonces and would differ.
    let solo_config = || {
        ServerConfig::builder()
            .workers(1)
            .no_deadline()
            .tracing(false)
            .engine(EngineOptions {
                config: CharacterizationConfig::builder()
                    .max_patterns(1500)
                    .build()
                    .unwrap(),
                sharding: Some(ShardingConfig {
                    shards: 4,
                    threads: 1,
                }),
                disk_root: None,
                capacity: 64,
            })
            .build()
            .unwrap()
    };
    let solo = Server::start(solo_config()).expect("start");
    let baseline = exchange(&solo, false);
    solo.shutdown();
    let mixed = Server::start(solo_config()).expect("start");
    let beside_v2 = exchange(&mixed, true);
    mixed.shutdown();
    assert_eq!(
        baseline, beside_v2,
        "v1 bytes drift when v2 shares the listener"
    );
}

/// v1 ordering holds while v2 clients hammer the same worker pool: the
/// sequencer orders one connection's replies, not the global queue.
#[test]
fn v1_ordering_survives_concurrent_v2_load() {
    let server = Server::start(quick_config()).expect("start");
    server
        .engine()
        .warm(&[ModuleSpec::new(ModuleKind::RippleAdder, 4usize)], 0)
        .expect("warm");
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Two v2 hammers in the background.
        for _ in 0..2 {
            scope.spawn(|| {
                let mut client = Client::connect(server.local_addr(), Proto::V2).expect("v2");
                let request = Request::Estimate {
                    spec: ModuleSpec::new(ModuleKind::RippleAdder, 4usize),
                    data: hdpm_server::protocol::data_type("counter").expect("known"),
                    cycles: 64,
                    seed: 7,
                    floor: None,
                };
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    client.call(&request, None).expect("v2 estimate");
                }
            });
        }
        // Foreground: strict v1 reply ordering over interleaved ops.
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        let estimate =
            "{\"op\":\"estimate\",\"module\":\"ripple_adder\",\"width\":4,\"data\":\"counter\",\"cycles\":64}";
        const PAIRS: usize = 50;
        for _ in 0..PAIRS {
            stream.write_all(estimate.as_bytes()).expect("send");
            stream.write_all(b"\n").expect("send");
            stream.write_all(b"{\"op\":\"stats\"}\n").expect("send");
        }
        let mut reader = BufReader::new(stream);
        for i in 0..PAIRS {
            let mut first = String::new();
            reader.read_line(&mut first).expect("reply");
            let mut second = String::new();
            reader.read_line(&mut second).expect("reply");
            assert!(
                first.contains("\"op\":\"estimate\""),
                "pair {i}: expected estimate, got {first}"
            );
            assert!(
                second.contains("\"op\":\"stats\""),
                "pair {i}: expected stats, got {second}"
            );
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    server.shutdown();
}
