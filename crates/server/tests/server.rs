//! Loopback integration tests of the TCP server: single-flight under
//! concurrency, queue-full shedding, deadlines, slow-client teardown,
//! idle reaping, ordering, connection limits and graceful drain.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use hdpm_core::{CharacterizationConfig, EngineOptions, ShardingConfig};
use hdpm_netlist::{ModuleKind, ModuleSpec};
use hdpm_server::{Server, ServerConfigBuilder};

/// A blocking line-oriented test client.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.try_send(line).expect("send");
    }

    /// Like [`Client::send`] but surfaces the error — for tests where the
    /// server has already torn the connection down.
    fn try_send(&mut self, line: &str) -> std::io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")
    }

    /// Next reply line, or `None` at EOF / teardown.
    fn recv(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_string()),
            Err(_) => None,
        }
    }

    fn round_trip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv().expect("reply")
    }
}

fn quick_engine() -> EngineOptions {
    EngineOptions {
        config: CharacterizationConfig::builder()
            .max_patterns(1500)
            .build()
            .unwrap(),
        sharding: Some(ShardingConfig {
            shards: 4,
            threads: 1,
        }),
        disk_root: None,
        capacity: 64,
    }
}

/// Config tuned for fast tests; deadline off unless a test sets one.
fn quick_config() -> ServerConfigBuilder {
    hdpm_server::ServerConfig::builder()
        .workers(4)
        .no_deadline()
        .engine(quick_engine())
}

/// A request whose characterization is slow enough (hundreds of ms with
/// the 12k-pattern config below) to occupy a worker while a test floods.
const SLOW_CHARACTERIZE: &str =
    "{\"op\":\"characterize\",\"module\":\"csa_multiplier\",\"width\":8}";
const STATS: &str = "{\"op\":\"stats\"}";

fn slow_engine() -> EngineOptions {
    EngineOptions {
        config: CharacterizationConfig::builder()
            .max_patterns(12_000)
            .build()
            .unwrap(),
        ..quick_engine()
    }
}

#[test]
fn concurrent_clients_on_one_uncached_spec_characterize_once() {
    let server = Server::start(quick_config().build().unwrap()).expect("start");
    let request =
        "{\"op\":\"estimate\",\"module\":\"ripple_adder\",\"width\":6,\"data\":\"counter\",\"cycles\":128}";
    let replies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = Client::connect(&server);
                    client.round_trip(request)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for reply in &replies {
        assert!(reply.contains("\"ok\":true"), "reply: {reply}");
        assert!(reply.contains("charge_per_cycle"), "reply: {reply}");
    }
    let fresh = replies
        .iter()
        .filter(|r| r.contains("\"source\":\"fresh\""))
        .count();
    assert_eq!(fresh, 1, "exactly one request characterized: {replies:?}");
    let stats = Client::connect(&server).round_trip(STATS);
    assert!(
        stats.contains("\"characterizations\":1"),
        "engine ran one characterization: {stats}"
    );
    let report = server.shutdown();
    assert_eq!(report.ok, 9);
    assert_eq!(report.shed, 0);
}

#[test]
fn saturated_queue_sheds_with_structured_overloaded_replies() {
    let server = Server::start(
        quick_config()
            .workers(1)
            .queue_depth(1)
            .engine(slow_engine())
            .build()
            .unwrap(),
    )
    .expect("start");
    let mut client = Client::connect(&server);
    client.send(SLOW_CHARACTERIZE);
    // Flood while the single worker is busy: the queue admits one
    // request, everything else must shed — immediately, not by hanging.
    const FLOOD: usize = 50;
    for _ in 0..FLOOD {
        client.send(STATS);
    }
    let replies: Vec<String> = (0..=FLOOD).map(|_| client.recv().expect("reply")).collect();
    assert!(
        replies[0].contains("\"ok\":true") && replies[0].contains("\"op\":\"characterize\""),
        "slow request completes: {}",
        replies[0]
    );
    let shed = replies
        .iter()
        .filter(|r| r.contains("\"kind\":\"overloaded\""))
        .count();
    let ok = replies.iter().filter(|r| r.contains("\"ok\":true")).count();
    assert!(shed > 0, "a saturated queue must shed: {replies:?}");
    assert_eq!(ok + shed, FLOOD + 1, "every request answered: {replies:?}");
    // The connection survives shedding.
    let after = client.round_trip(STATS);
    assert!(after.contains("\"ok\":true"), "after: {after}");
    let report = server.shutdown();
    assert_eq!(report.shed as usize, shed);
}

#[test]
fn queued_requests_past_their_deadline_reply_timeout() {
    let server = Server::start(
        quick_config()
            .workers(1)
            .deadline(Duration::from_millis(5))
            .engine(slow_engine())
            .build()
            .unwrap(),
    )
    .expect("start");
    let mut client = Client::connect(&server);
    client.send(SLOW_CHARACTERIZE);
    for _ in 0..3 {
        client.send(STATS);
    }
    let first = client.recv().expect("slow reply");
    assert!(first.contains("\"ok\":true"), "popped fresh, runs: {first}");
    let rest: Vec<String> = (0..3).map(|_| client.recv().expect("reply")).collect();
    for reply in &rest {
        assert!(
            reply.contains("\"kind\":\"timeout\"") && reply.contains("deadline exceeded"),
            "queued past deadline: {reply}"
        );
    }
    let report = server.shutdown();
    assert_eq!(report.timeouts, 3);
}

#[test]
fn per_request_deadline_field_tightens_the_server_deadline() {
    let server = Server::start(
        quick_config()
            .workers(1)
            .engine(slow_engine())
            .build()
            .unwrap(),
    )
    .expect("start");
    let mut client = Client::connect(&server);
    client.send(SLOW_CHARACTERIZE);
    client.send("{\"op\":\"stats\",\"deadline_ms\":1}");
    let first = client.recv().expect("slow reply");
    assert!(first.contains("\"ok\":true"), "{first}");
    let second = client.recv().expect("reply");
    assert!(
        second.contains("\"kind\":\"timeout\""),
        "request-level deadline honoured with no server deadline: {second}"
    );
    server.shutdown();
}

#[test]
fn slow_client_is_disconnected_by_write_timeout_and_server_survives() {
    let server = Server::start(
        quick_config()
            .queue_depth(100_000)
            .write_timeout(Duration::from_millis(200))
            .build()
            .unwrap(),
    )
    .expect("start");
    // Each reply echoes the unknown op, so a 4 KiB op makes ~4 KiB
    // replies. The client keeps writing and never reads: once the reply
    // path outgrows the socket buffers the server's write times out, it
    // tears the connection down, its reader exits, and our own writes
    // back up until they fail.
    let request = format!("{{\"op\":\"{}\"}}\n", "x".repeat(4096));
    let mut client = Client::connect(&server);
    client
        .stream
        .set_write_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    const CAP: usize = 50_000;
    let mut submitted = 0usize;
    for _ in 0..CAP {
        if client.stream.write_all(request.as_bytes()).is_err() {
            break; // server stopped reading after tearing us down
        }
        submitted += 1;
    }
    assert!(
        submitted < CAP,
        "writes must eventually fail once the server disconnects us"
    );
    client
        .stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut received = 0usize;
    while client.recv().is_some() {
        received += 1;
    }
    assert!(
        received < submitted,
        "teardown must drop replies ({received} of {submitted} delivered)"
    );
    // The server is still healthy for other clients.
    let ok = Client::connect(&server).round_trip(STATS);
    assert!(ok.contains("\"ok\":true"), "{ok}");
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped() {
    let server = Server::start(
        quick_config()
            .idle_timeout(Duration::from_millis(100))
            .build()
            .unwrap(),
    )
    .expect("start");
    let mut client = Client::connect(&server);
    let reply = client.round_trip(STATS);
    assert!(reply.contains("\"ok\":true"));
    std::thread::sleep(Duration::from_millis(600));
    // The server shut the socket down; we observe EOF without sending.
    assert_eq!(client.recv(), None, "reaped connection is closed");
    server.shutdown();
}

#[test]
fn malformed_and_invalid_utf8_lines_do_not_kill_the_connection() {
    let server = Server::start(quick_config().build().unwrap()).expect("start");
    let mut client = Client::connect(&server);
    client.stream.write_all(b"not json\n").unwrap();
    client.stream.write_all(&[0xFF, 0xFE, 0x80, b'\n']).unwrap();
    client.send(STATS);
    let first = client.recv().expect("reply");
    assert!(first.contains("\"kind\":\"malformed\""), "{first}");
    let second = client.recv().expect("reply");
    assert!(second.contains("\"kind\":\"invalid_utf8\""), "{second}");
    let third = client.recv().expect("reply");
    assert!(third.contains("\"ok\":true"), "{third}");
    server.shutdown();
}

#[test]
fn replies_arrive_in_request_order_despite_the_worker_pool() {
    let server = Server::start(quick_config().build().unwrap()).expect("start");
    // Warm the spec so estimates are fast but still slower than stats.
    server
        .engine()
        .warm(&[ModuleSpec::new(ModuleKind::RippleAdder, 4usize)], 0)
        .expect("warm");
    let estimate =
        "{\"op\":\"estimate\",\"module\":\"ripple_adder\",\"width\":4,\"data\":\"counter\",\"cycles\":64}";
    let mut client = Client::connect(&server);
    const PAIRS: usize = 100;
    for _ in 0..PAIRS {
        client.send(estimate);
        client.send(STATS);
    }
    for i in 0..PAIRS {
        let first = client.recv().expect("reply");
        let second = client.recv().expect("reply");
        assert!(
            first.contains("\"op\":\"estimate\""),
            "pair {i}: expected estimate, got {first}"
        );
        assert!(
            second.contains("\"op\":\"stats\""),
            "pair {i}: expected stats, got {second}"
        );
    }
    server.shutdown();
}

#[test]
fn connection_limit_rejects_with_overloaded() {
    let server = Server::start(quick_config().max_connections(1).build().unwrap()).expect("start");
    let mut first = Client::connect(&server);
    assert!(first.round_trip(STATS).contains("\"ok\":true"));
    let mut second = Client::connect(&server);
    let reply = second.recv().expect("rejection reply");
    assert!(
        reply.contains("\"kind\":\"overloaded\"") && reply.contains("connection limit"),
        "{reply}"
    );
    assert_eq!(second.recv(), None, "rejected connection is closed");
    // The admitted connection still works.
    assert!(first.round_trip(STATS).contains("\"ok\":true"));
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let server = Server::start(
        quick_config()
            .workers(2)
            .engine(slow_engine())
            .build()
            .unwrap(),
    )
    .expect("start");
    let mut client = Client::connect(&server);
    client.send(SLOW_CHARACTERIZE);
    // Let the worker pick the job up, then drain while it runs.
    std::thread::sleep(Duration::from_millis(50));
    let report = server.shutdown();
    assert_eq!(report.ok, 1, "in-flight request completed during drain");
    let reply = client.recv().expect("reply flushed before drain finished");
    assert!(
        reply.contains("\"ok\":true") && reply.contains("\"op\":\"characterize\""),
        "{reply}"
    );
    assert_eq!(client.recv(), None, "connection closed after drain");
}

#[test]
fn server_cold_starts_and_serves_from_a_dirty_model_store() {
    let root = std::env::temp_dir().join(format!("hdpm_server_dirty_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir(&root).expect("scratch root");
    let engine_options = || EngineOptions {
        disk_root: Some(root.clone()),
        ..quick_engine()
    };
    // A torn artifact planted at the exact key the engine will ask for.
    let spec = ModuleSpec::new(ModuleKind::RippleAdder, 5usize);
    let key = hdpm_core::ModelKey::new(spec, &engine_options().config, 4);
    std::fs::write(root.join(key.artifact_file_name()), "{torn artifact").expect("plant");

    let server = Server::start(quick_config().engine(engine_options()).build().unwrap())
        .expect("cold start survives a dirty store");
    let request =
        "{\"op\":\"estimate\",\"module\":\"ripple_adder\",\"width\":5,\"data\":\"counter\",\"cycles\":64}";
    let reply = Client::connect(&server).round_trip(request);
    assert!(
        reply.contains("\"ok\":true") && reply.contains("\"source\":\"fresh\""),
        "corrupt artifact is quarantined and re-characterized, not fatal: {reply}"
    );
    assert!(
        root.join(hdpm_core::QUARANTINE_DIR)
            .join(key.artifact_file_name())
            .exists(),
        "the torn artifact was moved aside"
    );
    server.shutdown();

    // A second server over the repaired root serves straight from disk.
    let server =
        Server::start(quick_config().engine(engine_options()).build().unwrap()).expect("restart");
    let reply = Client::connect(&server).round_trip(request);
    assert!(
        reply.contains("\"ok\":true") && reply.contains("\"source\":\"disk\""),
        "repaired store is a warm disk tier: {reply}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn draining_server_sheds_requests_that_arrive_too_late() {
    let server = Server::start(quick_config().build().unwrap()).expect("start");
    let mut client = Client::connect(&server);
    assert!(client.round_trip(STATS).contains("\"ok\":true"));
    server.shutdown();
    // After drain the socket is closed; the write may fail outright (EPIPE)
    // or the read observes EOF — never a hang, never a torn loop. A request
    // that squeaks in mid-drain earns a structured draining reply instead.
    if client.try_send(STATS).is_ok() {
        match client.recv() {
            None => {}
            Some(reply) => assert!(reply.contains("\"kind\":\"overloaded\""), "{reply}"),
        }
    }
}
