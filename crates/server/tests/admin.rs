//! Admin-plane integration tests: the HTTP endpoints (`/metrics`,
//! `/healthz`, `/readyz`, `/tracez`), the golden metric-family skeleton,
//! readiness flipping during drain, and the end-to-end tracing
//! acceptance check — a slow cold request whose per-stage timings must
//! reconcile with the wall clock measured at the client.
//!
//! The metrics registry and the flight recorder are process-global, so
//! every test serializes on one lock and resets both before starting.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use hdpm_core::{CharacterizationConfig, EngineOptions, ShardingConfig};
use hdpm_server::{Server, ServerConfig};
use hdpm_telemetry as telemetry;

static GLOBAL_STATE: Mutex<()> = Mutex::new(());

/// Serialize on the global telemetry state and wipe it.
fn fresh_state() -> std::sync::MutexGuard<'static, ()> {
    let guard = GLOBAL_STATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    telemetry::reset();
    telemetry::trace::recorder().clear();
    guard
}

fn quick_engine() -> EngineOptions {
    EngineOptions {
        config: CharacterizationConfig::builder()
            .max_patterns(1500)
            .build()
            .unwrap(),
        sharding: Some(ShardingConfig {
            shards: 4,
            threads: 1,
        }),
        disk_root: None,
        capacity: 64,
    }
}

fn admin_options(engine: EngineOptions) -> ServerConfig {
    ServerConfig::builder()
        .workers(1)
        .no_deadline()
        .engine(engine)
        .admin_addr(SocketAddr::from(([127, 0, 0, 1], 0)))
        .build()
        .unwrap()
}

/// One blocking HTTP/1.0 GET against the admin plane.
fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut writer = stream.try_clone()?;
    write!(writer, "GET {path} HTTP/1.0\r\nConnection: close\r\n\r\n")?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut header = String::new();
    loop {
        header.clear();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body)?;
    Ok((status, body))
}

/// A blocking line-oriented protocol client.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn round_trip(&mut self, line: &str) -> String {
        self.stream.write_all(line.as_bytes()).expect("send");
        self.stream.write_all(b"\n").expect("send");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reply");
        reply.trim_end().to_string()
    }
}

fn admin_addr(server: &Server) -> SocketAddr {
    server.admin_addr().expect("admin plane configured")
}

const STATS: &str = "{\"op\":\"stats\"}";
const SLOW_CHARACTERIZE: &str =
    "{\"op\":\"characterize\",\"module\":\"csa_multiplier\",\"width\":8}";

#[test]
fn admin_endpoints_serve_health_metrics_and_traces() {
    let _state = fresh_state();
    let server = Server::start(admin_options(quick_engine())).expect("start");
    let admin = admin_addr(&server);

    let (status, body) = http_get(admin, "/healthz").expect("healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, body) = http_get(admin, "/readyz").expect("readyz");
    assert_eq!((status, body.as_str()), (200, "ready\n"));

    let reply = Client::connect(&server).round_trip(STATS);
    assert!(reply.contains("\"ok\":true"), "{reply}");
    let trace_id = trace_id_of(&reply);

    let (status, metrics) = http_get(admin, "/metrics").expect("metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("# TYPE engine_cache_entries gauge"),
        "{metrics}"
    );
    assert!(
        metrics.contains("# TYPE server_request_ns summary"),
        "{metrics}"
    );
    assert!(
        metrics.contains("# TYPE server_request_ok counter"),
        "{metrics}"
    );

    // The trace record is filed after the reply is on the wire, so the
    // scrape can race the worker's completion hook: poll briefly.
    let needle = format!("\"trace\":\"{trace_id}\"");
    let deadline = Instant::now() + Duration::from_secs(5);
    let traces = loop {
        let (status, body) = http_get(admin, "/tracez").expect("tracez");
        assert_eq!(status, 200);
        assert!(body.starts_with("{\"capacity\":"), "{body}");
        if body.contains(&needle) || Instant::now() >= deadline {
            break body;
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    assert!(
        traces.contains(&needle),
        "trace from the reply is in the recorder: {traces}"
    );

    let (status, body) = http_get(admin, "/nonsense").expect("404");
    assert_eq!(status, 404);
    assert!(body.contains("/metrics"), "{body}");

    server.shutdown();
}

/// The `"trace":"t…"` id embedded in a reply line.
fn trace_id_of(reply: &str) -> String {
    let value: serde::Value = serde_json::from_str(reply).expect("reply parses");
    value
        .get("trace")
        .and_then(serde::Value::as_str)
        .unwrap_or_else(|| panic!("reply carries a trace id: {reply}"))
        .to_string()
}

/// The golden skeleton: after a fixed request sequence the `/metrics`
/// exposition must declare exactly the metric families in
/// `tests/fixtures/metrics_skeleton.txt` (names and types only — values
/// and label sets are load-dependent). CI replays the same sequence
/// against a real `hdpm server` process and diffs the same lines.
#[test]
fn metrics_skeleton_matches_golden_fixture() {
    let _state = fresh_state();
    let mut options = admin_options(quick_engine());
    // Everything is "slow" so the slow-request counter family appears.
    options.slow_threshold = Duration::from_nanos(1);
    let server = Server::start(options).expect("start");
    let mut client = Client::connect(&server);

    let estimate =
        "{\"op\":\"estimate\",\"module\":\"ripple_adder\",\"width\":6,\"data\":\"counter\",\"cycles\":128}";
    // Cold estimate, warm estimate (cache + dist-cache hits), a
    // characterize hit, a stats probe and one malformed line: together
    // they touch every metric family a healthy server produces.
    for request in [
        estimate,
        estimate,
        "{\"op\":\"characterize\",\"module\":\"ripple_adder\",\"width\":6}",
        STATS,
        "not json",
    ] {
        client.round_trip(request);
    }

    let (status, metrics) = http_get(admin_addr(&server), "/metrics").expect("metrics");
    assert_eq!(status, 200);
    let skeleton: String = metrics
        .lines()
        .filter(|l| l.starts_with("# TYPE "))
        .map(|l| format!("{l}\n"))
        .collect();

    let fixture_path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("tests/fixtures/metrics_skeleton.txt");
    // `HDPM_BLESS=1 cargo test -p hdpm-server --test admin` regenerates
    // the fixture after an intentional metric change.
    if std::env::var_os("HDPM_BLESS").is_some() {
        std::fs::write(&fixture_path, &skeleton).expect("bless fixture");
    }
    let golden = std::fs::read_to_string(&fixture_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", fixture_path.display()));
    assert_eq!(
        skeleton, golden,
        "metric families drifted — update tests/fixtures/metrics_skeleton.txt \
         and docs/telemetry.md together"
    );
    server.shutdown();
}

#[test]
fn readyz_flips_to_503_while_draining_and_admin_stops_last() {
    let _state = fresh_state();
    let engine = EngineOptions {
        config: CharacterizationConfig::builder()
            .max_patterns(12_000)
            .build()
            .unwrap(),
        ..quick_engine()
    };
    let server = Server::start(admin_options(engine)).expect("start");
    let admin = admin_addr(&server);

    let (status, _) = http_get(admin, "/readyz").expect("readyz");
    assert_eq!(status, 200, "ready before drain");

    // Occupy the single worker with a pipeline of slow characterizations
    // (distinct widths → distinct models, no cache reuse), then drain
    // from another thread. Drain answers everything already queued, so
    // the 503 window stays open for the whole queued backlog — seconds,
    // not one request — and the poll below cannot miss it.
    let mut client = Client::connect(&server);
    for width in [8u32, 9, 10] {
        let line = format!(
            "{{\"op\":\"characterize\",\"module\":\"csa_multiplier\",\"width\":{width}}}\n"
        );
        client.stream.write_all(line.as_bytes()).unwrap();
    }
    // Wait until the reader thread has framed all three requests (one in
    // the worker, two queued): draining earlier would shed them instead.
    let framed = Instant::now();
    loop {
        let (_, body) = http_get(admin, "/metrics").expect("metrics");
        let queued = body
            .lines()
            .find_map(|l| l.strip_prefix("server_queue_len "))
            .and_then(|v| v.trim().parse::<f64>().ok())
            .unwrap_or(0.0);
        if queued >= 2.0 {
            break;
        }
        assert!(
            framed.elapsed() < Duration::from_secs(10),
            "requests were never queued (queue len {queued})"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let drain = std::thread::spawn(move || server.shutdown());

    let saw_draining = Instant::now();
    let mut flipped = false;
    while saw_draining.elapsed() < Duration::from_secs(10) {
        match http_get(admin, "/readyz") {
            Ok((503, body)) => {
                assert!(body.contains("draining"), "{body}");
                flipped = true;
                break;
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(2)),
            Err(_) => break, // admin already gone: drain won the race
        }
    }
    assert!(flipped, "readyz must report 503 during the drain window");

    // The held requests still complete (drain answers everything queued).
    for _ in 0..3 {
        let mut reply = String::new();
        client.reader.read_line(&mut reply).expect("drained reply");
        assert!(reply.contains("\"ok\":true"), "{reply}");
    }
    let report = drain.join().expect("drain");
    assert_eq!(report.ok, 3);

    // After shutdown returns the admin listener is gone.
    let gone = Instant::now();
    let mut refused = false;
    while gone.elapsed() < Duration::from_secs(5) {
        if TcpStream::connect(admin).is_err() {
            refused = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(refused, "admin plane must stop after the drain");
}

/// The acceptance criterion of the tracing tentpole: a slow cold request
/// produces a flight-recorder entry whose per-stage timings sum to
/// within 5% of the wall time measured at the client, under the same
/// trace id the reply echoed — and trips the slow-request counter.
#[test]
fn slow_cold_request_reconciles_stage_timings_with_wall_time() {
    let _state = fresh_state();
    let engine = EngineOptions {
        // Heavy enough (hundreds of ms) that untimed gaps — loopback
        // transit and queue hand-off overhead — stay far inside the 5%
        // reconciliation budget.
        config: CharacterizationConfig::builder()
            .max_patterns(60_000)
            .build()
            .unwrap(),
        ..quick_engine()
    };
    let mut options = admin_options(engine);
    options.slow_threshold = Duration::from_millis(1);
    let server = Server::start(options).expect("start");
    let admin = admin_addr(&server);

    let mut client = Client::connect(&server);
    let started = Instant::now();
    let reply = client.round_trip(SLOW_CHARACTERIZE);
    let wall_ns = started.elapsed().as_nanos() as f64;
    assert!(reply.contains("\"ok\":true"), "{reply}");
    let trace_id = trace_id_of(&reply);

    // The flight recorder entry lands after the reply is on the wire;
    // give the finisher a moment.
    let mut entry = None;
    let deadline = Instant::now() + Duration::from_secs(5);
    while entry.is_none() && Instant::now() < deadline {
        let (status, body) = http_get(admin, "/tracez").expect("tracez");
        assert_eq!(status, 200);
        let value: serde::Value = serde_json::from_str(&body).expect("tracez parses");
        entry = value
            .get("traces")
            .and_then(serde::Value::as_array)
            .and_then(|traces| {
                traces
                    .iter()
                    .find(|t| t.get("trace").and_then(serde::Value::as_str) == Some(&trace_id))
                    .cloned()
            });
        if entry.is_none() {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let entry = entry.expect("the traced request reaches /tracez");

    assert_eq!(
        entry.get("op").and_then(serde::Value::as_str),
        Some("characterize")
    );
    assert_eq!(
        entry.get("status").and_then(serde::Value::as_str),
        Some("ok")
    );
    let total_ns = entry
        .get("total_ns")
        .and_then(serde::Value::as_f64)
        .expect("total_ns");
    let stage_sum: f64 = entry
        .get("stages")
        .and_then(serde::Value::as_object)
        .expect("stages")
        .iter()
        .filter_map(|(_, v)| v.as_f64())
        .sum();
    let reconcile = |label: &str, reference: f64| {
        let gap = (reference - stage_sum).abs();
        assert!(
            gap <= 0.05 * reference,
            "stage sum {stage_sum} ns must be within 5% of {label} {reference} ns \
             (gap {gap} ns, trace {trace_id})"
        );
    };
    reconcile("recorded total", total_ns);
    reconcile("client wall time", wall_ns);

    let (status, metrics) = http_get(admin, "/metrics").expect("metrics");
    assert_eq!(status, 200);
    let slow = metrics
        .lines()
        .find_map(|l| l.strip_prefix("server_request_slow "))
        .and_then(|v| v.parse::<f64>().ok())
        .expect("slow-request counter exposed");
    assert!(slow >= 1.0, "the slow request is counted: {slow}");

    server.shutdown();
}
