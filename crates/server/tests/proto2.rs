//! Protocol v2 integration tests: framed round-trips, out-of-order
//! completion, in-band deadlines (timeout frames and late-but-labeled
//! replies), and wire-abuse handling — all against a live TCP server
//! through the typed [`Client`].

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use hdpm_core::{CharacterizationConfig, EngineOptions, ShardingConfig};
use hdpm_netlist::{ModuleKind, ModuleSpec};
use hdpm_server::client::{Client, Proto, Request, Response};
use hdpm_server::{wire, Server, ServerConfig, ServerConfigBuilder};

fn quick_engine() -> EngineOptions {
    EngineOptions {
        config: CharacterizationConfig::builder()
            .max_patterns(1500)
            .build()
            .unwrap(),
        sharding: Some(ShardingConfig {
            shards: 4,
            threads: 1,
        }),
        disk_root: None,
        capacity: 64,
    }
}

fn slow_engine() -> EngineOptions {
    EngineOptions {
        config: CharacterizationConfig::builder()
            .max_patterns(12_000)
            .build()
            .unwrap(),
        ..quick_engine()
    }
}

fn quick_config() -> ServerConfigBuilder {
    ServerConfig::builder()
        .workers(4)
        .no_deadline()
        .engine(quick_engine())
}

fn estimate(width: usize) -> Request {
    Request::Estimate {
        spec: ModuleSpec::new(ModuleKind::RippleAdder, width),
        data: hdpm_server::protocol::data_type("counter").expect("known type"),
        cycles: 64,
        seed: 7,
        floor: None,
    }
}

#[test]
fn v2_round_trips_every_opcode() {
    // One worker: the reply memo is per-worker thread state, so the
    // repeated estimate below must land on the worker that cached it.
    let server = Server::start(quick_config().workers(1).build().unwrap()).expect("start");
    let mut client = Client::connect(server.local_addr(), Proto::V2).expect("connect");

    let reply = client.call(&Request::Ping, None).expect("ping");
    assert_eq!(reply.response, Response::Pong);
    assert!(!reply.late);

    let reply = client
        .call(
            &Request::Characterize {
                spec: ModuleSpec::new(ModuleKind::RippleAdder, 6usize),
            },
            None,
        )
        .expect("characterize");
    match reply.response {
        Response::Characterize(c) => {
            assert_eq!(c.input_bits, 12);
            assert!(c.transitions > 0);
            assert_eq!(c.source, "fresh");
        }
        other => panic!("unexpected reply {other:?}"),
    }

    let reply = client.call(&estimate(6), None).expect("estimate");
    match reply.response {
        Response::Estimate(e) => {
            assert!(e.charge_per_cycle > 0.0);
            assert!(e.average_hd > 0.0);
            assert_eq!(e.source, "memory", "model cached by the characterize");
        }
        other => panic!("unexpected reply {other:?}"),
    }

    // A repeated estimate short-circuits through the per-worker reply
    // memo, labeled as such.
    let reply = client.call(&estimate(6), None).expect("estimate");
    match reply.response {
        Response::Estimate(e) => assert_eq!(e.source, "memo"),
        other => panic!("unexpected reply {other:?}"),
    }

    let reply = client.call(&Request::Stats, None).expect("stats");
    match reply.response {
        Response::Stats(s) => {
            assert_eq!(s.characterizations, 1);
            assert!(s.entries >= 1);
        }
        other => panic!("unexpected reply {other:?}"),
    }
    server.shutdown();
}

#[test]
fn v2_and_v1_agree_on_the_numbers() {
    let server = Server::start(quick_config().build().unwrap()).expect("start");
    let mut v1 = Client::connect(server.local_addr(), Proto::V1).expect("connect v1");
    let mut v2 = Client::connect(server.local_addr(), Proto::V2).expect("connect v2");
    let request = estimate(5);
    let via_v1 = match v1.call(&request, None).expect("v1").response {
        Response::Estimate(e) => e,
        other => panic!("unexpected v1 reply {other:?}"),
    };
    let via_v2 = match v2.call(&request, None).expect("v2").response {
        Response::Estimate(e) => e,
        other => panic!("unexpected v2 reply {other:?}"),
    };
    assert_eq!(via_v1.charge_per_cycle, via_v2.charge_per_cycle);
    assert_eq!(via_v1.via_average, via_v2.via_average);
    assert_eq!(via_v1.average_hd, via_v2.average_hd);
    server.shutdown();
}

/// The tentpole behavior: a slow characterization ahead in the pipeline
/// does NOT hold back the cheap requests behind it. The two frame
/// batches are separated by a flush + delay so they cross the socket
/// independently, and the pings must come back before the
/// characterization does.
#[test]
fn v2_replies_complete_out_of_order_past_a_slow_request() {
    let server = Server::start(
        quick_config()
            .workers(2)
            .engine(slow_engine())
            .build()
            .unwrap(),
    )
    .expect("start");
    let mut client = Client::connect(server.local_addr(), Proto::V2).expect("connect");
    let slow_id = client
        .send(
            &Request::Characterize {
                spec: ModuleSpec::new(ModuleKind::CsaMultiplier, 8usize),
            },
            None,
        )
        .expect("send slow");
    client.flush().expect("flush");
    // Give the reactor time to batch the slow frame alone and hand it to
    // a worker before the pings arrive in a second batch.
    std::thread::sleep(Duration::from_millis(50));
    let ping_ids: Vec<u64> = (0..3)
        .map(|_| client.send(&Request::Ping, None).expect("send ping"))
        .collect();
    client.flush().expect("flush");
    let mut order = Vec::new();
    for _ in 0..4 {
        let reply = client.recv().expect("reply");
        order.push(reply.id);
    }
    assert_eq!(
        &order[..3],
        &ping_ids[..],
        "pings overtake the slow characterization: {order:?}"
    );
    assert_eq!(order[3], slow_id, "slow reply still arrives: {order:?}");
    server.shutdown();
}

#[test]
fn v2_deadline_expiring_in_queue_earns_a_timeout_frame() {
    let server = Server::start(
        quick_config()
            .workers(1)
            .engine(slow_engine())
            .build()
            .unwrap(),
    )
    .expect("start");
    let mut client = Client::connect(server.local_addr(), Proto::V2).expect("connect");
    // Occupy the single worker, then queue a request with a 1 ms in-band
    // deadline: by the time a worker sees it, it is long expired.
    let slow_id = client
        .send(
            &Request::Characterize {
                spec: ModuleSpec::new(ModuleKind::CsaMultiplier, 8usize),
            },
            None,
        )
        .expect("send slow");
    client.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(50));
    let doomed = client.send(&Request::Ping, Some(1)).expect("send doomed");
    client.flush().expect("flush");
    let mut timed_out = false;
    for _ in 0..2 {
        let reply = client.recv().expect("reply");
        if reply.id == doomed {
            match reply.response {
                Response::Error {
                    ref kind,
                    ref message,
                } => {
                    assert_eq!(kind, "timeout", "{reply:?}");
                    assert!(message.contains("deadline exceeded"), "{message}");
                    timed_out = true;
                }
                ref other => panic!("expected timeout, got {other:?}"),
            }
        } else {
            assert_eq!(reply.id, slow_id);
        }
    }
    assert!(timed_out, "the doomed request must earn a timeout frame");
    let report = server.shutdown();
    assert_eq!(report.timeouts, 1);
}

/// Regression for the documented deadline semantics: a deadline that
/// expires while a characterization is EXECUTING (not queued) yields the
/// full answer labeled late, not a timeout and not an unlabeled success.
#[test]
fn v2_deadline_expiring_mid_characterization_is_late_but_labeled() {
    let server = Server::start(
        quick_config()
            .workers(1)
            .engine(slow_engine())
            .build()
            .unwrap(),
    )
    .expect("start");
    let mut client = Client::connect(server.local_addr(), Proto::V2).expect("connect");
    // The characterization takes hundreds of ms with the 12k-pattern
    // config; a 25 ms deadline is comfortably alive when the worker
    // starts (nothing is queued ahead) and long dead when it finishes.
    let reply = client
        .call(
            &Request::Characterize {
                spec: ModuleSpec::new(ModuleKind::CsaMultiplier, 8usize),
            },
            Some(25),
        )
        .expect("characterize");
    assert!(
        reply.late,
        "mid-execution expiry must set FLAG_LATE: {reply:?}"
    );
    match reply.response {
        Response::Characterize(c) => {
            assert!(c.transitions > 0, "the full answer is still delivered");
            assert_eq!(c.source, "fresh");
        }
        other => panic!("expected a late characterize answer, got {other:?}"),
    }
    let report = server.shutdown();
    assert_eq!(report.timeouts, 0, "late-but-labeled is not a timeout");
    assert_eq!(report.ok, 1);
}

#[test]
fn v2_unknown_opcode_and_bad_payload_answer_structured_errors() {
    let server = Server::start(quick_config().build().unwrap()).expect("start");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(&wire::MAGIC).expect("magic");
    // Unknown opcode 99.
    let mut frame = Vec::new();
    wire::encode_frame(&mut frame, 7, 99, 0, b"");
    // Estimate with a truncated payload.
    wire::encode_frame(&mut frame, 8, wire::Opcode::Estimate as u8, 0, &[1, 2, 3]);
    stream.write_all(&frame).expect("send");
    fn read_reply(stream: &mut TcpStream, expect_id: u64) -> (u8, String) {
        let mut header = [0u8; wire::HEADER_LEN];
        stream.read_exact(&mut header).expect("header");
        let header = wire::decode_header(&header);
        assert_eq!(header.id, expect_id);
        let mut payload = vec![0u8; header.len as usize];
        stream.read_exact(&mut payload).expect("payload");
        (header.op, String::from_utf8_lossy(&payload).into_owned())
    }
    let (status, message) = read_reply(&mut stream, 7);
    assert_eq!(
        wire::kind_of(status).map(|k| k.as_str()),
        Some("bad_request")
    );
    assert!(message.contains("unknown opcode 99"), "{message}");
    let (status, message) = read_reply(&mut stream, 8);
    assert_eq!(
        wire::kind_of(status).map(|k| k.as_str()),
        Some("bad_request")
    );
    assert!(message.contains("estimate payload"), "{message}");
    // The connection survives both.
    let mut probe = Vec::new();
    wire::encode_frame(&mut probe, 9, wire::Opcode::Ping as u8, 0, b"");
    stream.write_all(&probe).expect("send");
    let (status, _) = read_reply(&mut stream, 9);
    assert_eq!(status, wire::STATUS_OK);
    server.shutdown();
}

#[test]
fn v2_oversized_frame_tears_the_connection_down_after_a_reply() {
    let server = Server::start(quick_config().build().unwrap()).expect("start");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(&wire::MAGIC).expect("magic");
    // A header announcing 2 MiB: protocol abuse, not a request.
    let mut header = Vec::new();
    header.extend_from_slice(&(2u32 << 20).to_le_bytes());
    header.extend_from_slice(&1u64.to_le_bytes());
    header.push(wire::Opcode::Ping as u8);
    header.extend_from_slice(&0u32.to_le_bytes());
    stream.write_all(&header).expect("send");
    // One malformed error frame comes back, then EOF.
    let mut reply = [0u8; wire::HEADER_LEN];
    stream.read_exact(&mut reply).expect("error frame");
    let decoded = wire::decode_header(&reply);
    assert_eq!(decoded.id, 1);
    assert_eq!(
        wire::kind_of(decoded.op).map(|k| k.as_str()),
        Some("malformed")
    );
    let mut payload = vec![0u8; decoded.len as usize];
    stream.read_exact(&mut payload).expect("payload");
    let mut rest = Vec::new();
    let eof = stream.read_to_end(&mut rest);
    assert!(
        matches!(eof, Ok(0)),
        "connection must be closed after the abuse reply: {eof:?} {rest:?}"
    );
    // The server is unharmed.
    let mut client = Client::connect(server.local_addr(), Proto::V2).expect("connect");
    assert_eq!(
        client.call(&Request::Ping, None).expect("ping").response,
        Response::Pong
    );
    server.shutdown();
}

#[test]
fn v2_pipelined_load_is_answered_completely() {
    let server = Server::start(quick_config().queue_depth(65_536).build().unwrap()).expect("start");
    let mut client = Client::connect(server.local_addr(), Proto::V2).expect("connect");
    // Warm the model once so the flood is pure serving.
    client.call(&estimate(8), None).expect("warm");
    const N: usize = 5000;
    let mut expected: Vec<u64> = Vec::with_capacity(N);
    for _ in 0..N {
        expected.push(client.send(&estimate(8), None).expect("send"));
    }
    client.flush().expect("flush");
    let mut got: Vec<u64> = Vec::with_capacity(N);
    for _ in 0..N {
        let reply = client.recv().expect("recv");
        match reply.response {
            Response::Estimate(_) => got.push(reply.id),
            other => panic!("unexpected reply {other:?}"),
        }
    }
    got.sort_unstable();
    assert_eq!(got, expected, "every id answered exactly once");
    let report = server.shutdown();
    assert_eq!(report.errors, 0);
    assert_eq!(report.shed, 0);
}
