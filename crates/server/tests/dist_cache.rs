//! The per-worker input-distribution memo vs its telemetry: hits, misses
//! and evictions counted while real v1 requests flow through the reactor
//! pool. Regression coverage for the §5 fix where a full memo was wiped
//! (`clear()`) instead of evicting the one least-recently-used entry —
//! the warm working set must survive the 129th distinct key.
//!
//! One worker, so every request lands on the same thread-local memo.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use hdpm_core::{CharacterizationConfig, EngineOptions, ShardingConfig};
use hdpm_server::{Server, ServerConfig};
use hdpm_telemetry as telemetry;

/// The memo bound in `protocol::input_distribution`.
const CACHE_CAPACITY: usize = 128;

fn quick_engine() -> EngineOptions {
    EngineOptions {
        config: CharacterizationConfig::builder()
            .max_patterns(1500)
            .build()
            .unwrap(),
        sharding: Some(ShardingConfig {
            shards: 4,
            threads: 1,
        }),
        disk_root: None,
        capacity: 64,
    }
}

fn counter(name: &str) -> u64 {
    telemetry::snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

fn estimate(cycles: usize) -> String {
    format!(
        "{{\"op\":\"estimate\",\"module\":\"ripple_adder\",\"width\":4,\"data\":\"counter\",\"cycles\":{cycles}}}"
    )
}

#[test]
fn dist_cache_counters_track_hits_misses_and_single_entry_eviction() {
    telemetry::reset();
    let server = Server::start(
        ServerConfig::builder()
            .workers(1)
            .no_deadline()
            .engine(quick_engine())
            .build()
            .unwrap(),
    )
    .expect("start");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut exchange = |line: &str| -> String {
        let mut stream = &stream;
        stream.write_all(line.as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        assert!(
            reply.contains("\"ok\":true"),
            "request {line} failed: {reply}"
        );
        reply
    };

    // Cold key: one miss; the identical request again: one hit.
    exchange(&estimate(64));
    assert_eq!(counter("protocol.dist_cache.miss"), 1);
    assert_eq!(counter("protocol.dist_cache.hit"), 0);
    exchange(&estimate(64));
    assert_eq!(counter("protocol.dist_cache.miss"), 1);
    assert_eq!(counter("protocol.dist_cache.hit"), 1);
    assert_eq!(counter("protocol.dist_cache.evict"), 0);

    // Fill the memo with distinct keys until one past capacity. The memo
    // holds the cycles=64 entry plus CACHE_CAPACITY fresh ones, so
    // exactly one eviction fires — and its victim is the least recently
    // used key (cycles=64), not the whole map.
    for cycles in 200..200 + CACHE_CAPACITY {
        exchange(&estimate(cycles));
    }
    assert_eq!(
        counter("protocol.dist_cache.miss"),
        1 + CACHE_CAPACITY as u64
    );
    assert_eq!(
        counter("protocol.dist_cache.evict"),
        1,
        "one entry, not a wipe"
    );

    // The warm working set survived the eviction: a recent key still hits…
    let hits_before = counter("protocol.dist_cache.hit");
    exchange(&estimate(200 + CACHE_CAPACITY - 1));
    assert_eq!(counter("protocol.dist_cache.hit"), hits_before + 1);
    // …while the evicted LRU key misses and is re-fitted.
    exchange(&estimate(64));
    assert_eq!(
        counter("protocol.dist_cache.miss"),
        2 + CACHE_CAPACITY as u64
    );

    server.shutdown();
}
