//! Queue-pressure metrics vs the wire: every structured `overloaded` or
//! `timeout` reply a client receives must be matched by exactly one
//! increment of the corresponding `server.queue.*` counter — the
//! dashboards and the clients must never disagree about how much load
//! was refused.
//!
//! The metrics registry is process-global, so both tests serialize on
//! one lock and reset it first.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

use hdpm_core::{CharacterizationConfig, EngineOptions, ShardingConfig};
use hdpm_server::{Server, ServerConfig};
use hdpm_telemetry as telemetry;

static GLOBAL_STATE: Mutex<()> = Mutex::new(());

fn fresh_state() -> std::sync::MutexGuard<'static, ()> {
    let guard = GLOBAL_STATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    telemetry::reset();
    guard
}

/// A characterization slow enough (12k patterns) to occupy the single
/// worker while the tests pile requests up behind it.
const SLOW_CHARACTERIZE: &str =
    "{\"op\":\"characterize\",\"module\":\"csa_multiplier\",\"width\":8}";
const STATS: &str = "{\"op\":\"stats\"}";

fn slow_engine() -> EngineOptions {
    EngineOptions {
        config: CharacterizationConfig::builder()
            .max_patterns(12_000)
            .build()
            .unwrap(),
        sharding: Some(ShardingConfig {
            shards: 4,
            threads: 1,
        }),
        disk_root: None,
        capacity: 64,
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("send");
        self.stream.write_all(b"\n").expect("send");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("reply");
        line.trim_end().to_string()
    }
}

fn counter(name: &str) -> u64 {
    telemetry::snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

#[test]
fn shed_counter_matches_overloaded_replies_on_the_wire() {
    let _state = fresh_state();
    let server = Server::start(
        ServerConfig::builder()
            .workers(1)
            .queue_depth(1)
            .no_deadline()
            .engine(slow_engine())
            .build()
            .unwrap(),
    )
    .expect("start");
    let mut client = Client::connect(&server);
    client.send(SLOW_CHARACTERIZE);
    const FLOOD: usize = 40;
    for _ in 0..FLOOD {
        client.send(STATS);
    }
    let replies: Vec<String> = (0..=FLOOD).map(|_| client.recv()).collect();
    let overloaded = replies
        .iter()
        .filter(|r| r.contains("\"kind\":\"overloaded\""))
        .count() as u64;
    assert!(overloaded > 0, "a saturated queue must shed: {replies:?}");
    assert_eq!(
        counter("server.queue.shed_full"),
        overloaded,
        "one shed_full increment per overloaded reply"
    );
    assert_eq!(counter("server.queue.timeout"), 0);
    let report = server.shutdown();
    assert_eq!(report.shed, overloaded);
}

#[test]
fn timeout_counter_matches_timeout_replies_on_the_wire() {
    let _state = fresh_state();
    let server = Server::start(
        ServerConfig::builder()
            .workers(1)
            .deadline(Duration::from_millis(5))
            .engine(slow_engine())
            .build()
            .unwrap(),
    )
    .expect("start");
    let mut client = Client::connect(&server);
    client.send(SLOW_CHARACTERIZE);
    const QUEUED: usize = 4;
    for _ in 0..QUEUED {
        client.send(STATS);
    }
    let replies: Vec<String> = (0..=QUEUED).map(|_| client.recv()).collect();
    assert!(
        replies[0].contains("\"ok\":true"),
        "the in-flight request completes: {}",
        replies[0]
    );
    let timeouts = replies
        .iter()
        .filter(|r| r.contains("\"kind\":\"timeout\""))
        .count() as u64;
    assert_eq!(
        timeouts, QUEUED as u64,
        "everything queued behind the slow request expires: {replies:?}"
    );
    assert_eq!(
        counter("server.queue.timeout"),
        timeouts,
        "one timeout increment per timeout reply"
    );
    assert_eq!(counter("server.queue.shed_full"), 0);
    // Queue-wait time was recorded for every popped job, expired or not.
    let waits = telemetry::snapshot()
        .histograms
        .get("server.queue.wait_ns")
        .map_or(0, |h| h.count);
    assert_eq!(waits, 1 + QUEUED as u64);
    let report = server.shutdown();
    assert_eq!(report.timeouts, timeouts);
}
