//! Protocol conformance: the `docs/engine.md` transcript and the
//! `tests/fixtures/serve_*.jsonl` golden pair must replay byte-identically
//! through both transports — the in-memory stdio loop
//! ([`protocol::serve_lines`]) and a real TCP [`Server`] — because the two
//! share one codec. Any drift between docs, fixtures and either transport
//! fails here.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use hdpm_core::{CharacterizationConfig, EngineOptions, PowerEngine, ShardingConfig};
use hdpm_server::{protocol, Server, ServerConfig};

/// The engine the golden files were generated with:
/// `hdpm serve --patterns 1500 --shards 4` (capacity default 64).
fn golden_engine_options() -> EngineOptions {
    EngineOptions {
        config: CharacterizationConfig::builder()
            .max_patterns(1500)
            .build()
            .unwrap(),
        sharding: Some(ShardingConfig {
            shards: 4,
            threads: 1,
        }),
        disk_root: None,
        capacity: 64,
    }
}

fn repo_file(relative: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(relative);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The `→ request` / `← reply` pairs of the docs/engine.md transcript.
fn doc_transcript() -> (Vec<String>, Vec<String>) {
    let doc = repo_file("docs/engine.md");
    let requests: Vec<String> = doc
        .lines()
        .filter_map(|l| l.strip_prefix("→ "))
        .map(String::from)
        .collect();
    let replies: Vec<String> = doc
        .lines()
        .filter_map(|l| l.strip_prefix("← "))
        .map(String::from)
        .collect();
    assert!(!requests.is_empty(), "docs/engine.md transcript not found");
    assert_eq!(requests.len(), replies.len(), "unpaired transcript line");
    (requests, replies)
}

/// Replay through the stdio loop with a fresh engine.
fn replay_stdio(requests: &[String]) -> Vec<String> {
    let engine = std::sync::Arc::new(PowerEngine::new(golden_engine_options()));
    let script = requests.join("\n") + "\n";
    let mut out = Vec::new();
    protocol::serve_lines(&engine, script.as_bytes(), &mut out).expect("serve_lines");
    String::from_utf8(out)
        .expect("utf-8 replies")
        .lines()
        .map(String::from)
        .collect()
}

/// Strip the nondeterministic `"trace":"t…"` field a tracing server
/// appends to every reply, leaving the deterministic payload.
fn strip_trace(line: &str) -> String {
    match line.find(",\"trace\":\"t") {
        Some(at) => {
            let rest = &line[at + ",\"trace\":\"".len()..];
            let close = rest.find('"').expect("unterminated trace field") + 1;
            format!("{}{}", &line[..at], &rest[close..])
        }
        None => line.to_string(),
    }
}

/// Replay through a real TCP server with a fresh engine. One worker:
/// golden replies embed stateful cache counters, so execution must be
/// serialized in request order for the bytes to match.
fn replay_tcp(requests: &[String], tracing: bool) -> Vec<String> {
    let server = Server::start(
        ServerConfig::builder()
            .workers(1)
            .tracing(tracing)
            .engine(golden_engine_options())
            .build()
            .unwrap(),
    )
    .expect("start");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    for request in requests {
        stream.write_all(request.as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send");
    }
    let mut reader = BufReader::new(stream);
    let replies = (0..requests.len())
        .map(|_| {
            let mut line = String::new();
            reader.read_line(&mut line).expect("reply");
            line.trim_end().to_string()
        })
        .collect();
    server.shutdown();
    replies
}

#[test]
fn doc_transcript_replays_identically_over_stdio() {
    let (requests, golden) = doc_transcript();
    assert_eq!(replay_stdio(&requests), golden, "docs/engine.md drifted");
}

#[test]
fn doc_transcript_replays_identically_over_tcp_without_tracing() {
    let (requests, golden) = doc_transcript();
    assert_eq!(
        replay_tcp(&requests, false),
        golden,
        "docs/engine.md drifted"
    );
}

#[test]
fn doc_transcript_replays_over_tcp_with_tracing_modulo_trace_ids() {
    let (requests, golden) = doc_transcript();
    let replies = replay_tcp(&requests, true);
    for reply in &replies {
        assert!(
            reply.contains(",\"trace\":\"t"),
            "tracing reply missing its trace id: {reply}"
        );
    }
    let stripped: Vec<String> = replies.iter().map(|r| strip_trace(r)).collect();
    assert_eq!(stripped, golden, "docs/engine.md drifted (tracing on)");
}

#[test]
fn fixture_pair_replays_identically_over_both_transports() {
    let requests: Vec<String> = repo_file("tests/fixtures/serve_requests.jsonl")
        .lines()
        .map(String::from)
        .collect();
    let golden: Vec<String> = repo_file("tests/fixtures/serve_replies.jsonl")
        .lines()
        .map(String::from)
        .collect();
    assert_eq!(
        replay_stdio(&requests),
        golden,
        "tests/fixtures/serve_replies.jsonl drifted (stdio)"
    );
    assert_eq!(
        replay_tcp(&requests, false),
        golden,
        "tests/fixtures/serve_replies.jsonl drifted (tcp)"
    );
    let traced: Vec<String> = replay_tcp(&requests, true)
        .iter()
        .map(|r| strip_trace(r))
        .collect();
    assert_eq!(
        traced, golden,
        "tests/fixtures/serve_replies.jsonl drifted (tcp, tracing on)"
    );
}
