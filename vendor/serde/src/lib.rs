//! Offline stand-in for the [`serde`](https://crates.io/crates/serde)
//! crate.
//!
//! The build environment has no network access, so the workspace vendors
//! a self-contained serialization layer exposing the API subset it uses:
//! the [`Serialize`] / [`Deserialize`] traits, `serde::de::DeserializeOwned`,
//! and `#[derive(Serialize, Deserialize)]` (re-exported from the sibling
//! `serde_derive` proc-macro crate).
//!
//! Instead of upstream serde's visitor architecture, this implementation
//! round-trips every type through a small JSON-compatible [`Value`] tree.
//! The derive macros generate `to_value` / `from_value` conversions that
//! mirror serde's externally-tagged JSON conventions:
//!
//! * structs with named fields ⇄ objects,
//! * newtype structs ⇄ the inner value,
//! * tuple structs ⇄ arrays,
//! * unit enum variants ⇄ `"VariantName"`,
//! * payload-carrying variants ⇄ `{"VariantName": <payload>}`.
//!
//! The sibling `serde_json` stand-in handles text ⇄ [`Value`].

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent, fits i64).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// This value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// This value as an `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// This value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a boolean if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Short name of the value's JSON type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error from any printable message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the JSON-shaped data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from the JSON-shaped data model.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match the type.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Deserialization helpers, mirroring the `serde::de` module path.
pub mod de {
    /// Marker for types deserializable without borrowing from the input —
    /// with this data model, every [`Deserialize`](crate::Deserialize)
    /// type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}

    pub use crate::Error;
}

/// Serialization helpers, mirroring the `serde::ser` module path.
pub mod ser {
    pub use crate::Error;
}

fn type_error<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!(
        "expected {expected}, found {}",
        got.kind()
    )))
}

/// Look up a struct field, treating a missing key as `null` (so `Option`
/// fields deserialize to `None`, as with upstream serde).
pub fn field<'v>(fields: &'v [(String, Value)], name: &str) -> &'v Value {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null)
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(v),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value.as_u64() {
                    Some(raw) => raw,
                    None => return type_error("unsigned integer", value),
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "integer {raw} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value.as_i64() {
                    Some(raw) => raw,
                    None => return type_error("integer", value),
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "integer {raw} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_f64() {
            Some(f) => Ok(f),
            None => type_error("number", value),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_bool() {
            Some(b) => Ok(b),
            None => type_error("boolean", value),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_str() {
            Some(s) => Ok(s.to_string()),
            None => type_error("string", value),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some(items) => items.iter().map(T::from_value).collect(),
            None => type_error("array", value),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = match value.as_array() {
                    Some(items) if items.len() == LEN => items,
                    Some(items) => {
                        return Err(Error::custom(format!(
                            "expected array of length {LEN}, found {}", items.len()
                        )))
                    }
                    None => return type_error("array", value),
                };
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    /// Maps serialize as JSON objects; keys must serialize to strings
    /// (`String` itself, or unit enum variants), matching serde_json's
    /// "map key must be a string" contract.
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        other => panic!("map key must serialize to a string, got {}", other.kind()),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_object() {
            Some(fields) => fields
                .iter()
                .map(|(k, v)| {
                    let key = K::from_value(&Value::Str(k.clone()))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            None => type_error("object", value),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_round_trips_via_null() {
        let none: Option<u64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::Int(3)).unwrap(), Some(3));
    }

    #[test]
    fn missing_field_reads_as_null() {
        let fields = vec![("a".to_string(), Value::Int(1))];
        assert_eq!(field(&fields, "a"), &Value::Int(1));
        assert_eq!(field(&fields, "b"), &Value::Null);
    }

    #[test]
    fn integers_preserve_u64_range() {
        let big = u64::MAX;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn shape_errors_name_the_kinds() {
        let err = u64::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("string"));
        let err = Vec::<u64>::from_value(&Value::Bool(true)).unwrap_err();
        assert!(err.to_string().contains("array"));
    }

    #[test]
    fn tuples_are_arrays() {
        let v = (1u16, 2u16, 1.5f64).to_value();
        let back = <(u16, u16, f64)>::from_value(&v).unwrap();
        assert_eq!(back, (1, 2, 1.5));
    }
}
