//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Runs each benchmark as a calibrated wall-clock measurement: a short
//! warm-up estimates the per-iteration cost, then `sample_size` timed
//! samples are collected and summarised by their median. Results are
//! printed to stdout and written to
//! `target/criterion/<group>/<id>/new/estimates.json` in the subset of the
//! upstream schema that downstream tooling (`perf_summary`) reads:
//! `{"median": {"point_estimate": <nanoseconds>}}`.
//!
//! Statistical niceties of the real crate — outlier classification,
//! bootstrap confidence intervals, regression detection, HTML reports —
//! are out of scope for an offline environment.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::fs;
use std::hint;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`]: an identity function opaque to
/// the optimiser.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How batched inputs are grouped per measurement (accepted for API
/// compatibility; the stand-in times one batch element at a time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; many per sample upstream.
    SmallInput,
    /// Large setup output; few per sample upstream.
    LargeInput,
    /// Fresh input for every iteration.
    PerIteration,
}

/// Quantity processed per iteration, reported as a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements (e.g. cycles, patterns) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Two-part benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id such as `unit_delay/ripple_adder_16`.
    pub fn new(function_id: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Parameter-only id, `criterion::BenchmarkId::from_parameter`.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measure `routine`, running it enough times per sample that timer
    /// resolution is not the dominant error.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: find an iteration count putting one sample near 2 ms.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters = iters.saturating_mul(2);
        }

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Measure `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut iters = 1u64;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 16 {
                self.iters_per_sample = iters;
                break;
            }
            iters = iters.saturating_mul(2);
        }

        self.samples.clear();
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..self.iters_per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Median per-iteration time in nanoseconds.
    fn median_ns(&self) -> f64 {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return 0.0;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let mid = per_iter.len() / 2;
        if per_iter.len() % 2 == 1 {
            per_iter[mid]
        } else {
            (per_iter[mid - 1] + per_iter[mid]) / 2.0
        }
    }
}

/// A named set of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Run one benchmark identified by `id`.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        let group = self.name.clone();
        let throughput = self.throughput;
        self.criterion
            .run_one(&group, &id.to_string(), throughput, f);
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let group = self.name.clone();
        let throughput = self.throughput;
        self.criterion
            .run_one(&group, &id.to_string(), throughput, |b| f(b, input));
    }

    /// End the group (formatting no-op here; upstream prints summaries).
    pub fn finish(self) {}
}

/// Benchmark runner configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    output_dir: PathBuf,
}

impl Default for Criterion {
    fn default() -> Self {
        // Match cargo-bench layout: estimates land under target/criterion
        // of the *workspace* target dir regardless of current crate.
        let output_dir = std::env::var_os("CARGO_TARGET_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target"))
            .join("criterion");
        Criterion {
            sample_size: 20,
            output_dir,
        }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Upstream parses CLI args here; the stand-in runs everything.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark (implicit group named after the id).
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        let id = id.to_string();
        self.run_one(&id.clone(), &id, None, f);
    }

    fn run_one(
        &mut self,
        group: &str,
        id: &str,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            iters_per_sample: 0,
        };
        f(&mut bencher);
        let median_ns = bencher.median_ns();

        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!(" ({:.3} Melem/s)", n as f64 / median_ns * 1e3)
            }
            Throughput::Bytes(n) => format!(
                " ({:.3} MiB/s)",
                n as f64 / median_ns * 1e9 / (1 << 20) as f64
            ),
        });
        println!(
            "{group}/{id}  median {}{}",
            format_ns(median_ns),
            rate.unwrap_or_default()
        );

        if let Err(e) = self.write_estimates(group, id, median_ns) {
            eprintln!("warning: could not write estimates for {group}/{id}: {e}");
        }
    }

    fn write_estimates(&self, group: &str, id: &str, median_ns: f64) -> std::io::Result<()> {
        // `id` may contain '/' (BenchmarkId::new), which upstream maps to
        // nested directories; reproduce that so walkers find the leaves.
        let mut dir = self.output_dir.join(sanitize(group));
        for part in id.split('/') {
            dir = dir.join(sanitize(part));
        }
        dir = dir.join("new");
        fs::create_dir_all(&dir)?;
        let mut file = fs::File::create(dir.join("estimates.json"))?;
        write!(
            file,
            "{{\"median\":{{\"point_estimate\":{median_ns}}},\"mean\":{{\"point_estimate\":{median_ns}}}}}"
        )
    }

    /// Run registered groups, as invoked by [`criterion_main!`].
    pub fn final_summary(&self) {}
}

fn sanitize(part: &str) -> String {
    part.chars()
        .map(|c| if c == '/' || c == '\\' { '_' } else { c })
        .collect()
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Define a benchmark group: both the `name, target...` and the
/// `name = ...; config = ...; targets = ...` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even_sample_counts() {
        let mut b = Bencher {
            samples: vec![
                Duration::from_nanos(10),
                Duration::from_nanos(30),
                Duration::from_nanos(20),
            ],
            sample_size: 3,
            iters_per_sample: 1,
        };
        assert_eq!(b.median_ns(), 20.0);
        b.samples.push(Duration::from_nanos(40));
        assert_eq!(b.median_ns(), 25.0);
    }

    #[test]
    fn benchmark_id_formats_like_upstream() {
        assert_eq!(
            BenchmarkId::new("unit_delay", 16).to_string(),
            "unit_delay/16"
        );
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn estimates_file_contains_median_point_estimate() {
        let dir =
            std::env::temp_dir().join(format!("criterion-standin-test-{}", std::process::id()));
        let c = Criterion {
            sample_size: 2,
            output_dir: dir.clone(),
        };
        c.write_estimates("grp", "fn/8", 1234.5).unwrap();
        let text = fs::read_to_string(dir.join("grp/fn/8/new/estimates.json")).unwrap();
        assert!(text.contains("\"median\""));
        assert!(text.contains("\"point_estimate\":1234.5"));
        fs::remove_dir_all(&dir).ok();
    }
}
