//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the API subset this workspace's tests use — the
//! [`proptest!`] macro, [`Strategy`] over ranges / `any::<T>()` /
//! [`Just`] / [`prop_oneof!`] / `prop::collection::vec`, and the
//! `prop_assert*` macros — as a plain deterministic random-case runner:
//! each test draws `cases` inputs from a seed derived from the test name,
//! so failures reproduce exactly across runs.
//!
//! Shrinking is intentionally not implemented; a failing case reports the
//! case index and panics with the original assertion message.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
pub use rand::Rng;
use rand::{RngCore, SeedableRng};

/// Runner configuration (`cases` is the only knob the workspace uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps gate-level simulation
        // properties affordable while remaining statistically meaningful.
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform every drawn value with `f`, as
    /// `proptest::strategy::Strategy::prop_map` (no shrinking here, so
    /// the combinator is a plain map over draws).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.strategy.sample(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy producing uniformly distributed values of the full type
/// domain, as `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-domain uniform distribution.
pub trait Arbitrary: Sized {
    /// Draw one uniformly distributed value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — full-domain uniform floats are rarely what a
    /// numeric property wants; the workspace's tests bound their floats
    /// with range strategies instead.
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f64>()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.sample(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of one type (built by
/// [`prop_oneof!`]).
pub struct OneOf<S>(pub Vec<S>);

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].sample(rng)
    }
}

/// Collection strategies, exposed as `prop::collection` through the
/// prelude's `prop` alias.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Length specifications accepted by [`vec`]: an exact length, a
    /// half-open range, or an inclusive range (upstream `SizeRange`).
    pub trait IntoSizeRange {
        /// Convert to `(min, max_exclusive)` bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max_exclusive) = size.bounds();
        VecStrategy {
            element,
            min,
            max_exclusive,
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..self.max_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a `use proptest::prelude::*;` test file expects in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Deterministic per-test seed: FNV-1a over the test's module path and
/// name, so every test gets a distinct but reproducible stream.
pub fn seed_for(test_path: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_path.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Internal runner used by the [`proptest!`] expansion.
pub fn run_cases(test_path: &str, cases: u32, mut body: impl FnMut(&mut StdRng, u32)) {
    let mut rng = StdRng::seed_from_u64(seed_for(test_path));
    for case in 0..cases {
        body(&mut rng, case);
    }
}

/// Signal raised by `prop_assume!` to discard a case.
#[derive(Debug)]
pub struct CaseRejected;

/// Property-test entry point; see the crate docs for the supported
/// grammar (a strict subset of upstream `proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                config.cases,
                |__rng, __case| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), __rng);)*
                    // `prop_assume!` rejections skip the case body.
                    let __outcome: Result<(), $crate::CaseRejected> = (|| {
                        $body
                        Ok(())
                    })();
                    let _ = (__case, __outcome);
                },
            );
        }
    )*};
}

/// Assert inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Discard the current case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::CaseRejected);
        }
    };
}

/// Uniform choice among strategy arms of one common type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($strategy),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -4i64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0u64..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuple_strategies_sample_componentwise(
            pair in (0usize..4, 10.0f64..20.0),
            v in prop::collection::vec((0u8..3, 5i64..=6), 0..5),
        ) {
            prop_assert!(pair.0 < 4);
            prop_assert!((10.0..20.0).contains(&pair.1));
            prop_assert!(v.iter().all(|&(x, y)| x < 3 && (5..=6).contains(&y)));
        }

        #[test]
        fn oneof_only_yields_arms(k in prop_oneof![Just(1u8), Just(3), Just(7)]) {
            prop_assert!(matches!(k, 1 | 3 | 7));
        }

        #[test]
        fn assume_discards_cases(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(super::seed_for("a::b"), super::seed_for("a::c"));
        assert_eq!(super::seed_for("a::b"), super::seed_for("a::b"));
    }

    #[test]
    fn runner_is_deterministic() {
        use rand::RngCore;
        let mut first = Vec::new();
        super::run_cases("x", 5, |rng, _| first.push(rng.next_u64()));
        let mut second = Vec::new();
        super::run_cases("x", 5, |rng, _| second.push(rng.next_u64()));
        assert_eq!(first, second);
    }
}
