//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate: JSON text serialization for the vendored value-based `serde`.
//!
//! Numbers serialize with Rust's shortest-round-trip `f64` formatting, so
//! `to_string` → `from_str` reproduces every finite float bit-exactly
//! (the behaviour the upstream `float_roundtrip` feature guarantees).
//! Non-finite floats serialize as `null`, matching `serde_json`'s lossy
//! `json!` behaviour.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;

/// JSON serialization/deserialization failure.
#[derive(Debug)]
pub struct Error {
    message: String,
    /// 1-based line/column of a parse failure, when known.
    position: Option<(usize, usize)>,
}

impl Error {
    fn parse(message: impl fmt::Display, line: usize, column: usize) -> Self {
        Error {
            message: message.to_string(),
            position: Some((line, column)),
        }
    }

    fn shape(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
            position: None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.position {
            Some((line, column)) => {
                write!(f, "{} at line {line} column {column}", self.message)
            }
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::shape(e)
    }
}

/// Serialize a value to compact JSON.
///
/// # Errors
///
/// Infallible for this data model; the `Result` mirrors upstream.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to human-readable two-space-indented JSON.
///
/// # Errors
///
/// Infallible for this data model; the `Result` mirrors upstream.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize a value as JSON into a writer.
///
/// # Errors
///
/// Returns an error when the writer fails.
pub fn to_writer<W: std::io::Write, T: serde::Serialize>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::shape(format!("io error: {e}")))
}

/// Deserialize a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::de::DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

/// Deserialize a value from a reader of JSON text.
///
/// # Errors
///
/// Returns [`Error`] on I/O failure, malformed JSON or a shape mismatch.
pub fn from_reader<R: std::io::Read, T: serde::de::DeserializeOwned>(
    mut reader: R,
) -> Result<T, Error> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| Error::shape(format!("io error: {e}")))?;
    from_str(&text)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            out.push_str(itoa_buffer(*i).as_str());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn itoa_buffer(i: i64) -> String {
    i.to_string()
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // Shortest round-trip representation; force a fraction or exponent so
    // the value re-parses as a float, matching serde_json's formatting.
    let text = format!("{f}");
    out.push_str(&text);
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.at != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl fmt::Display) -> Error {
        let consumed = &self.bytes[..self.at.min(self.bytes.len())];
        let line = 1 + consumed.iter().filter(|&&b| b == b'\n').count();
        let column = 1 + consumed.iter().rev().take_while(|&&b| b != b'\n').count();
        Error::parse(message, line, column)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.at..].starts_with(text.as_bytes()) {
            self.at += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte sequence is valid).
                    let rest = &self.bytes[self.at..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.at += len;
                }
            }
        }
    }

    /// Parse the `XXXX` of a `\uXXXX` escape (cursor on the `u`),
    /// combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, Error> {
        self.at += 1;
        let high = self.hex4()?;
        if (0xD800..0xDC00).contains(&high) {
            // Expect the low surrogate escape.
            if self.bytes[self.at..].starts_with(b"\\u") {
                self.at += 2;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(code)
                        .ok_or_else(|| self.error("invalid surrogate pair"));
                }
            }
            return Err(self.error("unpaired surrogate"));
        }
        char::from_u32(high).ok_or_else(|| self.error("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.error("invalid unicode escape")),
            };
            code = code * 16 + digit;
            self.at += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.at += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "42", "-17", "0"] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for f in [0.1f64, 1.0 / 3.0, 6.02e23, -2.5e-7, 1e300, 0.0] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {text}");
        }
    }

    #[test]
    fn integers_stay_integers() {
        let text = to_string(&u64::MAX).unwrap();
        assert_eq!(text, "18446744073709551615");
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, u64::MAX);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\nbreak \"quoted\" back\\slash \u{1F600} tab\t";
        let text = to_string(&original.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn unicode_escapes_parse() {
        let back: String = from_str(r#""Aé😀""#).unwrap();
        assert_eq!(back, "Aé😀");
    }

    #[test]
    fn pretty_output_indents() {
        let v: Value = from_str(r#"{"a":[1,2],"b":{"c":true}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n    1,"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = from_str::<Value>("{\"a\": nope}").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn value_accessors_navigate() {
        let v: Value = from_str(r#"{"median":{"point_estimate":12.5}}"#).unwrap();
        let got = v.get("median").unwrap().get("point_estimate").unwrap();
        assert_eq!(got.as_f64(), Some(12.5));
    }
}
