//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored value-based `serde` crate, by walking the item's token
//! stream directly (the real crate's `syn`/`quote` stack is unavailable
//! offline). Supports the shapes this workspace uses:
//!
//! * structs with named fields, tuple structs (incl. newtypes), unit
//!   structs;
//! * enums with unit, tuple and struct variants (externally tagged, as in
//!   upstream serde's JSON representation).
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported
//! and produce a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the item the derive is attached to.
enum Item {
    /// `struct Name { field, ... }`
    Struct { name: String, fields: Vec<String> },
    /// `struct Name(T0, ..);` with the number of fields.
    TupleStruct { name: String, arity: usize },
    /// `struct Name;`
    UnitStruct { name: String },
    /// `enum Name { Variant, Variant(T, ..), Variant { field, .. } }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Skip a leading `#[...]` attribute if present; returns how many tokens
/// were consumed.
fn skip_attr(tokens: &[TokenTree]) -> usize {
    match tokens {
        [TokenTree::Punct(p), TokenTree::Group(g), ..]
            if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
        {
            2
        }
        _ => 0,
    }
}

fn skip_attrs(tokens: &[TokenTree]) -> usize {
    let mut at = 0;
    loop {
        let n = skip_attr(&tokens[at..]);
        if n == 0 {
            return at;
        }
        at += n;
    }
}

/// Skip a `pub` / `pub(crate)` / `pub(in ..)` visibility prefix.
fn skip_visibility(tokens: &[TokenTree]) -> usize {
    match tokens {
        [TokenTree::Ident(id), rest @ ..] if id.to_string() == "pub" => match rest {
            [TokenTree::Group(g), ..] if g.delimiter() == Delimiter::Parenthesis => 2,
            _ => 1,
        },
        _ => 0,
    }
}

/// Count type-position fields separated by top-level commas, tracking
/// `<...>` nesting (angle brackets are plain puncts in the token stream).
fn count_top_level_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for token in tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    fields += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}

/// Parse `name: Type, ...` named fields from a brace group's tokens.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut at = 0;
    while at < tokens.len() {
        at += skip_attrs(&tokens[at..]);
        at += skip_visibility(&tokens[at..]);
        if at >= tokens.len() {
            break;
        }
        let name = match &tokens[at] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        at += 1;
        match tokens.get(at) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => at += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while at < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[at] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        at += 1;
                        break;
                    }
                    _ => {}
                }
            }
            at += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut at = 0;
    while at < tokens.len() {
        at += skip_attrs(&tokens[at..]);
        if at >= tokens.len() {
            break;
        }
        let name = match &tokens[at] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        at += 1;
        let shape = match tokens.get(at) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                at += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantShape::Tuple(count_top_level_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                at += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantShape::Struct(parse_named_fields(&inner)?)
            }
            _ => VariantShape::Unit,
        };
        match tokens.get(at) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => at += 1,
            None => {}
            Some(other) => {
                return Err(format!(
                    "expected `,` after variant `{name}`, found `{other}`"
                ))
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut at = skip_attrs(&tokens);
    at += skip_visibility(&tokens[at..]);
    let keyword = match tokens.get(at) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    at += 1;
    let name = match tokens.get(at) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    at += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(at) {
        if p.as_char() == '<' {
            return Err(format!(
                "the vendored serde derive does not support generic type `{name}`"
            ));
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.get(at) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::Struct {
                    name,
                    fields: parse_named_fields(&inner)?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::TupleStruct {
                    name,
                    arity: count_top_level_fields(&inner),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(at) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::Enum {
                    name,
                    variants: parse_variants(&inner)?,
                })
            }
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

/// Derive `serde::Serialize` (value-based vendored model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
                 }}\n}}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
             ::serde::Serialize::to_value(&self.0)\n\
             }}\n}}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Array(vec![{}])\n\
                 }}\n}}",
                items.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str({vname:?}.to_string()),\n"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Object(vec![\
                             ({vname:?}.to_string(), ::serde::Serialize::to_value(f0))]),\n"
                        ),
                        VariantShape::Tuple(arity) => {
                            let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![\
                                 ({vname:?}.to_string(), \
                                 ::serde::Value::Array(vec![{}]))]),\n",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => \
                                 ::serde::Value::Object(vec![({vname:?}.to_string(), \
                                 ::serde::Value::Object(vec![{}]))]),\n",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derive `serde::Deserialize` (value-based vendored model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::field(fields, {f:?}))\
                         .map_err(|e| ::serde::Error::custom(\
                         format!(\"{name}.{f}: {{e}}\")))?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> \
                 Result<Self, ::serde::Error> {{\n\
                 let fields = value.as_object().ok_or_else(|| \
                 ::serde::Error::custom(format!(\
                 \"expected object for {name}, found {{}}\", value.kind())))?;\n\
                 Ok({name} {{\n{inits}}})\n\
                 }}\n}}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> \
             Result<Self, ::serde::Error> {{\n\
             Ok({name}(::serde::Deserialize::from_value(value)?))\n\
             }}\n}}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> \
                 Result<Self, ::serde::Error> {{\n\
                 let items = value.as_array().ok_or_else(|| \
                 ::serde::Error::custom(format!(\
                 \"expected array for {name}, found {{}}\", value.kind())))?;\n\
                 if items.len() != {arity} {{\n\
                 return Err(::serde::Error::custom(format!(\
                 \"expected {arity} elements for {name}, found {{}}\", items.len())));\n\
                 }}\n\
                 Ok({name}({}))\n\
                 }}\n}}",
                items.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(_value: &::serde::Value) -> \
             Result<Self, ::serde::Error> {{ Ok({name}) }}\n}}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),\n", v.name, v.name))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "{vname:?} => Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(payload)?)),\n"
                        )),
                        VariantShape::Tuple(arity) => {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                 let items = payload.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\
                                 \"expected array payload for {name}::{vname}\"))?;\n\
                                 if items.len() != {arity} {{\n\
                                 return Err(::serde::Error::custom(format!(\
                                 \"expected {arity} elements for {name}::{vname}, \
                                 found {{}}\", items.len())));\n\
                                 }}\n\
                                 Ok({name}::{vname}({}))\n\
                                 }}\n",
                                items.join(", ")
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::field(obj, {f:?}))\
                                         .map_err(|e| ::serde::Error::custom(\
                                         format!(\"{name}::{vname}.{f}: {{e}}\")))?,\n"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                 let obj = payload.as_object().ok_or_else(|| \
                                 ::serde::Error::custom(\
                                 \"expected object payload for {name}::{vname}\"))?;\n\
                                 Ok({name}::{vname} {{\n{inits}}})\n\
                                 }}\n",
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> \
                 Result<Self, ::serde::Error> {{\n\
                 match value {{\n\
                 ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                 {unit_arms}\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(tagged) if tagged.len() == 1 => {{\n\
                 let (tag, payload) = &tagged[0];\n\
                 let _ = payload;\n\
                 match tag.as_str() {{\n\
                 {payload_arms}\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
                 }}\n\
                 other => Err(::serde::Error::custom(format!(\
                 \"expected variant of {name}, found {{}}\", other.kind()))),\n\
                 }}\n\
                 }}\n}}"
            )
        }
    };
    code.parse().unwrap()
}
