//! Offline stand-in for the [`polling`](https://crates.io/crates/polling) /
//! [`mio`](https://crates.io/crates/mio) family: a minimal readiness
//! poller over Linux `epoll(7)` plus an `eventfd(2)` waker.
//!
//! The build environment has no network access, so the workspace vendors
//! exactly the API subset `hdpm-server`'s reactor needs:
//!
//! * [`Poller`] — one epoll instance; register/modify/deregister file
//!   descriptors under a caller-chosen `u64` token and [`Interest`], and
//!   [`Poller::wait`] for readiness [`Event`]s with an optional timeout.
//!   Level-triggered (the epoll default): a readiness condition keeps
//!   reporting until the caller consumes it or drops the interest.
//! * [`Waker`] — an eventfd registered with a poller so other threads can
//!   interrupt a blocked [`Poller::wait`] ([`Waker::wake`] is async-signal
//!   and thread safe; [`Waker::drain`] resets it from the poll thread).
//!
//! All `unsafe` in the serving stack is confined to this crate: four
//! thin FFI declarations onto symbols exported by the C library that
//! `std` already links (`epoll_create1`, `epoll_ctl`, `epoll_wait`,
//! `eventfd`) plus `read`/`write`/`close` on the raw eventfd. Every fd
//! owned here is closed on drop. `epoll_ctl` is thread-safe against a
//! concurrent `epoll_wait`, so a [`Poller`] may be shared (`&Poller` is
//! `Send + Sync`); the registration bookkeeping is the caller's.
//!
//! Non-Linux platforms get a compiling stub whose constructors return
//! [`std::io::ErrorKind::Unsupported`] — the TCP reactor is the only
//! consumer and is Linux-hosted (matching the workspace's TSC clock and
//! `/proc` advisory-lock tooling).

#[cfg(target_os = "linux")]
mod sys {
    use std::io;
    use std::os::raw::{c_int, c_uint, c_void};

    // Bindings onto libc symbols std already links. Signatures mirror the
    // Linux man pages; `epoll_data` is used as a plain u64 token.
    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;

    /// `struct epoll_event`; packed on x86-64, exactly as the kernel ABI
    /// demands.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create() -> io::Result<c_int> {
        cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
    }

    pub fn ctl(epfd: c_int, op: c_int, fd: c_int, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        cvt(unsafe { epoll_ctl(epfd, op, fd, &mut event) }).map(|_| ())
    }

    pub fn ctl_del(epfd: c_int, fd: c_int) -> io::Result<()> {
        // Since Linux 2.6.9 the event argument of EPOLL_CTL_DEL is
        // ignored, but must be non-null on older ABIs; pass one anyway.
        let mut event = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_DEL, fd, &mut event) }).map(|_| ())
    }

    pub fn wait(epfd: c_int, events: &mut [EpollEvent], timeout_ms: c_int) -> io::Result<usize> {
        loop {
            let n =
                unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
            // EINTR: retry; the caller's timeout accounting tolerates an
            // early tick.
        }
    }

    pub fn eventfd_new() -> io::Result<c_int> {
        cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
    }

    pub fn eventfd_write(fd: c_int) {
        let one: u64 = 1;
        // A full counter (EAGAIN) still leaves the fd readable, which is
        // all a wake needs; other failures have no recovery path here.
        let _ = unsafe { write(fd, (&raw const one).cast(), 8) };
    }

    pub fn eventfd_drain(fd: c_int) {
        let mut buf: u64 = 0;
        // Nonblocking: EAGAIN when already drained.
        let _ = unsafe { read(fd, (&raw mut buf).cast(), 8) };
    }

    pub fn close_fd(fd: c_int) {
        let _ = unsafe { close(fd) };
    }
}

/// Readiness interest for a registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when the fd is readable (or the peer half-closed).
    pub readable: bool,
    /// Report when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Registered but silent (kept in the set for HUP/error edges only).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd is readable.
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer closed (HUP/RDHUP): drain then tear down.
    pub closed: bool,
    /// An error condition is pending on the fd.
    pub error: bool,
}

/// A raw file descriptor, as `std::os::fd::RawFd` (re-typed here so the
/// stub builds off-Linux too).
pub type RawFd = i32;

#[cfg(target_os = "linux")]
mod imp {
    use super::{sys, Event, Interest, RawFd};
    use std::io;
    use std::time::Duration;

    /// One epoll instance. See the [crate docs](crate).
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    fn mask(interest: Interest) -> u32 {
        let mut events = sys::EPOLLRDHUP;
        if interest.readable {
            events |= sys::EPOLLIN;
        }
        if interest.writable {
            events |= sys::EPOLLOUT;
        }
        events
    }

    impl Poller {
        /// Create an epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                epfd: sys::epoll_create()?,
            })
        }

        /// Register `fd` under `token` with the given interest.
        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            sys::ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, mask(interest), token)
        }

        /// Change the interest (and/or token) of a registered fd.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            sys::ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, mask(interest), token)
        }

        /// Remove a registration. Safe to call for an fd the kernel
        /// already dropped (the error is surfaced, not panicked).
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            sys::ctl_del(self.epfd, fd)
        }

        /// Wait for readiness, appending into `events` (which is cleared
        /// first). `None` blocks indefinitely. Returns the number of
        /// events delivered; `0` means the timeout elapsed. Retries
        /// `EINTR` internally.
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let timeout_ms: i32 = match timeout {
                None => -1,
                // Round up so a 0 < t < 1 ms timeout still sleeps.
                Some(t) => i32::try_from(t.as_millis().max(u128::from(u32::from(!t.is_zero()))))
                    .unwrap_or(i32::MAX),
            };
            let mut raw = [sys::EpollEvent { events: 0, data: 0 }; 256];
            let n = sys::wait(self.epfd, &mut raw, timeout_ms)?;
            for slot in &raw[..n] {
                let bits = slot.events;
                events.push(Event {
                    token: slot.data,
                    readable: bits & sys::EPOLLIN != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                    closed: bits & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                    error: bits & sys::EPOLLERR != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            sys::close_fd(self.epfd);
        }
    }

    /// An eventfd wake handle registered with a [`Poller`].
    #[derive(Debug)]
    pub struct Waker {
        fd: RawFd,
    }

    impl Waker {
        /// Create the eventfd and register it (readable) under `token`.
        pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
            let fd = sys::eventfd_new()?;
            if let Err(e) = poller.add(fd, token, Interest::READ) {
                sys::close_fd(fd);
                return Err(e);
            }
            Ok(Waker { fd })
        }

        /// Make the poller's next (or current) wait return an event for
        /// this waker's token. Callable from any thread, any number of
        /// times; wakes coalesce.
        pub fn wake(&self) {
            sys::eventfd_write(self.fd);
        }

        /// Reset the wake flag (call from the poll thread when the
        /// waker's token is reported).
        pub fn drain(&self) {
            sys::eventfd_drain(self.fd);
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            sys::close_fd(self.fd);
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{Event, Interest, RawFd};
    use std::io;
    use std::time::Duration;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "poller: epoll is Linux-only; the hdpm TCP reactor requires a Linux host",
        ))
    }

    /// Non-Linux stub; every constructor fails with `Unsupported`.
    #[derive(Debug)]
    pub struct Poller {
        _private: (),
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            unsupported()
        }
        pub fn add(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            unsupported()
        }
        pub fn modify(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            unsupported()
        }
        pub fn delete(&self, _fd: RawFd) -> io::Result<()> {
            unsupported()
        }
        pub fn wait(
            &self,
            _events: &mut Vec<Event>,
            _timeout: Option<Duration>,
        ) -> io::Result<usize> {
            unsupported()
        }
    }

    /// Non-Linux stub; construction fails with `Unsupported`.
    #[derive(Debug)]
    pub struct Waker {
        _private: (),
    }

    impl Waker {
        pub fn new(_poller: &Poller, _token: u64) -> io::Result<Waker> {
            unsupported()
        }
        pub fn wake(&self) {}
        pub fn drain(&self) {}
    }
}

pub use imp::{Poller, Waker};

// The reactor shares `Poller`/`Waker` across threads: epoll_ctl and
// epoll_wait are kernel-side thread-safe, eventfd writes are atomic.
#[allow(unused)]
fn _assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Poller>();
    check::<Waker>();
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::{Duration, Instant};

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::new(Waker::new(&poller, 7).unwrap());
        let wake_from_afar = {
            let waker = std::sync::Arc::clone(&waker);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                waker.wake();
            })
        };
        let mut events = Vec::new();
        let started = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 1, "the wake arrives long before the timeout");
        assert!(started.elapsed() < Duration::from_secs(5));
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        waker.drain();
        // Drained: the next wait times out instead of spinning.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "drained waker stays quiet");
        wake_from_afar.join().unwrap();
    }

    #[test]
    fn socket_readability_is_reported_and_level_triggered() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();
        poller.add(served.as_raw_fd(), 42, Interest::READ).unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert_eq!(n, 0, "nothing to read yet");
        client.write_all(b"ping").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);
        // Level-triggered: unread bytes keep reporting.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert_eq!(n, 1, "unconsumed readability reports again");
        // Interest can be muted without deregistering.
        poller
            .modify(served.as_raw_fd(), 42, Interest::NONE)
            .unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert_eq!(n, 0, "muted registration is silent");
        poller.delete(served.as_raw_fd()).unwrap();
    }

    #[test]
    fn peer_close_reports_hup() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();
        poller.add(served.as_raw_fd(), 1, Interest::READ).unwrap();
        drop(client);
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].closed, "peer close reports HUP/RDHUP");
    }
}
