//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of the `rand 0.8` API it actually uses: [`RngCore`],
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`, `gen_ratio`) and [`rngs::StdRng`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — not the ChaCha12 stream of the real crate, so the values
//! produced for a given seed differ from upstream `rand`. Every consumer
//! in this workspace relies only on statistical quality and on
//! same-seed/same-stream determinism, both of which hold.

#![forbid(unsafe_code)]

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts, yielding values of type `T`.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by widening-multiply with rejection
/// (Lemire's method): unbiased for every bound.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// High-level sampling methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p = {p} out of [0, 1]");
        f64::sample(self) < p
    }

    /// Bernoulli draw with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio denominator must be positive");
        assert!(
            numerator <= denominator,
            "gen_ratio {numerator}/{denominator} exceeds 1"
        );
        uniform_below(self, denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded via SplitMix64. Fast, tiny and passes BigCrush;
    /// **not** reproducible against upstream `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_endpoints_inclusive() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_ratio_matches_fraction() {
        let mut rng = StdRng::seed_from_u64(17);
        let hits = (0..60_000).filter(|_| rng.gen_ratio(1, 3)).count();
        let rate = hits as f64 / 60_000.0;
        assert!((rate - 1.0 / 3.0).abs() < 0.01, "rate {rate}");
    }
}
