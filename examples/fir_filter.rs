//! Architectural power estimation of a 4-tap FIR filter — the "realistic
//! design at an early design stage" workflow of §6.
//!
//! The filter `y[n] = Σ c_k · x[n−k]` is mapped onto four 8×8 multipliers
//! and a three-adder tree. Power is estimated twice:
//!
//! * **analytically** — word-level statistics of the input are propagated
//!   through the dataflow graph (no simulation), converted to Hd
//!   distributions per module operand, and fed to the characterized Hd
//!   models;
//! * **by reference simulation** — the filter is executed, every module's
//!   operand streams are driven through its gate-level netlist, and the
//!   switched charge is measured.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fir_filter
//! ```

use std::time::Instant;

use hdpm_suite::core::{characterize, CharacterizationConfig, StimulusKind};
use hdpm_suite::datamodel::{
    region_model, DataflowGraph, HdDistribution, JointHdZeroDistribution, SignalMoments, WordModel,
};
use hdpm_suite::netlist::{ModuleKind, ModuleSpec};
use hdpm_suite::sim::{run_words, DelayModel};
use hdpm_suite::streams::{word_stats, DataType};

/// Filter taps (8-bit signed constants).
const TAPS: [i64; 4] = [29, 97, 97, 29];
const X_BITS: usize = 8;
const P_BITS: usize = 16;
const STREAM_LEN: usize = 4000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Hardware library: characterize one multiplier and one adder. ---
    let mul_spec = ModuleSpec::new(ModuleKind::CsaMultiplier, 8usize);
    let add_spec = ModuleSpec::new(ModuleKind::RippleAdder, 16usize);
    let mul_netlist = mul_spec.build()?.validate()?;
    let add_netlist = add_spec.build()?.validate()?;
    // The stratified stimulus also populates the enhanced model's
    // stable-zero subgroups, needed for the constant-operand
    // multipliers below.
    let config = CharacterizationConfig::builder()
        .max_patterns(16_000)
        .stimulus(StimulusKind::SignalProbSweep)
        .build()?;
    println!("characterizing module library (once per library)...");
    let mul_char = characterize(&mul_netlist, &config)?;
    let add_char = characterize(&add_netlist, &config)?;
    let (mul_model, mul_enhanced) = (&mul_char.model, &mul_char.enhanced);
    let add_model = &add_char.model;

    // --- Input stream. ---
    let x = DataType::Speech.generate(X_BITS, STREAM_LEN, 7);
    let x_stats = word_stats(&x);

    // --- Analytic path: propagate moments through the dataflow graph. ---
    let t0 = Instant::now();
    let mut g = DataflowGraph::new();
    let x_node = g.input(SignalMoments::new(
        x_stats.mean,
        x_stats.variance,
        x_stats.rho1,
    ));
    let mut delayed = vec![x_node];
    for _ in 1..TAPS.len() {
        let prev = *delayed.last().expect("non-empty");
        delayed.push(g.delay(prev));
    }
    let products: Vec<_> = delayed
        .iter()
        .zip(TAPS)
        .map(|(&node, c)| g.const_mul(node, c as f64))
        .collect();
    let s0 = g.add(products[0], products[1]);
    let s1 = g.add(products[2], products[3]);
    let _y = g.add(s0, s1);

    // Multiplier k: operands are x[n-k] (8-bit) and the constant tap
    // (8-bit, zero activity). The basic model only sees the combined Hd
    // distribution; the enhanced model additionally sees that the constant
    // operand contributes known stable-zero bits.
    let x_regions = region_model(&WordModel::from_stats(&x_stats, X_BITS));
    let x_dist = HdDistribution::from_regions(&x_regions);
    let const_dist = HdDistribution::zero(X_BITS);
    let mul_operand_dist = x_dist.convolve(&const_dist);
    let mul_power: f64 = TAPS
        .iter()
        .map(|_| mul_model.estimate_distribution(&mul_operand_dist))
        .sum::<Result<f64, _>>()?;

    // Enhanced path: joint (Hd, stable-zeros) distribution per multiplier,
    // with the tap's zero bits entering as constant stable-zeros.
    let x_joint = JointHdZeroDistribution::from_regions(&x_regions);
    let mul_power_enhanced: f64 = TAPS
        .iter()
        .map(|&tap| {
            let ones = (tap as u64 & 0xFF).count_ones() as usize;
            let const_joint =
                JointHdZeroDistribution::empty().with_constant_bits(X_BITS - ones, ones);
            mul_enhanced.estimate_joint_distribution(&x_joint.combine(&const_joint))
        })
        .sum::<Result<f64, _>>()?;

    // Adders: operand distributions from the propagated product moments.
    let dist_of = |node| -> HdDistribution {
        let m: SignalMoments = g.moments(node);
        HdDistribution::from_regions(&region_model(&m.to_word_model(P_BITS)))
    };
    let adder_power: f64 = [
        (products[0], products[1]),
        (products[2], products[3]),
        (s0, s1),
    ]
    .iter()
    .map(|&(a, b)| {
        let dist = dist_of(a).convolve(&dist_of(b));
        add_model.estimate_distribution(&dist)
    })
    .sum::<Result<f64, _>>()?;

    let analytic_total = mul_power + adder_power;
    let analytic_total_enhanced = mul_power_enhanced + adder_power;
    let analytic_time = t0.elapsed();

    // --- Reference path: execute the same dataflow graph bit-accurately
    //     (words wrap to 16 bits when driven into the hardware below) and
    //     simulate every module on its recorded operand streams. ---
    let t1 = Instant::now();
    let node_streams = g.execute(std::slice::from_ref(&x), 7);
    let stream_of = |node| node_streams[g_index(node)].clone();
    let mut reference_total = 0.0;
    let mut per_module = Vec::new();
    for (k, &node) in delayed.iter().enumerate() {
        let stream = stream_of(node);
        let trace = run_words(
            &mul_netlist,
            &[stream.clone(), vec![TAPS[k]; stream.len()]],
            DelayModel::Unit,
        );
        per_module.push((format!("mul{k}"), trace.average_charge()));
        reference_total += trace.average_charge();
    }
    for (name, (na, nb)) in [
        ("add0", (products[0], products[1])),
        ("add1", (products[2], products[3])),
        ("add2", (s0, s1)),
    ] {
        let trace = run_words(
            &add_netlist,
            &[stream_of(na), stream_of(nb)],
            DelayModel::Unit,
        );
        per_module.push((name.to_string(), trace.average_charge()));
        reference_total += trace.average_charge();
    }
    let reference_time = t1.elapsed();

    // --- Report. ---
    println!("\nper-module reference power (charge/cycle):");
    for (name, p) in &per_module {
        println!("  {name:>6}: {p:>10.1}");
    }
    println!("\nmultiplier bank: basic {mul_power:.1}, enhanced {mul_power_enhanced:.1}");
    println!("adder tree:      analytic {adder_power:.1}");
    println!(
        "\ntotal power:  basic model    {analytic_total:.1}  ({:+.1}% vs reference {reference_total:.1})",
        100.0 * (analytic_total - reference_total) / reference_total
    );
    println!(
        "              enhanced model {analytic_total_enhanced:.1}  ({:+.1}%) — the constant-operand\n\
         stable zeros only the enhanced model can exploit",
        100.0 * (analytic_total_enhanced - reference_total) / reference_total
    );
    println!(
        "runtime:      analytic {analytic_time:.2?}  vs  reference simulation {reference_time:.2?} ({}x speedup)",
        (reference_time.as_secs_f64() / analytic_time.as_secs_f64()).round()
    );
    Ok(())
}

/// Dense index of a dataflow node (see `hdpm_datamodel::NodeId::index`).
fn g_index(node: hdpm_suite::datamodel::NodeId) -> usize {
    node.index()
}
