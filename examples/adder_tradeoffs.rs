//! Datapath architecture exploration: four 16-bit adder implementations
//! compared on power, area and glitch behaviour under realistic stream
//! statistics — the kind of trade-off study the macro-model is meant to
//! accelerate, cross-checked here against full simulation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example adder_tradeoffs
//! ```

use hdpm_suite::core::{characterize, CharacterizationConfig};
use hdpm_suite::datamodel::{region_model, HdDistribution, WordModel};
use hdpm_suite::netlist::{ModuleKind, ModuleSpec, NetlistStats};
use hdpm_suite::sim::{patterns_from_words, run_patterns, DelayModel, PowerReport};
use hdpm_suite::streams::DataType;

const WIDTH: usize = 16;
const CYCLES: usize = 3000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let adders = [
        ModuleKind::RippleAdder,
        ModuleKind::ClaAdder,
        ModuleKind::CarrySelectAdder,
        ModuleKind::CarrySkipAdder,
    ];
    let config = CharacterizationConfig::builder()
        .max_patterns(6000)
        .build()?;

    // One speech-like operand pair shared by every candidate.
    let streams = DataType::Speech.generate_operands(2, WIDTH, CYCLES, 11);
    let dists: Vec<HdDistribution> = streams
        .iter()
        .map(|w| HdDistribution::from_regions(&region_model(&WordModel::from_words(w, WIDTH))))
        .collect();
    let stream_dist = HdDistribution::convolve_all(&dists);

    println!(
        "{:<20} {:>6} {:>8} | {:>10} {:>10} {:>8} | {:>10}",
        "adder", "gates", "area C", "sim power", "glitch %", "top cell", "model est"
    );
    let mut results = Vec::new();
    for kind in adders {
        let spec = ModuleSpec::new(kind, WIDTH);
        let netlist = spec.build()?.validate()?;
        let stats = NetlistStats::of(netlist.netlist());
        let patterns = patterns_from_words(netlist.netlist(), &streams);

        // Reference: glitch-accurate and glitch-free power.
        let unit = run_patterns(&netlist, &patterns, DelayModel::Unit);
        let zero = run_patterns(&netlist, &patterns, DelayModel::Zero);
        let glitch_pct =
            100.0 * (unit.average_charge() - zero.average_charge()) / unit.average_charge();

        // Where does the power go?
        let report = PowerReport::from_run(&netlist, &patterns, DelayModel::Unit);
        let (top_cell, _) = report.by_driver()[0].clone();

        // Macro-model estimate with no stream simulation (the distribution
        // path of §6.3).
        let model = characterize(&netlist, &config)?.model;
        let estimate = model.estimate_distribution(&stream_dist)?;

        println!(
            "{:<20} {:>6} {:>8.0} | {:>10.1} {:>10.1} {:>8} | {:>10.1}",
            kind.id(),
            stats.gate_count,
            stats.total_capacitance,
            unit.average_charge(),
            glitch_pct,
            top_cell,
            estimate
        );
        results.push((kind, unit.average_charge(), estimate));
    }

    // The architectural ranking is what matters at this abstraction level:
    // the model must order the candidates like the reference does.
    let mut by_sim = results.clone();
    by_sim.sort_by(|a, b| a.1.total_cmp(&b.1));
    let mut by_model = results.clone();
    by_model.sort_by(|a, b| a.2.total_cmp(&b.2));
    let sim_order: Vec<_> = by_sim.iter().map(|(k, _, _)| k.id()).collect();
    let model_order: Vec<_> = by_model.iter().map(|(k, _, _)| k.id()).collect();
    println!("\nranking by simulation: {sim_order:?}");
    println!("ranking by Hd model:   {model_order:?}");
    if sim_order == model_order {
        println!("the macro-model reproduces the architectural ranking exactly.");
    } else {
        println!(
            "rankings differ in places — inspect the per-candidate numbers\n\
             above; close calls flip under estimation noise."
        );
    }
    Ok(())
}
