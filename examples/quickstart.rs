//! Quickstart: characterize a datapath module, estimate power three ways,
//! and compare against the gate-level reference simulation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hdpm_suite::core::distribution_vs_average;
use hdpm_suite::core::prelude::*;
use hdpm_suite::datamodel::{region_model, HdDistribution, WordModel};
use hdpm_suite::netlist::{ModuleKind, ModuleSpec};
use hdpm_suite::sim::{run_words, DelayModel};
use hdpm_suite::streams::DataType;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build an 8x8-bit carry-save-array multiplier at the gate level.
    let spec = ModuleSpec::new(ModuleKind::CsaMultiplier, 8usize);
    let netlist = spec.build()?.validate()?;
    println!(
        "module {}: {} gates, {} input bits",
        netlist.netlist().name(),
        netlist.netlist().gate_count(),
        netlist.netlist().input_bit_count()
    );

    // 2. Characterize the Hd power model with random patterns (§4.1),
    //    served through a cached PowerEngine: the first fetch runs the
    //    characterization, every later fetch is a memory hit.
    let engine = PowerEngine::new(EngineOptions {
        config: CharacterizationConfig::builder()
            .max_patterns(8000)
            .build()?,
        ..EngineOptions::default()
    });
    let characterization = engine.model(spec)?;
    let model = &characterization.model;
    println!(
        "characterized {} coefficients from {} transitions (mean class deviation {:.1}%)",
        model.coefficient_count(),
        characterization.transitions,
        100.0 * model.mean_deviation()
    );

    // 3. Generate a speech-like operand stream pair and simulate the
    //    reference power.
    let streams = DataType::Speech.generate_operands(2, 8, 5000, 42);
    let reference = run_words(&netlist, &streams, DelayModel::Unit);
    println!(
        "reference: average charge {:.1} per cycle over {} cycles",
        reference.average_charge(),
        reference.samples.len()
    );

    // 4a. Trace-based estimation: exact Hamming distances known.
    let report = evaluate(model, &reference)?;
    println!(
        "trace-based estimate:        cycle error {:.1}%, average error {:+.1}%",
        report.cycle_error_pct, report.average_error_pct
    );

    // 4b. Distribution-based estimation: only word-level statistics known
    //     (µ, σ, ρ -> breakpoints -> Hd distribution, §6.3).
    let dists: Vec<HdDistribution> = streams
        .iter()
        .map(|words| HdDistribution::from_regions(&region_model(&WordModel::from_words(words, 8))))
        .collect();
    let module_dist = HdDistribution::convolve_all(&dists);
    let analytic = engine.estimate(spec, &module_dist)?;
    assert_eq!(analytic.source, CacheSource::Memory, "model is cached");
    println!(
        "distribution-based estimate: {:.1} per cycle ({:+.1}% vs reference)",
        analytic.charge_per_cycle,
        100.0 * (analytic.charge_per_cycle - reference.average_charge())
            / reference.average_charge()
    );

    // 4c. Average-Hd-only estimation (§6.2) and the penalty it pays.
    let cmp = distribution_vs_average(model, &module_dist)?;
    println!(
        "average-Hd-only estimate:    {:.1} per cycle (distribution vs average gap: {:.1}%)",
        cmp.via_average,
        cmp.average_penalty_pct()
    );

    Ok(())
}
