//! Model-driven low-power binding (§1, refs [5–8]): assign dataflow
//! operations with different stream statistics onto shared multiplier
//! instances so that the macro-model-predicted power is minimal — then
//! validate the chosen binding against gate-level simulation of the
//! interleaved streams.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example low_power_binding
//! ```

use hdpm_suite::core::{characterize, CharacterizationConfig};
use hdpm_suite::datamodel::{region_model, HdDistribution, WordModel};
use hdpm_suite::netlist::{ModuleKind, ModuleSpec};
use hdpm_suite::optim::{bind_shared, Binding, Operation};
use hdpm_suite::sim::{run_words, DelayModel};
use hdpm_suite::streams::{bit_stats, DataType};

const WIDTH: usize = 8;
const N: usize = 3000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Hardware: two 8x8 multiplier instances share four operations.
    let spec = ModuleSpec::new(ModuleKind::CsaMultiplier, WIDTH);
    let netlist = spec.build()?.validate()?;
    let model = characterize(
        &netlist,
        &CharacterizationConfig::builder()
            .max_patterns(8000)
            .build()?,
    )?
    .model;

    // Four operations with distinct operand statistics: two quiet
    // speech-band ops, one random op, one counter-driven op.
    let op_streams: Vec<(&str, Vec<Vec<i64>>)> = vec![
        (
            "speech_a",
            DataType::Speech.generate_operands(2, WIDTH, N, 1),
        ),
        (
            "speech_b",
            DataType::Speech.generate_operands(2, WIDTH, N, 2),
        ),
        ("random", DataType::Random.generate_operands(2, WIDTH, N, 3)),
        (
            "counter",
            DataType::Counter.generate_operands(2, WIDTH, N, 4),
        ),
    ];

    let operations: Vec<Operation> = op_streams
        .iter()
        .map(|(name, streams)| {
            // Module-level distribution: convolution of the two operands.
            let dists: Vec<HdDistribution> = streams
                .iter()
                .map(|w| {
                    HdDistribution::from_regions(&region_model(&WordModel::from_words(w, WIDTH)))
                })
                .collect();
            let self_dist = HdDistribution::convolve_all(&dists);
            // Per-bit signal probabilities over the concatenated operands.
            let signal_probs: Vec<f64> = streams
                .iter()
                .flat_map(|w| bit_stats(w, WIDTH).signal_probs)
                .collect();
            Operation::new(*name, self_dist, signal_probs)
        })
        .collect();

    let models = vec![model.clone(), model.clone()];

    // Optimized binding vs the naive order [0,1] / [2,3].
    let optimized = bind_shared(&operations, &models)?;
    let naive = Binding {
        groups: vec![vec![0, 2], vec![1, 3]],
        power: f64::NAN,
    };

    let describe = |b: &Binding| -> Vec<String> {
        b.groups
            .iter()
            .map(|g| {
                g.iter()
                    .map(|&i| op_streams[i].0)
                    .collect::<Vec<_>>()
                    .join("+")
            })
            .collect()
    };
    println!("naive binding:     {:?}", describe(&naive));
    println!(
        "optimized binding: {:?}  (predicted power {:.1})",
        describe(&optimized),
        optimized.power
    );

    // Validate with gate-level simulation of the interleaved streams.
    let measure = |binding: &Binding| -> f64 {
        binding
            .groups
            .iter()
            .map(|group| {
                if group.is_empty() {
                    return 0.0;
                }
                // Round-robin interleave the member operations' streams.
                let mut a = Vec::new();
                let mut b = Vec::new();
                for j in 0..N {
                    for &op in group {
                        a.push(op_streams[op].1[0][j]);
                        b.push(op_streams[op].1[1][j]);
                    }
                }
                run_words(&netlist, &[a, b], DelayModel::Unit).total_charge() / N as f64
            })
            .sum()
    };

    let naive_power = measure(&naive);
    let optimized_power = measure(&optimized);
    println!("\nsimulated power (charge per iteration):");
    println!("  naive:     {naive_power:.1}");
    println!("  optimized: {optimized_power:.1}");
    println!(
        "  saving:    {:.1}%",
        100.0 * (naive_power - optimized_power) / naive_power
    );
    println!(
        "\nThe optimizer groups statistically similar operations so that\n\
         interleaved transitions stay cheap — the binding strategy the Hd\n\
         model was designed to drive."
    );
    Ok(())
}
