//! Bit-width exploration with the parameterizable model (§5): characterize
//! a few small prototypes once, fit the complexity regression, then predict
//! the power of wider instances — including widths that were never
//! characterized — and check the predictions against gate-level
//! simulation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example bitwidth_explorer
//! ```

use std::time::Instant;

use hdpm_suite::core::{
    characterize, evaluate, CharacterizationConfig, ParameterizableModel, Prototype,
};
use hdpm_suite::netlist::{ModuleKind, ModuleSpec, ModuleWidth};
use hdpm_suite::sim::{run_words, DelayModel};
use hdpm_suite::streams::DataType;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = ModuleKind::CsaMultiplier;
    let config = CharacterizationConfig::builder()
        .max_patterns(8000)
        .build()?;

    // 1. Characterize a small prototype set: 4-, 6- and 8-bit multipliers.
    let prototype_widths = [4usize, 6, 8];
    println!("characterizing prototypes {prototype_widths:?}...");
    let t0 = Instant::now();
    let mut prototypes = Vec::new();
    for &w in &prototype_widths {
        let spec = ModuleSpec::new(kind, w);
        let netlist = spec.build()?.validate()?;
        prototypes.push(Prototype {
            spec,
            model: characterize(&netlist, &config)?.model,
        });
    }
    println!("prototype characterization took {:.2?}", t0.elapsed());

    // 2. Fit the complexity regression (features [m1*m2, m1, 1], eq. 7/9).
    let family = ParameterizableModel::fit(&prototypes)?;
    println!(
        "fitted regression vectors for Hd classes 1..={}",
        family.fitted_hd()
    );
    if let Some(r1) = family.regression_vector(1) {
        println!(
            "  R_1 = [{:.4}, {:.4}, {:.4}]  over [m1*m2, m1, 1]",
            r1[0], r1[1], r1[2]
        );
    }

    // 3. Predict unseen widths — including a rectangular 12x8 instance
    //    (eq. 8) — and verify against simulation under speech data.
    println!(
        "\n{:>10} {:>14} {:>14} {:>10} {:>12}",
        "width", "predicted", "simulated", "error[%]", "eval eps[%]"
    );
    for width in [
        ModuleWidth::Uniform(10),
        ModuleWidth::Uniform(12),
        ModuleWidth::Rect(12, 8),
    ] {
        let spec = ModuleSpec::new(kind, width);
        let netlist = spec.build()?.validate()?;
        let predicted_model = family.predict_model(width);

        // Reference simulation under speech-like operands.
        let (m1, m2) = width.operand_widths();
        let mut streams = vec![DataType::Speech.generate(m1, 3000, 5)];
        streams.push(DataType::Speech.generate(m2, 3000, 55));
        let reference = run_words(&netlist, &streams, DelayModel::Unit);

        let report = evaluate(&predicted_model, &reference)?;
        // Average power prediction straight from the trace's Hd sequence.
        let predicted_avg: f64 = reference
            .samples
            .iter()
            .map(|s| predicted_model.estimate(s.hd).expect("hd <= m"))
            .sum::<f64>()
            / reference.samples.len() as f64;
        println!(
            "{:>10} {:>14.1} {:>14.1} {:>10.1} {:>12.1}",
            width.to_string(),
            predicted_avg,
            reference.average_charge(),
            report.average_error_pct,
            report.cycle_error_pct
        );
    }

    println!(
        "\nNo characterization was run for any of the predicted widths —\n\
         the regression extrapolated the prototype set, the §5 workflow."
    );
    Ok(())
}
