//! Fidelity-ladder conformance: for every module family the tier-A
//! (analytic) and tier-B (regressed-from-siblings) answers must track the
//! tier-C characterized oracle within the documented error bounds, and
//! the background upgrade path must flip a repeated request's `fidelity`
//! label to `full` without spending a second characterization.
//!
//! The documented bounds (see `docs/engine.md` § "The fidelity ladder"):
//!
//! * **tier A** — a structural closed-form estimate, calibrated per
//!   family; within a *factor of two* of the oracle charge.
//! * **tier B** — §5 regression over characterized sibling widths;
//!   within *20 %* of the oracle charge when interpolating a width
//!   between characterized siblings. Exception: `GfMultiplier`, whose
//!   cost depends on the irreducible reduction polynomial and is
//!   irregular in the width — the eq. 6–10 complexity features cannot
//!   interpolate it, so its tier-B answer is only held to the same
//!   factor-of-two bound as tier A.
//!
//! The cold-start test below is the PR's acceptance criterion: a never-
//! characterized spec answers in under a millisecond with a non-full
//! fidelity label, then upgrades to full in the background.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hdpm_core::prelude::*;
use hdpm_core::{analytic_model, CacheSource, Fidelity, ShardingConfig, ANALYTIC_CONFIDENCE};
use hdpm_datamodel::HdDistribution;
use hdpm_netlist::{ModuleKind, ModuleSpec};

/// Same configuration the tier-A κ table was calibrated against
/// (1500 patterns, 4 shards), so the analytic bound is meaningful.
fn quick_engine() -> Arc<PowerEngine> {
    Arc::new(PowerEngine::new(EngineOptions {
        config: CharacterizationConfig {
            max_patterns: 1500,
            ..CharacterizationConfig::default()
        },
        sharding: Some(ShardingConfig {
            shards: 4,
            threads: 1,
        }),
        disk_root: None,
        capacity: 64,
    }))
}

/// Uniform 0.5-activity input distribution sized for `spec`.
fn flat_dist(spec: ModuleSpec) -> HdDistribution {
    let m = spec.kind.input_bits(spec.width);
    HdDistribution::from_bit_activities(&vec![0.5; m])
}

/// Block until `n` background upgrades have completed.
fn await_upgrades(engine: &PowerEngine, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while engine.stats().upgrades_done < n {
        assert!(
            Instant::now() < deadline,
            "background upgrade never completed: {:?}",
            engine.stats()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Every family serves an instant tier-A answer on a stone-cold engine:
/// positive charge, labeled `analytic`, carrying the documented prior
/// confidence.
#[test]
fn every_family_answers_instantly_at_tier_a() {
    for kind in ModuleKind::ALL {
        let engine = quick_engine();
        let spec = ModuleSpec::new(kind, 6usize);
        let estimate = engine
            .estimate_with_floor(spec, &flat_dist(spec), Fidelity::Analytic)
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_eq!(estimate.fidelity, Fidelity::Analytic, "{kind:?}");
        assert_eq!(estimate.source, CacheSource::Analytic, "{kind:?}");
        assert_eq!(estimate.confidence, ANALYTIC_CONFIDENCE, "{kind:?}");
        assert!(
            estimate.charge_per_cycle > 0.0,
            "{kind:?}: non-positive analytic charge"
        );
    }
}

/// The conformance sweep proper: characterize widths 4, 8 and 10 of each
/// family as siblings (three prototypes — enough for the three-feature
/// multiplier families), then compare the tier-A and tier-B answers for
/// the uncharacterized width 6 against its characterized oracle.
#[test]
fn tier_a_and_b_track_the_oracle_within_documented_bounds() {
    for kind in ModuleKind::ALL {
        let engine = quick_engine();
        for width in [4usize, 8, 10] {
            engine
                .model(ModuleSpec::new(kind, width))
                .unwrap_or_else(|e| panic!("{kind:?}: seed sibling: {e}"));
        }

        let spec = ModuleSpec::new(kind, 6usize);
        let dist = flat_dist(spec);

        // Tier B must be served *before* the oracle characterizes width 6,
        // or the memory tier would answer at full fidelity.
        let tier_b = engine
            .estimate_with_floor(spec, &dist, Fidelity::Regressed)
            .unwrap_or_else(|e| panic!("{kind:?}: tier B: {e}"));
        assert_eq!(tier_b.fidelity, Fidelity::Regressed, "{kind:?}");
        assert_eq!(tier_b.source, CacheSource::Regressed, "{kind:?}");
        assert!(
            tier_b.confidence > 0.0 && tier_b.confidence <= 1.0,
            "{kind:?}: tier-B confidence {} out of range",
            tier_b.confidence
        );

        let tier_a = analytic_model(spec)
            .and_then(|m| m.estimate_distribution(&dist))
            .unwrap_or_else(|e| panic!("{kind:?}: tier A: {e}"));

        let oracle = engine
            .estimate(spec, &dist)
            .unwrap_or_else(|e| panic!("{kind:?}: oracle: {e}"));
        assert_eq!(oracle.fidelity, Fidelity::Full, "{kind:?}");
        assert!(oracle.charge_per_cycle > 0.0, "{kind:?}");

        let a_ratio = tier_a / oracle.charge_per_cycle;
        assert!(
            (0.5..=2.0).contains(&a_ratio),
            "{kind:?}: tier-A charge {tier_a:.3} is {a_ratio:.2}x the oracle {:.3}",
            oracle.charge_per_cycle
        );

        let b_error =
            (tier_b.charge_per_cycle - oracle.charge_per_cycle).abs() / oracle.charge_per_cycle;
        // GF(2^m) multiplier complexity is irregular in m (it tracks the
        // reduction polynomial, not the width), so the §5 features cannot
        // interpolate it — held to the tier-A bound instead.
        let b_bound = if kind == ModuleKind::GfMultiplier {
            1.0
        } else {
            0.20
        };
        assert!(
            b_error <= b_bound,
            "{kind:?}: tier-B charge {:.3} is {:.1}% off the oracle {:.3}",
            tier_b.charge_per_cycle,
            b_error * 100.0,
            oracle.charge_per_cycle
        );
    }
}

/// A low-fidelity serve enqueues a background upgrade; once it lands, the
/// same request is answered at full fidelity from the cache — the label
/// flips without a second characterization.
#[test]
fn background_upgrade_flips_the_label_without_a_second_characterization() {
    let engine = quick_engine();
    let spec = ModuleSpec::new(ModuleKind::RippleAdder, 12usize);
    let dist = flat_dist(spec);

    let first = engine
        .estimate_with_floor(spec, &dist, Fidelity::Analytic)
        .unwrap();
    assert_eq!(first.fidelity, Fidelity::Analytic);

    await_upgrades(&engine, 1);
    let second = engine
        .estimate_with_floor(spec, &dist, Fidelity::Analytic)
        .unwrap();
    assert_eq!(second.fidelity, Fidelity::Full);
    assert_eq!(second.source, CacheSource::Memory);
    assert_eq!(second.confidence, 1.0);
    assert_eq!(
        engine.stats().characterizations,
        1,
        "upgrade must not re-characterize: {:?}",
        engine.stats()
    );
}

/// Acceptance criterion: a cold `estimate` for a never-characterized spec
/// replies in under a millisecond with a non-full fidelity label. The
/// distribution is built outside the timed region; the minimum over a few
/// fresh engines filters scheduler noise.
#[test]
fn cold_estimate_answers_under_a_millisecond() {
    let mut best = Duration::MAX;
    for width in [16usize, 18, 20] {
        let engine = quick_engine();
        let spec = ModuleSpec::new(ModuleKind::RippleAdder, width);
        let dist = flat_dist(spec);
        let start = Instant::now();
        let estimate = engine
            .estimate_with_floor(spec, &dist, Fidelity::Analytic)
            .unwrap();
        let elapsed = start.elapsed();
        assert_ne!(estimate.fidelity, Fidelity::Full, "width {width}");
        assert!(estimate.charge_per_cycle > 0.0, "width {width}");
        best = best.min(elapsed);
    }
    assert!(
        best < Duration::from_millis(1),
        "cold tier-A estimate took {best:?} (acceptance bar: < 1 ms)"
    );
}
