//! Integration of the §6 analytic path: word statistics → breakpoints →
//! Hd distribution → power estimate, validated against the extracted
//! distributions and the trace-based estimate.

use hdpm_suite::core::{characterize, CharacterizationConfig};
use hdpm_suite::datamodel::{empirical_region_model, region_model, HdDistribution, WordModel};
use hdpm_suite::netlist::{ModuleKind, ModuleSpec};
use hdpm_suite::sim::{run_words, DelayModel};
use hdpm_suite::streams::{bit_stats, hd_histogram, DataType};

#[test]
fn analytic_distribution_matches_extracted_for_every_stream_class() {
    // Fig. 9 generalized: the eq. 18 distribution should stay close (in
    // total variation) to the histogram extracted from the stream itself.
    // Video gets looser tolerances: its large non-zero mean stretches the
    // Gaussian assumptions of the DBT data model (the paper's §6 targets
    // zero-mean audio streams).
    let tolerances = [
        (DataType::Random, 0.06, 0.5),
        (DataType::Music, 0.35, 1.6),
        (DataType::Speech, 0.30, 1.6),
        (DataType::Video, 0.50, 2.5),
    ];
    for (dt, tv_tol, mean_tol) in tolerances {
        let words = dt.generate(16, 20_000, 9);
        let extracted = HdDistribution::from_histogram(&hd_histogram(&words, 16));
        let analytic =
            HdDistribution::from_regions(&region_model(&WordModel::from_words(&words, 16)));
        let tv = extracted.total_variation(&analytic);
        assert!(
            tv < tv_tol,
            "{dt:?}: total variation {tv:.3} exceeds tolerance {tv_tol}"
        );
        assert!(
            (extracted.mean() - analytic.mean()).abs() < mean_tol,
            "{dt:?}: mean {:.2} vs {:.2}",
            extracted.mean(),
            analytic.mean()
        );
    }
}

#[test]
fn empirical_and_analytic_regions_agree_for_gaussian_streams() {
    let words = DataType::Speech.generate(16, 30_000, 4);
    let analytic = region_model(&WordModel::from_words(&words, 16));
    let empirical = empirical_region_model(&bit_stats(&words, 16));
    assert!((analytic.n_rand as i64 - empirical.n_rand as i64).abs() <= 3);
    assert!((analytic.t_sign - empirical.t_sign).abs() < 0.06);
}

#[test]
fn distribution_estimate_tracks_trace_estimate() {
    // The §6.3 distribution estimator should land near the trace-based
    // estimate (which knows the exact Hd sequence) for an AR(1) stream.
    let spec = ModuleSpec::new(ModuleKind::RippleAdder, 8usize);
    let netlist = spec.build().unwrap().validate().unwrap();
    let model = characterize(
        &netlist,
        &CharacterizationConfig {
            max_patterns: 5000,
            ..CharacterizationConfig::default()
        },
    )
    .unwrap()
    .model;

    let streams = DataType::Speech.generate_operands(2, 8, 4000, 21);
    let trace = run_words(&netlist, &streams, DelayModel::Unit);

    let trace_estimate: f64 = trace
        .samples
        .iter()
        .map(|s| model.estimate(s.hd).unwrap())
        .sum::<f64>()
        / trace.samples.len() as f64;

    let dists: Vec<HdDistribution> = streams
        .iter()
        .map(|w| HdDistribution::from_regions(&region_model(&WordModel::from_words(w, 8))))
        .collect();
    let dist_estimate = model
        .estimate_distribution(&HdDistribution::convolve_all(&dists))
        .unwrap();

    let gap = 100.0 * (dist_estimate - trace_estimate).abs() / trace_estimate;
    assert!(
        gap < 25.0,
        "distribution estimate {dist_estimate:.1} vs trace estimate {trace_estimate:.1} ({gap:.1}%)"
    );
}

#[test]
fn convolved_operand_distribution_matches_module_level_extraction() {
    // Module-level Hd histogram (over concatenated operands) should match
    // the convolution of the per-operand analytic distributions.
    let streams = DataType::Music.generate_operands(2, 8, 20_000, 33);
    let per_op: Vec<HdDistribution> = streams
        .iter()
        .map(|w| HdDistribution::from_regions(&region_model(&WordModel::from_words(w, 8))))
        .collect();
    let analytic = HdDistribution::convolve_all(&per_op);

    // Extract the module-level distribution directly.
    let mut hist = vec![0u64; 17];
    for j in 1..streams[0].len() {
        let hd_a = ((streams[0][j - 1] ^ streams[0][j]) as u64 & 0xFF).count_ones();
        let hd_b = ((streams[1][j - 1] ^ streams[1][j]) as u64 & 0xFF).count_ones();
        hist[(hd_a + hd_b) as usize] += 1;
    }
    let extracted = HdDistribution::from_histogram(&hist);
    let tv = extracted.total_variation(&analytic);
    assert!(tv < 0.35, "module-level total variation {tv:.3}");
    assert!((extracted.mean() - analytic.mean()).abs() < 2.0);
}

#[test]
fn average_hd_penalty_appears_exactly_when_coefficients_are_nonlinear() {
    use hdpm_suite::core::HdModel;

    let dist = HdDistribution::from_histogram(&[5, 10, 30, 10, 5, 10, 30, 10, 5]);

    let linear: Vec<f64> = (0..=8).map(|i| 10.0 * i as f64).collect();
    let linear_model = HdModel::from_parts("lin", 8, linear, vec![0.0; 9], vec![1; 9]);
    let quad: Vec<f64> = (0..=8).map(|i| (i * i) as f64).collect();
    let quad_model = HdModel::from_parts("quad", 8, quad, vec![0.0; 9], vec![1; 9]);

    let lin_cmp = hdpm_suite::core::distribution_vs_average(&linear_model, &dist).unwrap();
    let quad_cmp = hdpm_suite::core::distribution_vs_average(&quad_model, &dist).unwrap();
    assert!(lin_cmp.average_penalty_pct() < 1e-6);
    assert!(quad_cmp.average_penalty_pct() > 5.0);
}
