//! Sequential-vs-parallel conformance suite for sharded characterization.
//!
//! The determinism contract (docs/parallelism.md): with the shard count
//! held fixed, the **thread count never changes a single output bit** of
//! a characterization — coefficients `p_i`, deviations `ε_i`, sample
//! counts, enhanced-model grids and convergence history are all compared
//! with full structural equality (`f64` bit semantics, no tolerance).
//! Alongside the differential matrix: property tests for the accumulator
//! merge monoid, shard-seed collision freedom, `characterize_trace` vs
//! `characterize` equivalence, enhanced-model indexing across bit-widths,
//! and golden coefficient fixtures pinned from the sequential path.

use std::collections::HashSet;

use hdpm_suite::core::test_support::{build_module as build, quick_config, ALL_FAMILIES};
use hdpm_suite::core::{
    characterize, characterize_sharded, characterize_trace, shard_budgets, shard_seed,
    threads_from_env, Characterization, CharacterizationConfig, ClassAccumulator, ShardingConfig,
    StimulusKind, ZeroClustering,
};
use hdpm_suite::netlist::ModuleKind;
use hdpm_suite::sim::{random_patterns, run_patterns, DelayModel};
use proptest::prelude::*;

// --- The differential matrix: every family, threads ∈ {1, 2, 4, 8}. ---

#[test]
fn every_family_is_bit_identical_across_thread_counts() {
    for kind in ALL_FAMILIES {
        let netlist = build(kind, 4);
        let config = quick_config(640);
        let sharding = ShardingConfig {
            shards: 4,
            threads: 1,
        };
        let reference = characterize_sharded(&netlist, &config, &sharding)
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert!(reference.model.coefficient(2) > 0.0, "{kind} degenerate");
        for threads in [2usize, 4, 8] {
            let run =
                characterize_sharded(&netlist, &config, &ShardingConfig { shards: 4, threads })
                    .unwrap_or_else(|e| panic!("{kind}: {e}"));
            // Full structural equality: model, enhanced grids, sample
            // counts, history — bit-identical, no tolerance.
            assert_eq!(reference, run, "{kind} diverges at {threads} threads");
        }
    }
}

#[test]
fn thread_invariance_holds_for_every_stimulus_kind() {
    let netlist = build(ModuleKind::CsaMultiplier, 4);
    for stimulus in [
        StimulusKind::UniformRandom,
        StimulusKind::SignalProbSweep,
        StimulusKind::UniformHd,
    ] {
        let config = CharacterizationConfig {
            stimulus,
            ..quick_config(960)
        };
        let sharding = |threads| ShardingConfig { shards: 8, threads };
        let reference = characterize_sharded(&netlist, &config, &sharding(1)).unwrap();
        for threads in [2usize, 4, 8] {
            let run = characterize_sharded(&netlist, &config, &sharding(threads)).unwrap();
            assert_eq!(reference, run, "{stimulus:?} diverges at {threads} threads");
        }
    }
}

#[test]
fn hdpm_threads_env_count_matches_single_thread_reference() {
    // The CI thread matrix exports HDPM_THREADS ∈ {1, 4}; whatever it
    // resolves to must reproduce the single-thread result exactly.
    let netlist = build(ModuleKind::RippleAdder, 8);
    let config = quick_config(1200);
    let reference = characterize_sharded(
        &netlist,
        &config,
        &ShardingConfig {
            shards: 8,
            threads: 1,
        },
    )
    .unwrap();
    let env_run = characterize_sharded(
        &netlist,
        &config,
        &ShardingConfig {
            shards: 8,
            threads: threads_from_env(),
        },
    )
    .unwrap();
    assert_eq!(
        reference,
        env_run,
        "HDPM_THREADS={:?}",
        std::env::var("HDPM_THREADS")
    );
}

// --- Accumulator merge monoid (property tests). ---

fn accumulator_from(m: usize, records: &[(usize, f64)]) -> ClassAccumulator {
    let mut acc = ClassAccumulator::empty(m);
    for &(hd, charge) in records {
        acc.record(hd.min(m), charge);
    }
    acc
}

fn merged(a: &ClassAccumulator, b: &ClassAccumulator) -> ClassAccumulator {
    let mut out = a.clone();
    out.merge(b);
    out
}

fn records() -> impl Strategy<Value = Vec<(usize, f64)>> {
    proptest::collection::vec((0usize..=8, 0.0f64..1000.0), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative_bit_exactly(ra in records(), rb in records()) {
        // IEEE-754 addition is commutative (unlike associative), so
        // commutativity holds with exact equality.
        let (a, b) = (accumulator_from(8, &ra), accumulator_from(8, &rb));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn empty_is_the_merge_identity(ra in records()) {
        let a = accumulator_from(8, &ra);
        let empty = ClassAccumulator::empty(8);
        prop_assert_eq!(&merged(&a, &empty), &a);
        prop_assert_eq!(&merged(&empty, &a), &a);
    }

    #[test]
    fn merge_is_associative_up_to_rounding(
        ra in records(), rb in records(), rc in records(),
    ) {
        // Float sums reassociate with rounding error only — this is why
        // the sharded driver pins a fixed merge order rather than relying
        // on associativity for bit-equality.
        let (a, b, c) = (
            accumulator_from(8, &ra),
            accumulator_from(8, &rb),
            accumulator_from(8, &rc),
        );
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left.counts(), right.counts());
        for (l, r) in left.charge_sums().iter().zip(right.charge_sums()) {
            prop_assert!((l - r).abs() <= 1e-9 * l.abs().max(1.0), "{l} vs {r}");
        }
    }

    #[test]
    fn counts_are_preserved_by_any_merge_order(ra in records(), rb in records()) {
        let (a, b) = (accumulator_from(8, &ra), accumulator_from(8, &rb));
        let ab = merged(&a, &b);
        prop_assert_eq!(
            ab.total_samples(),
            (ra.len() + rb.len()) as u64
        );
    }
}

proptest! {
    // One case per random base seed; the satellite spec asks for 256.
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn shard_seeds_never_collide_for_1024_indices(base in any::<u64>()) {
        let seeds: HashSet<u64> = (0..1024).map(|i| shard_seed(base, i)).collect();
        prop_assert_eq!(seeds.len(), 1024);
    }
}

#[test]
fn shard_seeds_differ_from_base_and_are_stable() {
    // The derivation must not echo the base seed into shard 0 (that would
    // correlate the sequential and first-shard streams), and it is part
    // of the persisted-artifact contract, so pin two values.
    assert_ne!(shard_seed(0xC0FFEE, 0), 0xC0FFEE);
    assert_eq!(shard_seed(42, 7), shard_seed(42, 7));
    assert_ne!(shard_seed(42, 7), shard_seed(43, 7));
}

#[test]
fn shard_budgets_partition_any_total() {
    for (total, shards) in [(12_000usize, 8usize), (7, 3), (5, 8), (0, 4), (1024, 1)] {
        let budgets = shard_budgets(total, shards);
        assert_eq!(budgets.len(), shards);
        assert_eq!(budgets.iter().sum::<usize>(), total);
        let (min, max) = (budgets.iter().min().unwrap(), budgets.iter().max().unwrap());
        assert!(max - min <= 1, "{total}/{shards}: unbalanced {budgets:?}");
    }
}

// --- characterize_trace ≡ characterize on the identical stream. ---

#[test]
fn trace_replay_is_bit_identical_to_direct_characterization() {
    // Under UniformRandom stimulus, `characterize` draws exactly the
    // `random_patterns` stream, so replaying that stream's trace through
    // `characterize_trace` must reproduce the models bit for bit.
    let netlist = build(ModuleKind::RippleAdder, 4);
    let config = CharacterizationConfig {
        max_patterns: 3000,
        convergence_tol: 0.0, // never stop early: identical budgets
        seed: 0xDECAF,
        ..CharacterizationConfig::default()
    };
    let direct = characterize(&netlist, &config).unwrap();
    let patterns = random_patterns(8, 3000, 0xDECAF);
    let trace = run_patterns(&netlist, &patterns, DelayModel::Unit);
    let replayed = characterize_trace(&trace, config.clustering).unwrap();
    assert_eq!(direct.model, replayed.model);
    assert_eq!(direct.enhanced, replayed.enhanced);
    assert_eq!(direct.transitions, replayed.transitions);
}

// --- Enhanced-model (stable-zero) indexing at bit-widths 4/8/16. ---

#[test]
fn enhanced_class_indexing_is_consistent_at_all_widths() {
    // AbsVal is single-operand, so module width == model bit-width m.
    for m in [4usize, 8, 16] {
        let netlist = build(ModuleKind::AbsVal, m);
        for clustering in [ZeroClustering::Full, ZeroClustering::Clustered(3)] {
            let config = CharacterizationConfig {
                max_patterns: 800,
                stimulus: StimulusKind::UniformHd,
                clustering,
                ..CharacterizationConfig::default()
            };
            let sharding = |threads| ShardingConfig { shards: 4, threads };
            let reference = characterize_sharded(&netlist, &config, &sharding(1)).unwrap();
            let parallel = characterize_sharded(&netlist, &config, &sharding(4)).unwrap();
            assert_eq!(reference, parallel, "m={m} {clustering:?}");

            for hd in 1..=m {
                let row = reference.enhanced.coefficient_row(hd);
                assert_eq!(
                    row.len(),
                    clustering.groups(m, hd),
                    "m={m} hd={hd} {clustering:?}"
                );
                // Every reachable stable-zero count maps inside the row.
                for zeros in 0..=(m - hd) {
                    assert!(clustering.group_of(m, hd, zeros) < row.len());
                }
            }
        }
    }
}

// --- Golden coefficient fixtures pinned from the sequential path. ---

/// Reproduce a fixture generated by
/// `hdpm characterize --shards 0 --patterns <n> --out <fixture>` and
/// compare with full structural equality.
fn assert_matches_fixture(kind: ModuleKind, width: usize, patterns: usize, fixture: &str) {
    let golden: Characterization =
        serde_json::from_str(fixture).expect("fixture parses as a Characterization");
    let netlist = build(kind, width);
    let fresh = characterize(
        &netlist,
        &CharacterizationConfig {
            max_patterns: patterns,
            ..CharacterizationConfig::default()
        },
    )
    .unwrap();
    assert_eq!(
        golden, fresh,
        "{kind} width {width}: sequential path drifted from its pinned fixture"
    );

    // The sharded path at the fixture's budget must agree with itself
    // across thread counts too (the fixture pins the sequential stream;
    // sharded runs use different — but equally pinned — shard streams).
    let sharded_1 = characterize_sharded(
        &netlist,
        &CharacterizationConfig {
            max_patterns: patterns,
            ..CharacterizationConfig::default()
        },
        &ShardingConfig {
            shards: 8,
            threads: 1,
        },
    )
    .unwrap();
    let sharded_8 = characterize_sharded(
        &netlist,
        &CharacterizationConfig {
            max_patterns: patterns,
            ..CharacterizationConfig::default()
        },
        &ShardingConfig {
            shards: 8,
            threads: 8,
        },
    )
    .unwrap();
    assert_eq!(sharded_1, sharded_8);
}

#[test]
fn ripple_adder_8_matches_sequential_golden_fixture() {
    assert_matches_fixture(
        ModuleKind::RippleAdder,
        8,
        3000,
        include_str!("fixtures/ripple_adder_8_seq.json"),
    );
}

#[test]
fn csa_multiplier_6_matches_sequential_golden_fixture() {
    assert_matches_fixture(
        ModuleKind::CsaMultiplier,
        6,
        2500,
        include_str!("fixtures/csa_multiplier_6_seq.json"),
    );
}
