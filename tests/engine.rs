//! Integration tests of the `PowerEngine` facade: single-flight
//! deduplication under concurrency, LRU behavior through the public API,
//! cache-key separation and warm-up.

use std::sync::Arc;

use hdpm_core::prelude::*;
use hdpm_core::{CharacterizationConfig, ModelKey, ShardingConfig};
use hdpm_datamodel::HdDistribution;
use hdpm_netlist::{ModuleKind, ModuleSpec};

fn quick_engine(capacity: usize) -> PowerEngine {
    PowerEngine::new(EngineOptions {
        config: CharacterizationConfig::builder()
            .max_patterns(2000)
            .build()
            .unwrap(),
        sharding: Some(ShardingConfig {
            shards: 4,
            threads: 1,
        }),
        disk_root: None,
        capacity,
    })
}

/// The acceptance-criterion test: 8 threads racing on the same uncached
/// spec must trigger exactly one characterization, with every thread
/// receiving the same shared model.
#[test]
fn eight_concurrent_requesters_share_one_characterization() {
    let engine = Arc::new(quick_engine(8));
    let spec = ModuleSpec::new(ModuleKind::CsaMultiplier, 4usize);
    let mut handles = Vec::new();
    for _ in 0..8 {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || engine.fetch(spec).unwrap()));
    }
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let stats = engine.stats();
    assert_eq!(
        stats.characterizations, 1,
        "single flight: one characterization for 8 concurrent requesters"
    );
    let (reference, _) = &results[0];
    for (c, _) in &results {
        assert!(
            Arc::ptr_eq(c, reference),
            "all requesters share the same model Arc"
        );
    }
    // Every thread either led, coalesced onto the leader's flight, or
    // arrived after the insert and hit the memory tier.
    let fresh = results
        .iter()
        .filter(|(_, s)| *s == CacheSource::Fresh)
        .count();
    assert_eq!(fresh, 1, "exactly one leader");
    assert_eq!(
        stats.coalesced as usize + stats.hits as usize,
        7,
        "the other seven were served without recomputation"
    );
}

#[test]
fn eviction_order_is_least_recently_used() {
    let engine = quick_engine(2);
    let a = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
    let b = ModuleSpec::new(ModuleKind::RippleAdder, 5usize);
    let c = ModuleSpec::new(ModuleKind::RippleAdder, 6usize);
    engine.model(a).unwrap();
    engine.model(b).unwrap();
    engine.model(a).unwrap(); // touch `a`: `b` is now least recently used
    engine.model(c).unwrap(); // capacity 2: evicts `b`
    let (_, source) = engine.fetch(a).unwrap();
    assert_eq!(source, CacheSource::Memory, "recently used entry survives");
    let (_, source) = engine.fetch(b).unwrap();
    assert_eq!(source, CacheSource::Fresh, "LRU entry was evicted");
    assert_eq!(engine.stats().evictions, 2, "b evicted, then a or c");
}

/// Cache keys must separate spec, configuration and shard count — and
/// collide (deliberately) when all three agree.
#[test]
fn cache_keys_collide_only_for_identical_identity() {
    let config_a = CharacterizationConfig::builder()
        .max_patterns(2000)
        .build()
        .unwrap();
    let config_b = CharacterizationConfig::builder()
        .max_patterns(2000)
        .seed(99)
        .build()
        .unwrap();
    let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
    let other = ModuleSpec::new(ModuleKind::ClaAdder, 4usize);

    assert_eq!(
        ModelKey::new(spec, &config_a, 4),
        ModelKey::new(spec, &config_a, 4)
    );
    assert_ne!(
        ModelKey::new(spec, &config_a, 4),
        ModelKey::new(other, &config_a, 4)
    );
    assert_ne!(
        ModelKey::new(spec, &config_a, 4),
        ModelKey::new(spec, &config_b, 4)
    );
    assert_ne!(
        ModelKey::new(spec, &config_a, 4),
        ModelKey::new(spec, &config_a, 8)
    );

    // Two engines differing only in configuration never share results:
    // same spec, different key → independent characterizations.
    let engine_a = quick_engine(4);
    let engine_b = PowerEngine::new(EngineOptions {
        config: config_b,
        ..engine_a.options().clone()
    });
    assert_ne!(engine_a.key_for(spec), engine_b.key_for(spec));
    let model_a = engine_a.model(spec).unwrap();
    let model_b = engine_b.model(spec).unwrap();
    assert_ne!(
        model_a.model, model_b.model,
        "different seeds characterize different pattern streams"
    );
}

#[test]
fn warm_prepopulates_for_memory_hits() {
    let engine = quick_engine(8);
    let specs: Vec<ModuleSpec> = [4usize, 5, 6]
        .iter()
        .map(|&w| ModuleSpec::new(ModuleKind::RippleAdder, w))
        .collect();
    let report = engine.warm(&specs, 0).unwrap();
    assert_eq!(report.requested, 3);
    assert_eq!(report.characterized, 3);

    // Estimates after warm-up are all memory hits.
    for spec in &specs {
        let m = spec.kind.input_bits(spec.width);
        let dist = HdDistribution::from_bit_activities(&vec![0.5; m]);
        let estimate = engine.estimate(*spec, &dist).unwrap();
        assert_eq!(estimate.source, CacheSource::Memory);
        assert!(estimate.charge_per_cycle > 0.0);
    }
    assert_eq!(engine.stats().characterizations, 3);
}

/// Duplicate specs inside one warm call coalesce through the
/// single-flight path instead of characterizing twice.
#[test]
fn warm_deduplicates_repeated_specs() {
    let engine = quick_engine(8);
    let spec = ModuleSpec::new(ModuleKind::RippleAdder, 4usize);
    let report = engine.warm(&[spec; 4], 4).unwrap();
    assert_eq!(report.requested, 4);
    assert_eq!(
        engine.stats().characterizations,
        1,
        "one flight for all four"
    );
    assert_eq!(
        report.characterized, 1,
        "one fresh result, the rest coalesced or hit"
    );
    assert_eq!(report.coalesced + report.memory, 3);
}
