//! Cross-crate property-based tests: invariants that must hold for any
//! module, width, stream or seed.

use hdpm_suite::core::test_support::{build_module, PROPERTY_FAMILIES};
use hdpm_suite::core::{
    accuracy, characterize, characterize_trace, CharacterizationConfig, ZeroClustering,
};
use hdpm_suite::datamodel::{region_model, HdDistribution, WordModel};
use hdpm_suite::netlist::ModuleKind;
use hdpm_suite::sim::{random_patterns, run_patterns, DelayModel};
use proptest::prelude::*;

fn any_kind() -> impl Strategy<Value = ModuleKind> {
    (0..PROPERTY_FAMILIES.len()).prop_map(|i| PROPERTY_FAMILIES[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn characterized_coefficients_are_finite_and_nonnegative(
        kind in any_kind(),
        width in 2usize..=6,
        seed in any::<u64>(),
    ) {
        let netlist = build_module(kind, width);
        let config = CharacterizationConfig {
            max_patterns: 800,
            seed,
            ..CharacterizationConfig::default()
        };
        let c = characterize(&netlist, &config).unwrap();
        for (i, &p) in c.model.coefficients().iter().enumerate() {
            prop_assert!(p.is_finite() && p >= 0.0, "p_{i} = {p}");
        }
        prop_assert_eq!(c.model.coefficient(0), 0.0);
        // The enhanced model is total: every (hd, zeros) query answers.
        let m = c.model.input_bits();
        for hd in 0..=m {
            for zeros in 0..=(m - hd) {
                let v = c.enhanced.estimate(hd, zeros).unwrap();
                prop_assert!(v.is_finite() && v >= 0.0);
            }
        }
    }

    #[test]
    fn trace_characterization_reproduces_trace_average(
        seed in any::<u64>(),
    ) {
        // The model's expected charge under the trace's own empirical Hd
        // distribution equals the trace's average charge (means of means
        // weighted by class population).
        let netlist = build_module(ModuleKind::RippleAdder, 4);
        let patterns = random_patterns(8, 800, seed);
        let trace = run_patterns(&netlist, &patterns, DelayModel::Unit);
        let c = characterize_trace(&trace, ZeroClustering::Full).unwrap();
        let dist = HdDistribution::from_histogram(&trace.hd_histogram());
        let expected = c.model.estimate_distribution(&dist).unwrap();
        let actual = trace.average_charge();
        prop_assert!(
            (expected - actual).abs() < 1e-6 * actual.max(1.0),
            "{expected} vs {actual}"
        );
    }

    #[test]
    fn perfect_predictions_have_zero_error(values in prop::collection::vec(0.01f64..1e6, 1..100)) {
        let report = accuracy(&values, &values);
        prop_assert!(report.cycle_error_pct.abs() < 1e-9);
        prop_assert!(report.average_error_pct.abs() < 1e-9);
    }

    #[test]
    fn scaling_predictions_scales_average_error(
        values in prop::collection::vec(0.01f64..1e6, 1..50),
        factor in 0.5f64..2.0,
    ) {
        let scaled: Vec<f64> = values.iter().map(|v| v * factor).collect();
        let report = accuracy(&scaled, &values);
        prop_assert!((report.average_error_pct - 100.0 * (factor - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn region_distribution_mean_equals_eq11(
        mu in -1000.0f64..1000.0,
        sigma in 1.0f64..5000.0,
        rho in -0.99f64..0.99,
        width in 4usize..=24,
    ) {
        let model = WordModel::new(mu, sigma, rho, width);
        let regions = region_model(&model);
        let dist = HdDistribution::from_regions(&regions);
        prop_assert!((dist.mean() - regions.average_hd()).abs() < 1e-9);
        prop_assert!((dist.total() - 1.0).abs() < 1e-9);
        prop_assert_eq!(dist.width(), width);
    }

    #[test]
    fn zero_and_unit_delay_agree_on_totals_ordering(seed in any::<u64>()) {
        // Unit delay includes glitches, so it can never charge less.
        let netlist = build_module(ModuleKind::ClaAdder, 4);
        let patterns = random_patterns(8, 200, seed);
        let unit = run_patterns(&netlist, &patterns, DelayModel::Unit);
        let zero = run_patterns(&netlist, &patterns, DelayModel::Zero);
        prop_assert!(unit.total_charge() >= zero.total_charge() - 1e-9);
        // Same Hd classification either way.
        prop_assert_eq!(unit.hd_histogram(), zero.hd_histogram());
    }
}
