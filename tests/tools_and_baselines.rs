//! Integration tests for the tooling and baseline subsystems: GF field
//! multiplier end-to-end, activity propagation vs simulation, the bitwise
//! baseline vs the Hd model, enhanced-model joint-distribution estimation,
//! VCD export and Verilog emission.

use hdpm_suite::core::{
    characterize, evaluate, BitwiseModel, CharacterizationConfig, StimulusKind,
};
use hdpm_suite::datamodel::{region_model, JointHdZeroDistribution, WordModel};
use hdpm_suite::netlist::{emit_verilog, modules, ModuleKind, ModuleSpec};
use hdpm_suite::sim::{
    dump_vcd, propagate_activity, random_patterns, run_patterns, run_words, DelayModel,
};
use hdpm_suite::streams::{bit_stats, DataType};

#[test]
fn gf_multiplier_full_pipeline() {
    // Characterize, evaluate under random operands: the field multiplier
    // should behave like the other modules on type-I data.
    let netlist = ModuleSpec::new(ModuleKind::GfMultiplier, 8usize)
        .build()
        .unwrap()
        .validate()
        .unwrap();
    let model = characterize(
        &netlist,
        &CharacterizationConfig {
            max_patterns: 6000,
            stimulus: StimulusKind::UniformHd,
            ..CharacterizationConfig::default()
        },
    )
    .unwrap()
    .model;
    let streams = DataType::Random.generate_operands(2, 8, 2000, 9);
    let trace = run_words(&netlist, &streams, DelayModel::Unit);
    let report = evaluate(&model, &trace).unwrap();
    assert!(
        report.average_error_pct.abs() < 10.0,
        "gf multiplier type-I error {:.1}%",
        report.average_error_pct
    );
}

#[test]
fn activity_propagation_tracks_zero_delay_power_on_random_data() {
    for kind in [ModuleKind::RippleAdder, ModuleKind::ClaAdder] {
        let netlist = ModuleSpec::new(kind, 6usize)
            .build()
            .unwrap()
            .validate()
            .unwrap();
        let m = netlist.netlist().input_bit_count();
        let est = propagate_activity(&netlist, &vec![0.5; m], &vec![0.5; m]);
        let patterns = random_patterns(m, 10_000, 4);
        let trace = run_patterns(&netlist, &patterns, DelayModel::Zero);
        let ratio = est.charge_per_cycle / trace.average_charge();
        assert!(
            (0.85..1.15).contains(&ratio),
            "{kind}: analytic/simulated = {ratio:.3}"
        );
    }
}

#[test]
fn activity_propagation_uses_measured_stream_statistics() {
    // Speech streams: per-bit stats in, per-module charge out; should be
    // within a factor ~2 of the zero-delay simulation despite ignored
    // inter-bit correlation.
    let netlist = ModuleSpec::new(ModuleKind::RippleAdder, 8usize)
        .build()
        .unwrap()
        .validate()
        .unwrap();
    let streams = DataType::Speech.generate_operands(2, 8, 5000, 3);
    let mut signal = Vec::new();
    let mut transition = Vec::new();
    for s in &streams {
        let bs = bit_stats(s, 8);
        signal.extend(bs.signal_probs);
        transition.extend(bs.transition_probs);
    }
    let est = propagate_activity(&netlist, &signal, &transition);
    let trace = run_words(&netlist, &streams, DelayModel::Zero);
    let ratio = est.charge_per_cycle / trace.average_charge();
    assert!((0.5..2.0).contains(&ratio), "ratio {ratio:.3}");
}

#[test]
fn bitwise_model_matches_hd_model_on_characterization_statistics() {
    let netlist = ModuleSpec::new(ModuleKind::CsaMultiplier, 6usize)
        .build()
        .unwrap()
        .validate()
        .unwrap();
    let m = netlist.netlist().input_bit_count();
    let char_trace = run_patterns(&netlist, &random_patterns(m, 8000, 5), DelayModel::Unit);
    let bitwise = BitwiseModel::fit_from_trace(&char_trace).unwrap();
    let hd_model =
        hdpm_suite::core::characterize_trace(&char_trace, hdpm_suite::core::ZeroClustering::Full)
            .unwrap()
            .model;

    let eval_trace = run_words(
        &netlist,
        &DataType::Random.generate_operands(2, 6, 2000, 77),
        DelayModel::Unit,
    );
    let bw = bitwise.evaluate(&eval_trace).unwrap();
    let hd = evaluate(&hd_model, &eval_trace).unwrap();
    assert!(
        bw.average_error_pct.abs() < 10.0,
        "bitwise {:.1}%",
        bw.average_error_pct
    );
    assert!(
        hd.average_error_pct.abs() < 10.0,
        "hd {:.1}%",
        hd.average_error_pct
    );
}

#[test]
fn joint_distribution_estimator_handles_constant_operands() {
    // A multiplier with one constant operand: the enhanced model with the
    // joint (Hd, zeros) distribution must estimate closer to the reference
    // than the basic model with the plain Hd distribution.
    let netlist = ModuleSpec::new(ModuleKind::CsaMultiplier, 6usize)
        .build()
        .unwrap()
        .validate()
        .unwrap();
    let characterization = characterize(
        &netlist,
        &CharacterizationConfig {
            max_patterns: 16_000,
            stimulus: StimulusKind::SignalProbSweep,
            ..CharacterizationConfig::default()
        },
    )
    .unwrap();

    const TAP: i64 = 13; // 0b001101: 3 ones, 3 zeros
    let x = DataType::Speech.generate(6, 4000, 8);
    let constant = vec![TAP; x.len()];
    let trace = run_words(&netlist, &[x.clone(), constant], DelayModel::Unit);
    let reference = trace.average_charge();

    let x_regions = region_model(&WordModel::from_words(&x, 6));
    let x_joint = JointHdZeroDistribution::from_regions(&x_regions);
    let const_joint = JointHdZeroDistribution::empty().with_constant_bits(3, 3);
    let joint = x_joint.combine(&const_joint);

    let enhanced_est = characterization
        .enhanced
        .estimate_joint_distribution(&joint)
        .unwrap();
    let basic_est = characterization
        .model
        .estimate_distribution(&joint.hd_marginal())
        .unwrap();

    let enhanced_err = (enhanced_est - reference).abs() / reference;
    let basic_err = (basic_est - reference).abs() / reference;
    assert!(
        enhanced_err < basic_err,
        "enhanced {enhanced_err:.3} should beat basic {basic_err:.3} \
         (reference {reference:.1}, enhanced {enhanced_est:.1}, basic {basic_est:.1})"
    );
}

#[test]
fn vcd_export_covers_module_run() {
    let netlist = modules::cla_adder(4).unwrap().validate().unwrap();
    let patterns = random_patterns(8, 20, 3);
    let mut out = Vec::new();
    dump_vcd(&netlist, &patterns, &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert_eq!(
        text.lines().filter(|l| l.starts_with("$var")).count(),
        netlist.netlist().net_count()
    );
    assert!(text.contains("#200"), "20 cycles at 10 ticks each");
}

#[test]
fn verilog_emission_names_every_port() {
    for kind in [
        ModuleKind::RippleAdder,
        ModuleKind::BoothWallaceMultiplier,
        ModuleKind::GfMultiplier,
        ModuleKind::BarrelShifter,
    ] {
        let nl = kind.build(8usize.into()).unwrap();
        let text = emit_verilog(&nl);
        for port in nl.input_ports().iter().chain(nl.output_ports()) {
            assert!(
                text.contains(port.name()),
                "{kind}: port {} missing from emission",
                port.name()
            );
        }
        assert!(text.ends_with("endmodule\n"));
    }
}
