//! Model lifecycle: persist a characterized library to JSON, reload it,
//! and adapt it on-line to a mismatched stream — the deployment loop of a
//! shipped macro-model library.

use hdpm_suite::core::{
    characterize, evaluate, persist, AdaptiveHdModel, Characterization, CharacterizationConfig,
    HdModel,
};
use hdpm_suite::netlist::{ModuleKind, ModuleSpec};
use hdpm_suite::sim::{run_words, DelayModel};
use hdpm_suite::streams::DataType;

fn characterized(
    kind: ModuleKind,
    width: usize,
) -> (Characterization, hdpm_suite::netlist::ValidatedNetlist) {
    let netlist = ModuleSpec::new(kind, width)
        .build()
        .unwrap()
        .validate()
        .unwrap();
    let c = characterize(
        &netlist,
        &CharacterizationConfig {
            max_patterns: 5000,
            ..CharacterizationConfig::default()
        },
    )
    .unwrap();
    (c, netlist)
}

#[test]
fn persisted_model_estimates_identically() {
    let (c, netlist) = characterized(ModuleKind::RippleAdder, 6);
    let json = persist::to_json(&c).unwrap();
    let reloaded: Characterization = persist::from_json(&json).unwrap();
    assert_eq!(c.model, reloaded.model);
    assert_eq!(c.enhanced, reloaded.enhanced);

    let streams = DataType::Music.generate_operands(2, 6, 1000, 3);
    let trace = run_words(&netlist, &streams, DelayModel::Unit);
    let a = evaluate(&c.model, &trace).unwrap();
    let b = evaluate(&reloaded.model, &trace).unwrap();
    assert_eq!(a, b);
}

#[test]
fn model_library_round_trips_through_files() {
    let dir = std::env::temp_dir().join(format!("hdpm_it_{}", std::process::id()));
    let (c, _netlist) = characterized(ModuleKind::AbsVal, 8);
    let path = dir.join("library/absval_8.json");
    persist::save(&c.model, &path).unwrap();
    let loaded: HdModel = persist::load(&path).unwrap();
    assert_eq!(c.model, loaded);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lms_adaptation_fixes_counter_stream_bias() {
    // The paper's §4.2 remedy for strongly mismatched inputs: adapt the
    // coefficients on-line [4]. Feed the adaptive model the counter-stream
    // reference and verify the bias shrinks.
    let (c, netlist) = characterized(ModuleKind::RippleAdder, 8);
    let streams = DataType::Counter.generate_operands(2, 8, 4000, 1);
    let trace = run_words(&netlist, &streams, DelayModel::Unit);

    // Static model bias on this stream.
    let static_report = evaluate(&c.model, &trace).unwrap();

    // On-line adaptation over the first three quarters; evaluate on the
    // final quarter.
    let split = 3 * trace.samples.len() / 4;
    let mut adaptive = AdaptiveHdModel::new(&c.model, 0.05);
    for s in &trace.samples[..split] {
        adaptive.observe(s.hd, s.charge).unwrap();
    }
    let estimates: Vec<f64> = trace.samples[split..]
        .iter()
        .map(|s| adaptive.estimate(s.hd).unwrap())
        .collect();
    let references: Vec<f64> = trace.samples[split..].iter().map(|s| s.charge).collect();
    let adapted_report = hdpm_suite::core::accuracy(&estimates, &references);

    assert!(
        adapted_report.average_error_pct.abs() < static_report.average_error_pct.abs() / 2.0,
        "adaptation should at least halve the bias: static {:.1}% adapted {:.1}%",
        static_report.average_error_pct,
        adapted_report.average_error_pct
    );
}

#[test]
fn adapted_model_freezes_into_regular_model() {
    let (c, netlist) = characterized(ModuleKind::RippleAdder, 6);
    let streams = DataType::Counter.generate_operands(2, 6, 2000, 2);
    let trace = run_words(&netlist, &streams, DelayModel::Unit);
    let mut adaptive = AdaptiveHdModel::new(&c.model, 0.05);
    for s in &trace.samples {
        adaptive.observe(s.hd, s.charge).unwrap();
    }
    let frozen = adaptive.into_model("adapted_ripple_6");
    let report = evaluate(&frozen, &trace).unwrap();
    let original = evaluate(&c.model, &trace).unwrap();
    assert!(report.average_error_pct.abs() <= original.average_error_pct.abs());
}
