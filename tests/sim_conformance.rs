//! Differential conformance suite for the bit-parallel simulation core.
//!
//! The contract (docs/simulation.md): the bit-plane engine is
//! **bit-identical** to the event-driven oracle — not statistically close,
//! but equal in every `f64` of every per-class charge table, under both
//! delay models, for every module family, and for both the sequential and
//! the sharded characterization drivers at any thread count. Everything
//! here compares with full structural equality; there are no tolerances.
//!
//! Layout:
//!  * cycle-level differential checks ([`assert_backends_agree`]) over
//!    random stimulus, including ragged tails and masked-lane edge cases;
//!  * characterization-level differential proptests: random family ×
//!    width × pattern budget × seed, sequential and sharded;
//!  * the full 14-family matrix across threads {1, 2, 4, 8} (the MAC
//!    exercises the register fallback path);
//!  * golden per-class charge-table fixtures
//!    (`tests/fixtures/charge_tables_*.json`) replayed under *both*
//!    backends, and byte-for-byte via the CLI in the CI sim-conformance
//!    job.

use hdpm_suite::core::test_support::{build_module, quick_config, ALL_FAMILIES, PROPERTY_FAMILIES};
use hdpm_suite::core::{
    characterize_sharded_with_backend, characterize_with_backend, Characterization,
    CharacterizationConfig, ShardingConfig, SimBackend, StimulusKind,
};
use hdpm_suite::netlist::ModuleKind;
use hdpm_suite::sim::{assert_backends_agree, random_patterns, BitPattern, DelayModel, Simulator};
use proptest::prelude::*;

// --- Cycle-level conformance: raw engine output, both delay models. ---

#[test]
fn cycle_results_agree_for_every_combinational_family() {
    for kind in ALL_FAMILIES {
        let netlist = build_module(kind, 4);
        if netlist.netlist().register_count() > 0 {
            continue; // registered netlists are oracle-only
        }
        for delay in [DelayModel::Unit, DelayModel::Zero] {
            let patterns = random_patterns(netlist.netlist().input_bit_count(), 300, 7);
            assert_backends_agree(&netlist, &patterns, delay);
        }
    }
}

#[test]
fn ragged_tail_budgets_agree() {
    // Pattern counts straddling the 64-lane block size: tails occupy only
    // the low lanes and the spare lanes must charge nothing.
    let netlist = build_module(ModuleKind::CsaMultiplier, 4);
    let m = netlist.netlist().input_bit_count();
    for n in [1usize, 2, 3, 63, 64, 65, 66, 127, 128, 129, 193] {
        let patterns = random_patterns(m, n, n as u64);
        assert_backends_agree(&netlist, &patterns, DelayModel::Unit);
    }
}

#[test]
fn single_transition_runs_agree() {
    // The smallest charged run: one initializing pattern, one transition
    // — a single active lane in a single block.
    let netlist = build_module(ModuleKind::ClaAdder, 6);
    let m = netlist.netlist().input_bit_count();
    for seed in 0..16u64 {
        let patterns = random_patterns(m, 2, seed);
        assert_backends_agree(&netlist, &patterns, DelayModel::Unit);
    }
}

#[test]
fn zero_activity_nets_charge_nothing_in_both_backends() {
    // Hold the low input bit constant: its cone's nets that depend only
    // on it never toggle, and both engines must agree that they did not
    // — per-net toggle counts are compared exactly.
    let netlist = build_module(ModuleKind::RippleAdder, 4);
    let m = netlist.netlist().input_bit_count();
    let patterns: Vec<BitPattern> = random_patterns(m, 200, 11)
        .into_iter()
        .map(|p| BitPattern::new(p.bits() & !1, m))
        .collect();
    let results = assert_backends_agree(&netlist, &patterns, DelayModel::Unit);
    assert_eq!(results.len(), 199);

    // The input net for bit 0 never toggled in the oracle either.
    let mut oracle = Simulator::new(&netlist);
    for &p in &patterns {
        oracle.apply(p);
    }
    let toggles = oracle.toggle_counts();
    let zero_nets = toggles.iter().filter(|&&t| t == 0).count();
    assert!(
        zero_nets > 0,
        "expected at least one quiet net with bit 0 held constant"
    );
}

#[test]
fn identical_consecutive_patterns_charge_exactly_zero() {
    let netlist = build_module(ModuleKind::BarrelShifter, 4);
    let m = netlist.netlist().input_bit_count();
    let one = random_patterns(m, 1, 3)[0];
    let patterns = vec![one; 130]; // two full blocks plus a tail
    let results = assert_backends_agree(&netlist, &patterns, DelayModel::Unit);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.charge, 0.0, "transition {i}");
        assert_eq!(r.toggles, 0, "transition {i}");
    }
}

// --- Characterization-level differential proptests. ---

fn any_family() -> impl Strategy<Value = ModuleKind> {
    (0..PROPERTY_FAMILIES.len()).prop_map(|i| PROPERTY_FAMILIES[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn charge_tables_are_bit_identical_sequentially(
        kind in any_family(),
        width in 2usize..=6,
        budget in 2usize..=400,
        seed in any::<u64>(),
    ) {
        let netlist = build_module(kind, width);
        let config = CharacterizationConfig {
            max_patterns: budget,
            seed,
            ..quick_config(budget)
        };
        let event = characterize_with_backend(&netlist, &config, SimBackend::Event);
        let bitplane = characterize_with_backend(&netlist, &config, SimBackend::Bitplane);
        // Tiny budgets can be structured errors — but then both backends
        // must fail identically too.
        match (event, bitplane) {
            (Ok(e), Ok(b)) => prop_assert_eq!(e, b),
            (Err(e), Err(b)) => prop_assert_eq!(e.to_string(), b.to_string()),
            (e, b) => prop_assert!(false, "backends disagree on success: {e:?} vs {b:?}"),
        }
    }

    #[test]
    fn charge_tables_are_bit_identical_when_sharded(
        kind in any_family(),
        budget in 64usize..=600,
        seed in any::<u64>(),
        shards in 1usize..=6,
    ) {
        let netlist = build_module(kind, 4);
        let config = CharacterizationConfig {
            max_patterns: budget,
            seed,
            ..quick_config(budget)
        };
        let sharding = ShardingConfig { shards, threads: 2 };
        let event =
            characterize_sharded_with_backend(&netlist, &config, &sharding, SimBackend::Event)
                .unwrap();
        let bitplane =
            characterize_sharded_with_backend(&netlist, &config, &sharding, SimBackend::Bitplane)
                .unwrap();
        prop_assert_eq!(event, bitplane);
    }

    #[test]
    fn stimulus_kinds_never_split_the_backends(
        seed in any::<u64>(),
    ) {
        let netlist = build_module(ModuleKind::Subtractor, 4);
        for stimulus in [
            StimulusKind::UniformRandom,
            StimulusKind::SignalProbSweep,
            StimulusKind::UniformHd,
        ] {
            let config = CharacterizationConfig {
                max_patterns: 500,
                seed,
                stimulus,
                ..quick_config(500)
            };
            let event = characterize_with_backend(&netlist, &config, SimBackend::Event).unwrap();
            let bitplane =
                characterize_with_backend(&netlist, &config, SimBackend::Bitplane).unwrap();
            prop_assert_eq!(event, bitplane, "{:?}", stimulus);
        }
    }
}

// --- The 14-family × {1, 2, 4, 8}-thread differential matrix. ---

#[test]
fn every_family_agrees_across_backends_and_thread_counts() {
    for kind in ALL_FAMILIES {
        let netlist = build_module(kind, 4);
        let config = quick_config(640);
        let sequential_event =
            characterize_with_backend(&netlist, &config, SimBackend::Event).unwrap();
        let sequential_bitplane =
            characterize_with_backend(&netlist, &config, SimBackend::Bitplane).unwrap();
        assert_eq!(
            sequential_event, sequential_bitplane,
            "{kind} diverges sequentially"
        );
        for threads in [1usize, 2, 4, 8] {
            let sharding = ShardingConfig { shards: 4, threads };
            let event =
                characterize_sharded_with_backend(&netlist, &config, &sharding, SimBackend::Event)
                    .unwrap();
            let bitplane = characterize_sharded_with_backend(
                &netlist,
                &config,
                &sharding,
                SimBackend::Bitplane,
            )
            .unwrap();
            assert_eq!(event, bitplane, "{kind} diverges at {threads} threads");
        }
    }
}

#[test]
fn convergence_stops_are_backend_invariant() {
    // Early convergence can stop the bit-plane driver mid-block; the
    // discarded lanes must not leak into the result. Checkpoints at 100
    // patterns are deliberately lane-unaligned.
    let netlist = build_module(ModuleKind::Incrementer, 6);
    let config = CharacterizationConfig {
        max_patterns: 20_000,
        check_interval: 100,
        convergence_tol: 0.05,
        ..CharacterizationConfig::default()
    };
    let event = characterize_with_backend(&netlist, &config, SimBackend::Event).unwrap();
    let bitplane = characterize_with_backend(&netlist, &config, SimBackend::Bitplane).unwrap();
    assert_eq!(event.converged_after, bitplane.converged_after);
    assert!(
        event.converged_after.is_some(),
        "test needs an early stop to be meaningful; history: {:?}",
        event.history
    );
    assert_eq!(event, bitplane);
}

// --- Golden per-class charge-table fixtures. ---

/// Reproduce a fixture generated by
/// `hdpm characterize --shards 0 --patterns <n> --sim-backend <b> --out …`
/// under *both* backends and compare with full structural equality.
fn assert_matches_charge_table(kind: ModuleKind, width: usize, patterns: usize, fixture: &str) {
    let golden: Characterization =
        serde_json::from_str(fixture).expect("fixture parses as a Characterization");
    let netlist = build_module(kind, width);
    let config = CharacterizationConfig {
        max_patterns: patterns,
        ..CharacterizationConfig::default()
    };
    for backend in [SimBackend::Event, SimBackend::Bitplane] {
        let fresh = characterize_with_backend(&netlist, &config, backend).unwrap();
        assert_eq!(
            golden, fresh,
            "{kind} width {width}: {backend} backend drifted from the pinned charge tables"
        );
    }
}

#[test]
fn cla_adder_8_matches_golden_charge_tables() {
    assert_matches_charge_table(
        ModuleKind::ClaAdder,
        8,
        2000,
        include_str!("fixtures/charge_tables_cla_adder_8.json"),
    );
}

#[test]
fn booth_wallace_6_matches_golden_charge_tables() {
    assert_matches_charge_table(
        ModuleKind::BoothWallaceMultiplier,
        6,
        1500,
        include_str!("fixtures/charge_tables_booth_wallace_6.json"),
    );
}

#[test]
fn mac_4_matches_golden_charge_tables() {
    // The MAC has registers: both requested backends take the
    // event-driven fallback and must still pin the same tables.
    assert_matches_charge_table(
        ModuleKind::Mac,
        4,
        1200,
        include_str!("fixtures/charge_tables_mac_4.json"),
    );
}

#[test]
fn backend_parses_and_resolves() {
    assert_eq!("event".parse::<SimBackend>().unwrap(), SimBackend::Event);
    assert_eq!(
        "bit-plane".parse::<SimBackend>().unwrap(),
        SimBackend::Bitplane
    );
    assert_eq!(
        SimBackend::resolve(Some(SimBackend::Event)),
        SimBackend::Event
    );
}
