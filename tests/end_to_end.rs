//! End-to-end pipeline tests spanning every crate: build module →
//! characterize → generate streams → simulate reference → estimate →
//! check the paper's qualitative claims.

use hdpm_suite::core::{
    characterize, evaluate, CharacterizationConfig, ParameterizableModel, Prototype, StimulusKind,
};
use hdpm_suite::netlist::{ModuleKind, ModuleSpec};
use hdpm_suite::sim::{run_words, DelayModel};
use hdpm_suite::streams::DataType;

fn quick_config() -> CharacterizationConfig {
    CharacterizationConfig {
        max_patterns: 5000,
        ..CharacterizationConfig::default()
    }
}

/// Characterize a module and evaluate under one data type.
fn pipeline(kind: ModuleKind, width: usize, dt: DataType) -> hdpm_suite::core::AccuracyReport {
    let spec = ModuleSpec::new(kind, width);
    let netlist = spec.build().unwrap().validate().unwrap();
    let model = characterize(&netlist, &quick_config()).unwrap().model;
    let streams = dt.generate_operands(kind.operand_count(), width, 2000, 11);
    let trace = run_words(&netlist, &streams, DelayModel::Unit);
    evaluate(&model, &trace).unwrap()
}

#[test]
fn average_error_is_small_for_characterization_statistics() {
    // Data type I matches the characterization stream: the paper reports
    // 1-4% average error. Allow generous margins for the small test budget.
    for kind in [ModuleKind::RippleAdder, ModuleKind::CsaMultiplier] {
        let report = pipeline(kind, 6, DataType::Random);
        assert!(
            report.average_error_pct.abs() < 10.0,
            "{kind}: average error {:.1}% too large for type I",
            report.average_error_pct
        );
    }
}

#[test]
fn cycle_error_exceeds_average_error() {
    // The paper's central observation about the basic model (§4.2).
    for dt in [DataType::Random, DataType::Music, DataType::Speech] {
        let report = pipeline(ModuleKind::CsaMultiplier, 6, dt);
        assert!(
            report.cycle_error_pct > report.average_error_pct.abs(),
            "{dt:?}: cycle {:.1}% should exceed average {:.1}%",
            report.cycle_error_pct,
            report.average_error_pct
        );
    }
}

#[test]
fn counter_stream_is_the_hardest_for_the_basic_model() {
    let random = pipeline(ModuleKind::RippleAdder, 8, DataType::Random);
    let counter = pipeline(ModuleKind::RippleAdder, 8, DataType::Counter);
    assert!(
        counter.average_error_pct.abs() > random.average_error_pct.abs(),
        "counter {:.1}% should beat random {:.1}%",
        counter.average_error_pct,
        random.average_error_pct
    );
}

#[test]
fn enhanced_model_reduces_cycle_error_with_sweep_characterization() {
    let spec = ModuleSpec::new(ModuleKind::CsaMultiplier, 6usize);
    let netlist = spec.build().unwrap().validate().unwrap();
    let config = CharacterizationConfig {
        max_patterns: 8000,
        stimulus: StimulusKind::SignalProbSweep,
        ..CharacterizationConfig::default()
    };
    let characterization = characterize(&netlist, &config).unwrap();
    let streams = DataType::Counter.generate_operands(2, 6, 2000, 5);
    let trace = run_words(&netlist, &streams, DelayModel::Unit);
    let basic = evaluate(&characterization.model, &trace).unwrap();
    let enhanced = evaluate(&characterization.enhanced, &trace).unwrap();
    assert!(
        enhanced.cycle_error_pct < basic.cycle_error_pct,
        "enhanced {:.1}% should beat basic {:.1}% on the counter stream",
        enhanced.cycle_error_pct,
        basic.cycle_error_pct
    );
}

#[test]
fn regression_model_predicts_unseen_width() {
    // Fit on 4/6/8-bit adders, predict a 7-bit adder, evaluate on speech.
    let kind = ModuleKind::RippleAdder;
    let mut prototypes = Vec::new();
    for w in [4usize, 6, 8] {
        let spec = ModuleSpec::new(kind, w);
        let netlist = spec.build().unwrap().validate().unwrap();
        prototypes.push(Prototype {
            spec,
            model: characterize(&netlist, &quick_config()).unwrap().model,
        });
    }
    let family = ParameterizableModel::fit(&prototypes).unwrap();

    let spec = ModuleSpec::new(kind, 7usize);
    let netlist = spec.build().unwrap().validate().unwrap();
    let predicted = family.predict_model(spec.width);
    let streams = DataType::Speech.generate_operands(2, 7, 2000, 3);
    let trace = run_words(&netlist, &streams, DelayModel::Unit);
    let report = evaluate(&predicted, &trace).unwrap();
    assert!(
        report.average_error_pct.abs() < 35.0,
        "unseen-width prediction error {:.1}% too large",
        report.average_error_pct
    );

    // And the regression coefficients should be close to a direct
    // characterization of the same instance (paper: < 5-10%).
    let direct = characterize(&netlist, &quick_config()).unwrap().model;
    let errors = family.coefficient_errors(spec, &direct).unwrap();
    let mid = errors[errors.len() / 2];
    assert!(mid < 25.0, "mid-class coefficient error {mid:.1}%");
}

#[test]
fn power_trends_track_stream_statistics() {
    // §4.2: "trends in the power consumption [...] are followed very well
    // by the model". Random streams must draw more power than speech, and
    // the model must reproduce that ordering.
    let spec = ModuleSpec::new(ModuleKind::CsaMultiplier, 8usize);
    let netlist = spec.build().unwrap().validate().unwrap();
    let model = characterize(&netlist, &quick_config()).unwrap().model;

    let mut reference = Vec::new();
    let mut estimated = Vec::new();
    for dt in [DataType::Random, DataType::Music, DataType::Speech] {
        let streams = dt.generate_operands(2, 8, 2000, 17);
        let trace = run_words(&netlist, &streams, DelayModel::Unit);
        reference.push(trace.average_charge());
        let est: f64 = trace
            .samples
            .iter()
            .map(|s| model.estimate(s.hd).unwrap())
            .sum::<f64>()
            / trace.samples.len() as f64;
        estimated.push(est);
    }
    // Reference ordering: random > music > speech.
    assert!(reference[0] > reference[1] && reference[1] > reference[2]);
    // Model reproduces the ordering.
    assert!(estimated[0] > estimated[1] && estimated[1] > estimated[2]);
}
