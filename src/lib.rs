//! Umbrella crate for the `hdpm` workspace.
//!
//! Re-exports the member crates so that the runnable examples under
//! `examples/` and the integration tests under `tests/` can exercise the full
//! public API from one place, exactly as a downstream user would.
pub use hdpm_core as core;
pub use hdpm_datamodel as datamodel;
pub use hdpm_netlist as netlist;
pub use hdpm_optim as optim;
pub use hdpm_sim as sim;
pub use hdpm_streams as streams;
